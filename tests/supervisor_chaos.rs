//! Crash-tolerance gates for the shard supervisor (PR 10).
//!
//! The supervision layer — leases, heartbeats, re-leases, straggler
//! speculation, duplicate-safe merge — must be *invisible in the
//! dataset*: whatever combination of worker crashes, torn segment
//! tails, hangs, duplicate launches, and speculative double-execution a
//! run suffers, the merged output is byte-identical to one
//! uninterrupted `workers = 1` crawl, and the merge's accounting is
//! exact (`records_recovered + recrawled == frontier`, duplicates
//! counted, re-work bounded by one segment per crash). The tentpole is
//! the kill-at-every-record sweep; `canvassing-bench`'s
//! `supervisor_soak` bin re-runs it as a CI gate with a committed
//! baseline.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;
use std::sync::Arc;

use canvassing::study::{run_study, run_study_supervised, StudyOptions};
use canvassing_crawler::{
    crawl, read_lease, shard_range, supervise_crawl, CrawlConfig, FaultScript, RetryPolicy,
    SpeculationPolicy, SupervisorConfig, WorkerFault,
};
use canvassing_net::{FaultMatrix, Network, Url};
use canvassing_trace::{RingSink, TraceSink};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("canvassing-chaos-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A faulted workload (planned outages on every third host) so the
/// sweep exercises crash tolerance on top of retries, salvage, and
/// failure records — not just the happy path.
fn workload() -> (SyntheticWeb, Vec<Url>, CrawlConfig) {
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: 11,
        scale: 0.02,
    });
    let mut frontier = web.frontier(Cohort::Popular);
    frontier.truncate(40);
    let targets: Vec<String> = frontier.iter().step_by(3).map(|u| u.host.clone()).collect();
    FaultMatrix::new(7).inject_all(&mut web.network.faults, targets.iter().map(String::as_str));
    let mut config = CrawlConfig::control();
    config.workers = 1;
    config.retry = RetryPolicy::retries(1);
    (web, frontier, config)
}

fn sup(shards: usize, segment_sites: usize) -> SupervisorConfig {
    let mut s = SupervisorConfig::new(shards);
    s.segment_sites = segment_sites;
    s
}

fn json(ds: &canvassing_crawler::CrawlDataset) -> String {
    serde_json::to_string(ds).unwrap()
}

fn instant_total(sink: &Arc<RingSink>, name: &str) -> usize {
    sink.traces().iter().map(|t| t.instant_count(name)).sum()
}

/// Runs one supervised crawl and asserts the universal invariants every
/// fault scenario must satisfy, returning the report for
/// scenario-specific assertions.
fn assert_supervised_identical(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    dir: &PathBuf,
    s: &SupervisorConfig,
    faults: &FaultScript,
    expect: &str,
) -> canvassing_crawler::SupervisionReport {
    let direct = crawl(network, frontier, config);
    let (merged, report) = supervise_crawl(network, frontier, config, dir, s, faults).unwrap();
    assert_eq!(json(&merged), json(&direct), "{expect}: dataset bytes");
    assert_eq!(
        report.merge.records_recovered + report.merge.recrawled,
        frontier.len(),
        "{expect}: accounting must be exact"
    );
    assert!(
        report.records_redone
            <= report.workers_crashed * s.segment_sites + report.merge.duplicates_dropped,
        "{expect}: re-work {} exceeds {} crashes x {} segment sites + {} duplicates",
        report.records_redone,
        report.workers_crashed,
        s.segment_sites,
        report.merge.duplicates_dropped,
    );
    std::fs::remove_dir_all(dir).ok();
    report
}

/// THE tentpole gate: kill shard 0's owner at every record index K of
/// its range (torn segment tail at the kill point), and at every K the
/// supervisor re-leases, resumes from the durable frontier, and merges
/// byte-identical to an uninterrupted crawl — with re-work bounded by
/// one segment per crash.
#[test]
fn kill_at_every_record_merges_byte_identical() {
    let (web, frontier, config) = workload();
    let shards = 2;
    let shard0 = shard_range(frontier.len(), 0, shards);
    for k in 0..shard0.len() {
        let dir = tmp_dir(&format!("kill-{k}"));
        let mut faults = FaultScript::none();
        faults.inject(0, 1, WorkerFault::CrashAtRecord(k));
        let report = assert_supervised_identical(
            &web.network,
            &frontier,
            &config,
            &dir,
            &sup(shards, 6),
            &faults,
            &format!("kill at record {k}"),
        );
        assert_eq!(report.workers_crashed, 1, "kill at {k}");
        assert_eq!(report.re_leases, 1, "kill at {k}");
        assert_eq!(report.max_epoch, 2, "kill at {k}");
        // Appends flush record-by-record, so the only lost work is the
        // torn in-flight record itself.
        assert_eq!(report.records_redone, 1, "kill at {k}");
    }
}

/// Double-kill: the re-leased owner crashes too (epoch 2), and a third
/// epoch finishes the shard.
#[test]
fn consecutive_crashes_across_epochs_still_merge_identically() {
    let (web, frontier, config) = workload();
    let dir = tmp_dir("double-kill");
    let mut faults = FaultScript::none();
    faults.inject(0, 1, WorkerFault::CrashAtRecord(3));
    faults.inject(0, 2, WorkerFault::CrashAtRecord(2));
    let report = assert_supervised_identical(
        &web.network,
        &frontier,
        &config,
        &dir,
        &sup(2, 5),
        &faults,
        "double kill",
    );
    assert_eq!(report.workers_crashed, 2);
    assert_eq!(report.re_leases, 2);
    assert_eq!(report.max_epoch, 3);
    assert_eq!(report.records_redone, 2, "one torn record per crash");
}

/// Crash before the first spill: the shard has an owner on paper and
/// nothing on disk; the standby re-crawls the whole range.
#[test]
fn crash_before_first_spill_re_leases_from_scratch() {
    let (web, frontier, config) = workload();
    let dir = tmp_dir("first-spill");
    let mut faults = FaultScript::none();
    faults.inject(1, 1, WorkerFault::CrashBeforeFirstSpill);
    let report = assert_supervised_identical(
        &web.network,
        &frontier,
        &config,
        &dir,
        &sup(2, 6),
        &faults,
        "crash before first spill",
    );
    assert_eq!(report.workers_crashed, 1);
    assert_eq!(report.re_leases, 1);
    assert_eq!(report.records_redone, 0, "nothing was ever crawled twice");
}

/// A hung process: stops crawling *and* heartbeating. Only the lease
/// TTL clears it — `lease.expire` fires exactly once, the shard is
/// re-leased, and the stall's durably-spilled prefix is reused, not
/// recrawled.
#[test]
fn stalled_worker_expires_and_is_re_leased() {
    let (web, frontier, config) = workload();
    let dir = tmp_dir("stall");
    let sink = Arc::new(RingSink::new(512));
    let mut s = sup(2, 6);
    s.speculation = SpeculationPolicy::Off; // isolate the expiry path
    s.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let mut faults = FaultScript::none();
    faults.inject(0, 1, WorkerFault::Stall { after_records: 4 });
    let direct = crawl(&web.network, &frontier, &config);
    let (merged, report) =
        supervise_crawl(&web.network, &frontier, &config, &dir, &s, &faults).unwrap();
    assert_eq!(json(&merged), json(&direct));
    assert_eq!(report.leases_expired, 1);
    assert_eq!(report.re_leases, 1);
    assert_eq!(report.workers_crashed, 0, "a hang is not a crash");
    assert_eq!(report.records_redone, 0, "the stalled prefix is reused");
    assert_eq!(instant_total(&sink, "worker.stall"), 1);
    assert_eq!(instant_total(&sink, "lease.expire"), 1, "expire fires once");
    assert_eq!(instant_total(&sink, "worker.restart"), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Duplicate launch: a second worker steals the live lease mid-crawl
/// while the original keeps spilling until its next heartbeat notices
/// the fence. The overlap lands on disk twice and the merge drops it —
/// `duplicates_dropped` is the proof the collision happened AND was
/// absorbed.
#[test]
fn duplicate_launch_is_fenced_and_merge_drops_the_overlap() {
    let (web, frontier, config) = workload();
    let dir = tmp_dir("duplicate");
    let sink = Arc::new(RingSink::new(512));
    let mut s = sup(2, 6);
    s.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let mut faults = FaultScript::none();
    faults.duplicate_launch(0, 3);
    let direct = crawl(&web.network, &frontier, &config);
    let (merged, report) =
        supervise_crawl(&web.network, &frontier, &config, &dir, &s, &faults).unwrap();
    assert_eq!(json(&merged), json(&direct));
    assert_eq!(report.leases_stolen, 1);
    assert_eq!(report.workers_fenced, 1, "the original observed the fence");
    assert!(
        report.merge.duplicates_dropped > 0,
        "the fencing lag must have produced overlapping records"
    );
    assert_eq!(
        report.merge.records_recovered + report.merge.recrawled,
        frontier.len()
    );
    assert_eq!(instant_total(&sink, "lease.steal"), 1);
    assert_eq!(instant_total(&sink, "worker.fenced"), 1);
    std::fs::remove_dir_all(&dir).ok();
}

/// Straggler speculation: a slow-but-heartbeating owner gets raced by a
/// speculative second owner; whichever finishes first wins, the loser
/// is cancelled, and the double-executed overlap merges away.
#[test]
fn straggler_is_raced_and_the_loser_cancelled() {
    let (web, frontier, config) = workload();
    let dir = tmp_dir("straggle");
    let sink = Arc::new(RingSink::new(512));
    let mut s = sup(2, 6);
    s.speculation = SpeculationPolicy::Race {
        after_quiet_ticks: 4,
    };
    s.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let mut faults = FaultScript::none();
    faults.inject(0, 1, WorkerFault::Straggle { period: 12 });
    let direct = crawl(&web.network, &frontier, &config);
    let (merged, report) =
        supervise_crawl(&web.network, &frontier, &config, &dir, &s, &faults).unwrap();
    assert_eq!(json(&merged), json(&direct));
    assert_eq!(report.speculative_launches, 1);
    assert_eq!(
        report.workers_cancelled, 1,
        "the race has exactly one loser"
    );
    assert_eq!(
        report.leases_expired, 0,
        "the straggler never missed a beat"
    );
    assert_eq!(instant_total(&sink, "straggler.speculate"), 1);
    assert_eq!(instant_total(&sink, "worker.cancel"), 1);
    assert!(report.wasted_work_ratio() < 0.5, "speculation is bounded");
    std::fs::remove_dir_all(&dir).ok();
}

/// Seeded mixed chaos: crashes, stalls, stragglers, double-crashes, and
/// duplicate launches sprinkled across shards by an LCG — every seed
/// must merge byte-identical with exact accounting.
#[test]
fn seeded_chaos_sweep_is_always_byte_identical() {
    let (web, frontier, config) = workload();
    for seed in 1..=6u64 {
        let dir = tmp_dir(&format!("seeded-{seed}"));
        let faults = FaultScript::seeded(seed, 4);
        assert_supervised_identical(
            &web.network,
            &frontier,
            &config,
            &dir,
            &sup(4, 5),
            &faults,
            &format!("seeded chaos {seed}"),
        );
    }
}

/// The supervised run releases every shard's lease on completion, so a
/// post-mortem of the spill directory shows clean ownership handoff.
#[test]
fn completed_supervision_leaves_released_leases() {
    let (web, frontier, config) = workload();
    let dir = tmp_dir("released");
    let mut faults = FaultScript::none();
    faults.inject(0, 1, WorkerFault::CrashAtRecord(2));
    supervise_crawl(&web.network, &frontier, &config, &dir, &sup(3, 6), &faults).unwrap();
    for shard in 0..3 {
        let lease = read_lease(&dir, shard).unwrap().unwrap();
        assert!(lease.released, "shard {shard} lease must be released");
        assert!(!lease_tmp_exists(&dir, shard), "no tmp residue");
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn lease_tmp_exists(dir: &std::path::Path, shard: usize) -> bool {
    canvassing_crawler::lease_path(dir, shard)
        .with_extension("lease.tmp")
        .exists()
}

/// The study-level gate: the full pipeline run under supervision with
/// injected faults renders the SAME report as the batch pipeline and as
/// a fault-free supervised run — crash tolerance never shows up in the
/// science.
#[test]
fn supervised_study_report_is_identical_across_fault_scripts() {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 2025,
        scale: 0.02,
    });
    let options = StudyOptions {
        workers: 2,
        adblock_crawls: false,
        m1_validation: false,
        defense_sweep: false,
        trace: false,
        serving: false,
        engine: Default::default(),
    };
    let batch = run_study(&web, &options);

    let clean_dir = tmp_dir("study-clean");
    let s = sup(3, 16);
    let (clean, clean_sum) =
        run_study_supervised(&web, &options, &s, &FaultScript::none(), &clean_dir).unwrap();
    assert_eq!(clean_sum.popular.workers_crashed, 0);
    assert_eq!(clean_sum.popular.records_redone, 0);

    let chaos_dir = tmp_dir("study-chaos");
    let mut faults = FaultScript::none();
    faults.inject(0, 1, WorkerFault::CrashAtRecord(4));
    faults.inject(1, 1, WorkerFault::Stall { after_records: 2 });
    faults.duplicate_launch(2, 3);
    let (chaos, chaos_sum) = run_study_supervised(&web, &options, &s, &faults, &chaos_dir).unwrap();
    assert!(chaos_sum.popular.workers_crashed >= 1);
    assert!(chaos_sum.popular.leases_expired >= 1);

    // Perf counters are zeroed on the supervised path by design; the
    // rendered report (which includes perf) must therefore be compared
    // supervised-vs-supervised, and the science fields batch-vs-both.
    assert_eq!(clean.render_report(), chaos.render_report());
    assert_eq!(
        serde_json::to_string(&clean.popular.detections).unwrap(),
        serde_json::to_string(&batch.popular.detections).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&clean.popular.prevalence).unwrap(),
        serde_json::to_string(&batch.popular.prevalence).unwrap()
    );
    assert_eq!(
        serde_json::to_string(&chaos.tail.clustering).unwrap(),
        serde_json::to_string(&batch.tail.clustering).unwrap()
    );
    std::fs::remove_dir_all(&clean_dir).ok();
    std::fs::remove_dir_all(&chaos_dir).ok();
}
