//! The §3.1 validation experiment as an integration test: crawling the
//! same sites on different machines yields different canvas bytes but the
//! identical cross-site grouping — for *three* device profiles, not just
//! the paper's two.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::{detect, Clustering};
use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_raster::DeviceProfile;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn clustering_for(web: &SyntheticWeb, device: DeviceProfile) -> Clustering {
    let frontier = web.frontier(Cohort::Popular);
    let mut config = CrawlConfig::with_device(device);
    config.workers = 4;
    let ds = crawl(&web.network, &frontier, &config);
    let detections: Vec<_> = ds.successful().map(|(_, v)| detect(v)).collect();
    Clustering::build(detections.iter())
}

#[test]
fn three_devices_same_grouping_different_bytes() {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 5,
        scale: 0.02,
    });
    let intel = clustering_for(&web, DeviceProfile::intel_ubuntu());
    let m1 = clustering_for(&web, DeviceProfile::apple_m1());
    let nvidia = clustering_for(&web, DeviceProfile::windows_nvidia());

    // Same partition of sites on all three devices.
    let p_intel = intel.site_partition();
    assert_eq!(p_intel, m1.site_partition());
    assert_eq!(p_intel, nvidia.site_partition());

    // Canvas byte sets are pairwise different.
    let urls = |c: &Clustering| -> std::collections::BTreeSet<String> {
        c.clusters.iter().map(|cl| cl.data_url.clone()).collect()
    };
    let (ui, um, un) = (urls(&intel), urls(&m1), urls(&nvidia));
    assert_ne!(ui, um);
    assert_ne!(ui, un);
    assert_ne!(um, un);

    // Unique canvas counts agree (grouping cardinality is device-free).
    assert_eq!(intel.unique_canvases(), m1.unique_canvases());
    assert_eq!(intel.unique_canvases(), nvidia.unique_canvases());
}

#[test]
fn repeated_crawls_on_one_device_are_byte_identical() {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 5,
        scale: 0.02,
    });
    let a = clustering_for(&web, DeviceProfile::intel_ubuntu());
    let b = clustering_for(&web, DeviceProfile::intel_ubuntu());
    let urls = |c: &Clustering| -> Vec<String> {
        c.clusters.iter().map(|cl| cl.data_url.clone()).collect()
    };
    assert_eq!(urls(&a), urls(&b));
}
