//! Resilient-harness acceptance tests: a crawl over a synthetic web with
//! every fault kind injected — including induced worker panics and a
//! mid-crawl checkpoint/resume split — must complete with zero harness
//! panics, one record per frontier URL, a typed per-kind failure
//! breakdown, and byte-identical datasets across worker counts and resume
//! boundaries.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_crawler::{
    crawl, resume_crawl, CrawlConfig, CrawlDataset, FailureKind, RetryPolicy,
};
use canvassing_net::{Fault, FaultMatrix};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

/// A synthetic web with a seeded fault matrix layered over roughly a third
/// of the popular frontier (on top of whatever down-sites the generator
/// already planned).
fn faulted_web(seed: u64) -> (SyntheticWeb, Vec<canvassing_net::Url>) {
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: 11,
        scale: 0.02,
    });
    let frontier = web.frontier(Cohort::Popular);
    let matrix = FaultMatrix::new(seed);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    matrix.inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));
    (web, frontier)
}

fn config(workers: usize, retries: u32) -> CrawlConfig {
    let mut config = CrawlConfig::control();
    config.workers = workers;
    config.retry = RetryPolicy::retries(retries);
    config
}

#[test]
fn full_fault_matrix_crawl_yields_one_typed_record_per_site() {
    let (web, frontier) = faulted_web(1);
    let ds = crawl(&web.network, &frontier, &config(8, 0));
    assert_eq!(
        ds.records.len(),
        frontier.len(),
        "one record per frontier URL"
    );
    for (r, u) in ds.records.iter().zip(&frontier) {
        assert_eq!(&r.url, u, "records stay in frontier order");
    }
    let breakdown = ds.failure_breakdown();
    assert_eq!(
        breakdown.values().sum::<usize>(),
        ds.failed().count(),
        "breakdown covers every failure"
    );
    // The matrix hits enough hosts that several kinds must appear,
    // including isolated worker panics.
    assert!(
        breakdown.len() >= 4,
        "expected a diverse breakdown, got {breakdown:?}"
    );
    assert!(
        breakdown.contains_key(&FailureKind::WorkerPanic),
        "matrix plants Fault::Panic hosts; isolation must record them: {breakdown:?}"
    );
}

#[test]
fn faulted_crawl_is_byte_identical_across_worker_counts() {
    let (web, frontier) = faulted_web(2);
    let a = crawl(&web.network, &frontier, &config(1, 1));
    let b = crawl(&web.network, &frontier, &config(8, 1));
    assert_eq!(
        a.to_json().unwrap(),
        b.to_json().unwrap(),
        "records must be pure functions of (url, config, network)"
    );
}

#[test]
fn checkpoint_resume_matches_the_uninterrupted_crawl() {
    let (web, frontier) = faulted_web(3);
    let cfg = config(4, 1);
    let full = crawl(&web.network, &frontier, &cfg);

    // Interrupt after an arbitrary prefix; also drop one record from the
    // middle to model a worker that died before reporting.
    let mut partial_records = full.records[..frontier.len() / 2].to_vec();
    partial_records.remove(frontier.len() / 4);
    let checkpoint = CrawlDataset {
        label: full.label.clone(),
        device_id: full.device_id.clone(),
        records: partial_records,
    };
    let resumed = resume_crawl(&web.network, &frontier, &cfg, &checkpoint);
    assert_eq!(
        resumed.to_json().unwrap(),
        full.to_json().unwrap(),
        "resume must merge to the exact uninterrupted dataset"
    );
}

#[test]
fn retries_heal_transient_faults_without_disturbing_permanent_ones() {
    let (web, frontier) = faulted_web(4);
    let visit_once = crawl(&web.network, &frontier, &config(4, 0));
    let with_retries = crawl(&web.network, &frontier, &config(4, 3));

    let transient = |ds: &CrawlDataset| ds.failed().filter(|(_, f)| f.kind.is_transient()).count();
    // TransientConnect plans only 1–3 failing attempts; three retries
    // clear every one of them. DNS-timeout hosts stay transient-kind but
    // never heal — they are planned permanent.
    assert!(transient(&visit_once) > 0, "matrix plants transient faults");
    let healed: Vec<_> = visit_once
        .failed()
        .filter(|(_, f)| f.kind == FailureKind::Transient)
        .map(|(u, _)| u.clone())
        .collect();
    assert!(!healed.is_empty());
    for url in &healed {
        let record = with_retries.records.iter().find(|r| &r.url == url).unwrap();
        assert!(
            matches!(record.outcome, canvassing_crawler::SiteOutcome::Success(_)),
            "{url} should heal under retries"
        );
    }
    // Permanent failures are identical in both datasets.
    let permanent = |ds: &CrawlDataset| -> Vec<(String, FailureKind)> {
        ds.failed()
            .filter(|(_, f)| !f.kind.is_transient())
            .map(|(u, f)| (u.to_string(), f.kind))
            .collect()
    };
    assert_eq!(permanent(&visit_once), permanent(&with_retries));
}

#[test]
fn deadline_and_fuel_map_to_typed_kinds() {
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: 11,
        scale: 0.02,
    });
    let frontier = web.frontier(Cohort::Popular);
    // Pick two healthy hosts and plant a latency spike on one.
    let ds = crawl(&web.network, &frontier, &CrawlConfig::control());
    let healthy: Vec<_> = ds.successful().map(|(u, _)| u.clone()).collect();
    assert!(healthy.len() >= 2);
    web.network
        .faults
        .inject(&healthy[0].host, Fault::LatencySpike { extra_ms: 90_000 });

    let ds = crawl(&web.network, &frontier, &CrawlConfig::control());
    let spiked = ds.records.iter().find(|r| r.url == healthy[0]).unwrap();
    match &spiked.outcome {
        canvassing_crawler::SiteOutcome::Failure(f) => {
            assert_eq!(f.kind, FailureKind::Timeout)
        }
        _ => panic!("spiked site must time out"),
    }

    // A starvation-level fuel budget turns script-heavy visits into
    // ScriptCrash failures instead of hanging anything.
    let mut starved = CrawlConfig::control();
    starved.policy.fuel = Some(10);
    let ds = crawl(&web.network, &frontier, &starved);
    assert!(
        ds.failed().any(|(_, f)| f.kind == FailureKind::ScriptCrash),
        "fuel exhaustion must surface as ScriptCrash"
    );
}
