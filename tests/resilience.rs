//! Resilient-harness acceptance tests: a crawl over a synthetic web with
//! every fault kind injected — including induced worker panics and a
//! mid-crawl checkpoint/resume split — must complete with zero harness
//! panics, one record per frontier URL, a typed per-kind failure
//! breakdown, and byte-identical datasets across worker counts and resume
//! boundaries.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_crawler::{
    crawl, crawl_with_stats, resume_crawl, BreakerPlan, BreakerPolicy, CrawlConfig, CrawlDataset,
    FailureKind, RetryPolicy, VisitFidelity,
};
use canvassing_net::{Fault, FaultMatrix, PageResource, Resource, ScriptRef, ScriptResource, Url};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

/// A synthetic web with a seeded fault matrix layered over roughly a third
/// of the popular frontier (on top of whatever down-sites the generator
/// already planned).
fn faulted_web(seed: u64) -> (SyntheticWeb, Vec<canvassing_net::Url>) {
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: 11,
        scale: 0.02,
    });
    let frontier = web.frontier(Cohort::Popular);
    let matrix = FaultMatrix::new(seed);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    matrix.inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));
    (web, frontier)
}

fn config(workers: usize, retries: u32) -> CrawlConfig {
    let mut config = CrawlConfig::control();
    config.workers = workers;
    config.retry = RetryPolicy::retries(retries);
    config
}

#[test]
fn full_fault_matrix_crawl_yields_one_typed_record_per_site() {
    let (web, frontier) = faulted_web(1);
    let ds = crawl(&web.network, &frontier, &config(8, 0));
    assert_eq!(
        ds.records.len(),
        frontier.len(),
        "one record per frontier URL"
    );
    for (r, u) in ds.records.iter().zip(&frontier) {
        assert_eq!(&r.url, u, "records stay in frontier order");
    }
    let breakdown = ds.failure_breakdown();
    assert_eq!(
        breakdown.values().sum::<usize>(),
        ds.failed().count(),
        "breakdown covers every failure"
    );
    // The matrix hits enough hosts that several kinds must appear,
    // including isolated worker panics.
    assert!(
        breakdown.len() >= 4,
        "expected a diverse breakdown, got {breakdown:?}"
    );
    assert!(
        breakdown.contains_key(&FailureKind::WorkerPanic),
        "matrix plants Fault::Panic hosts; isolation must record them: {breakdown:?}"
    );
}

#[test]
fn faulted_crawl_is_byte_identical_across_worker_counts() {
    let (web, frontier) = faulted_web(2);
    let a = crawl(&web.network, &frontier, &config(1, 1));
    let b = crawl(&web.network, &frontier, &config(8, 1));
    assert_eq!(
        a.to_json().unwrap(),
        b.to_json().unwrap(),
        "records must be pure functions of (url, config, network)"
    );
}

#[test]
fn checkpoint_resume_matches_the_uninterrupted_crawl() {
    let (web, frontier) = faulted_web(3);
    let cfg = config(4, 1);
    let full = crawl(&web.network, &frontier, &cfg);

    // Interrupt after an arbitrary prefix; also drop one record from the
    // middle to model a worker that died before reporting.
    let mut partial_records = full.records[..frontier.len() / 2].to_vec();
    partial_records.remove(frontier.len() / 4);
    let checkpoint = CrawlDataset {
        label: full.label.clone(),
        device_id: full.device_id.clone(),
        records: partial_records,
    };
    let resumed = resume_crawl(&web.network, &frontier, &cfg, &checkpoint);
    assert_eq!(
        resumed.to_json().unwrap(),
        full.to_json().unwrap(),
        "resume must merge to the exact uninterrupted dataset"
    );
}

#[test]
fn retries_heal_transient_faults_without_disturbing_permanent_ones() {
    let (web, frontier) = faulted_web(4);
    let visit_once = crawl(&web.network, &frontier, &config(4, 0));
    let with_retries = crawl(&web.network, &frontier, &config(4, 3));

    let transient = |ds: &CrawlDataset| ds.failed().filter(|(_, f)| f.kind.is_transient()).count();
    // TransientConnect plans only 1–3 failing attempts; three retries
    // clear every one of them. DNS-timeout hosts stay transient-kind but
    // never heal — they are planned permanent.
    assert!(transient(&visit_once) > 0, "matrix plants transient faults");
    let healed: Vec<_> = visit_once
        .failed()
        .filter(|(_, f)| f.kind == FailureKind::Transient)
        .map(|(u, _)| u.clone())
        .collect();
    assert!(!healed.is_empty());
    for url in &healed {
        let record = with_retries.records.iter().find(|r| &r.url == url).unwrap();
        assert!(
            matches!(record.outcome, canvassing_crawler::SiteOutcome::Success(_)),
            "{url} should heal under retries"
        );
    }
    // Permanent failures are identical in both datasets.
    let permanent = |ds: &CrawlDataset| -> Vec<(String, FailureKind)> {
        ds.failed()
            .filter(|(_, f)| !f.kind.is_transient())
            .map(|(u, f)| (u.to_string(), f.kind))
            .collect()
    };
    assert_eq!(permanent(&visit_once), permanent(&with_retries));
}

#[test]
fn deadline_and_fuel_map_to_typed_kinds() {
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: 11,
        scale: 0.02,
    });
    let frontier = web.frontier(Cohort::Popular);
    // Pick two healthy hosts and plant a latency spike on one.
    let ds = crawl(&web.network, &frontier, &CrawlConfig::control());
    let healthy: Vec<_> = ds.successful().map(|(u, _)| u.clone()).collect();
    assert!(healthy.len() >= 2);
    web.network
        .faults
        .inject(&healthy[0].host, Fault::LatencySpike { extra_ms: 90_000 });

    let ds = crawl(&web.network, &frontier, &CrawlConfig::control());
    let spiked = ds.records.iter().find(|r| r.url == healthy[0]).unwrap();
    match &spiked.outcome {
        canvassing_crawler::SiteOutcome::Failure(f) => {
            assert_eq!(f.kind, FailureKind::Timeout)
        }
        _ => panic!("spiked site must time out"),
    }

    // A starvation-level fuel budget turns script-heavy visits into
    // ScriptCrash failures instead of hanging anything.
    let mut starved = CrawlConfig::control();
    starved.policy.fuel = Some(10);
    let ds = crawl(&web.network, &frontier, &starved);
    assert!(
        ds.failed().any(|(_, f)| f.kind == FailureKind::ScriptCrash),
        "fuel exhaustion must surface as ScriptCrash"
    );
}

#[test]
fn retry_timeouts_heals_slow_start_hosts_but_not_permanent_spikes() {
    // The matrix plants both SlowStart (a latency spike that heals after
    // 1–2 attempts) and LatencySpike (permanent) hosts. Timeouts are not
    // retried by default — a deadline blown once usually means a
    // deadline blown every time — so both fail. Opting in to
    // `retry_timeouts` must heal exactly the SlowStart sites: the spike
    // is followed by a normal-latency success on the retry.
    let (web, frontier) = faulted_web(5);
    let slow_start: Vec<_> = frontier
        .iter()
        .filter(|u| {
            matches!(
                web.network.faults.fault_for(&u.host),
                Some(Fault::SlowStart { .. })
            )
        })
        .collect();
    let spiked: Vec<_> = frontier
        .iter()
        .filter(|u| {
            matches!(
                web.network.faults.fault_for(&u.host),
                Some(Fault::LatencySpike { .. })
            )
        })
        .collect();
    assert!(!slow_start.is_empty(), "matrix plants SlowStart hosts");
    assert!(!spiked.is_empty(), "matrix plants LatencySpike hosts");

    let outcome = |ds: &CrawlDataset, url: &canvassing_net::Url| -> Option<FailureKind> {
        match &ds.records.iter().find(|r| &r.url == url).unwrap().outcome {
            canvassing_crawler::SiteOutcome::Success(_) => None,
            canvassing_crawler::SiteOutcome::Failure(f) => Some(f.kind),
        }
    };

    let default_retries = crawl(&web.network, &frontier, &config(4, 2));
    for url in slow_start.iter().chain(&spiked) {
        assert_eq!(
            outcome(&default_retries, url),
            Some(FailureKind::Timeout),
            "{url} must time out while timeouts are not retried"
        );
    }

    let mut healing = config(4, 2);
    healing.retry.retry_timeouts = true;
    let healed = crawl(&web.network, &frontier, &healing);
    for url in &slow_start {
        assert_eq!(
            outcome(&healed, url),
            None,
            "{url} must heal: spike-then-success under retry_timeouts"
        );
    }
    for url in &spiked {
        assert_eq!(
            outcome(&healed, url),
            Some(FailureKind::Timeout),
            "{url} spikes permanently; retrying must not mask it"
        );
    }
}

/// N page hosts all referencing one shared external script host.
fn shared_script_web(page_hosts: usize, script_host: &str) -> (canvassing_net::Network, Vec<Url>) {
    let mut network = canvassing_net::Network::new();
    let script_url = Url::https(script_host, "/fp.js");
    network.host(
        &script_url,
        Resource::Script(ScriptResource {
            source: "let shared = 1;".into(),
            label: "s".into(),
        }),
    );
    let mut frontier = Vec::new();
    for i in 0..page_hosts {
        let url = Url::https(&format!("site{i}.example"), "/");
        network.host(
            &url,
            Resource::Page(PageResource {
                scripts: vec![ScriptRef::External(script_url.clone())],
                consent_banner: false,
                bot_check: false,
            }),
        );
        frontier.push(url);
    }
    (network, frontier)
}

#[test]
fn retried_timeouts_charge_the_breaker_once_per_reference_not_per_attempt() {
    // Six pages share one script host that spikes past the visit deadline
    // on *every* attempt. With `retry_timeouts` and 3 retries, each visit
    // burns 4 attempts on the host — but a retried timeout must settle to
    // ONE failure charge per reference. At threshold 3 the circuit
    // therefore opens at frontier slot 2 (the 3rd referencing visit); if
    // attempts were charged individually, slot 0 alone would trip it.
    let (mut network, frontier) = shared_script_web(6, "cdn.slow.net");
    network
        .faults
        .inject("cdn.slow.net", Fault::LatencySpike { extra_ms: 60_000 });

    let mut cfg = config(4, 3);
    cfg.retry.retry_timeouts = true;
    cfg.breakers = BreakerPolicy::enabled(); // threshold 3

    let plan = BreakerPlan::plan(&network, &frontier, &cfg).expect("breakers enabled");
    let stats = &plan.host_stats["cdn.slow.net"];
    assert_eq!(
        stats.failures, 3,
        "one charge per referencing visit, not per retry attempt"
    );
    assert_eq!(stats.opens, 1);
    assert_eq!(stats.short_circuits, 3, "slots 3..6 short-circuit");
    assert!(plan.open_hosts(2).expect("slot 2").is_empty());
    assert!(plan.transitions_at(2).contains(&(
        "cdn.slow.net".into(),
        canvassing_crawler::BreakerEvent::Opened
    )));
    for slot in 3..6 {
        assert!(
            plan.open_hosts(slot)
                .expect("slot")
                .contains("cdn.slow.net"),
            "slot {slot} must see the open circuit"
        );
    }

    // End to end: the crawl's breaker accounting agrees with the plan.
    let (_, crawl_stats) = crawl_with_stats(&network, &frontier, &cfg);
    assert_eq!(crawl_stats.breaker_opens, 1);
    assert_eq!(crawl_stats.breaker_short_circuits, 3);
}

#[test]
fn healed_slow_start_retries_never_charge_the_breaker() {
    // The same topology, but the script host's spike is a SlowStart that
    // heals after 2 attempts. Under `retry_timeouts` every reference
    // eventually settles, so the breaker must see zero failure charges —
    // while the default policy (timeouts not retried) charges every visit
    // and opens the circuit at slot 2.
    let (mut network, frontier) = shared_script_web(6, "cdn.congested.net");
    network.faults.inject(
        "cdn.congested.net",
        Fault::SlowStart {
            extra_ms: 60_000,
            attempts: 2,
        },
    );

    let mut healing = config(4, 3);
    healing.retry.retry_timeouts = true;
    healing.breakers = BreakerPolicy::enabled();
    let plan = BreakerPlan::plan(&network, &frontier, &healing).expect("breakers enabled");
    let stats = &plan.host_stats["cdn.congested.net"];
    assert_eq!(stats.failures, 0, "healed retries must not charge");
    assert_eq!(stats.opens, 0);

    let mut strict = config(4, 3);
    strict.breakers = BreakerPolicy::enabled();
    let plan = BreakerPlan::plan(&network, &frontier, &strict).expect("breakers enabled");
    let stats = &plan.host_stats["cdn.congested.net"];
    assert_eq!(stats.failures, 3, "unretried timeouts charge per visit");
    assert_eq!(stats.opens, 1);
}

#[test]
fn fidelity_tiers_partition_the_frontier_under_the_full_matrix() {
    let (web, frontier) = faulted_web(6);
    let mut cfg = config(8, 1);
    cfg.salvage = true;
    let ds = crawl(&web.network, &frontier, &cfg);
    let tiers = ds.fidelity_breakdown();
    assert_eq!(
        tiers.values().sum::<usize>(),
        frontier.len(),
        "every site lands in exactly one fidelity tier: {tiers:?}"
    );
    assert_eq!(tiers[&VisitFidelity::Full], ds.success_count());
    assert_eq!(
        tiers[&VisitFidelity::FetchOnly] + tiers[&VisitFidelity::StaticSalvage],
        ds.salvaged().count(),
        "salvage tiers cover exactly the failures carrying partial visits"
    );
    // Opting out of salvage demotes every salvaged site to Lost and
    // changes nothing else.
    let mut no_salvage = config(8, 1);
    no_salvage.salvage = false;
    let bare = crawl(&web.network, &frontier, &no_salvage);
    let bare_tiers = bare.fidelity_breakdown();
    assert_eq!(bare_tiers[&VisitFidelity::StaticSalvage], 0);
    assert_eq!(bare_tiers[&VisitFidelity::FetchOnly], 0);
    assert_eq!(
        bare_tiers[&VisitFidelity::Lost],
        tiers[&VisitFidelity::Lost]
            + tiers[&VisitFidelity::FetchOnly]
            + tiers[&VisitFidelity::StaticSalvage]
    );
    assert_eq!(
        bare_tiers[&VisitFidelity::Full],
        tiers[&VisitFidelity::Full]
    );
}
