//! Crash-consistency acceptance tests for the v2 checkpoint format: a
//! checkpoint corrupted at *any* point — torn writes at every record
//! boundary, plus a seeded randomized sweep of bit flips, truncations,
//! and garbage tails — must recover to a valid prefix of the original
//! records, recovery must be idempotent, and resuming from the recovered
//! prefix must merge byte-identical to the uninterrupted dataset at
//! every worker count.
//!
//! The randomized sweep is a hand-rolled property test (the environment
//! ships a no-op `proptest` stub): a fixed-seed LCG drives the corruption
//! choices, so failures replay exactly.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};

use canvassing_crawler::{
    checkpoint, crawl, crawl_shard_to_segments, list_segments, merge_segments, resume_crawl,
    BreakerPolicy, CrawlConfig, RetryPolicy, SiteRecord,
};
use canvassing_net::FaultMatrix;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

/// Deterministic 64-bit LCG (Knuth MMIX constants) so the sweep replays
/// exactly from its literal seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 16
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// A faulted workload small enough that the sweep's repeated resumes stay
/// cheap: the first 80 popular-frontier sites with the matrix over every
/// third host, breakers and salvage on.
fn workload() -> (SyntheticWeb, Vec<canvassing_net::Url>) {
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: 11,
        scale: 0.02,
    });
    let mut frontier = web.frontier(Cohort::Popular);
    frontier.truncate(80);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    FaultMatrix::new(7).inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));
    (web, frontier)
}

fn resilient_config(workers: usize) -> CrawlConfig {
    let mut config = CrawlConfig::control();
    config.workers = workers;
    config.retry = RetryPolicy::retries(1);
    config.breakers = BreakerPolicy::enabled();
    config.salvage = true;
    config
}

fn tmp_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ckpt-recovery-{tag}-{}.log", std::process::id()))
}

fn record_json(r: &SiteRecord) -> String {
    serde_json::to_string(r).unwrap()
}

fn is_prefix(prefix: &[SiteRecord], full: &[SiteRecord]) -> bool {
    prefix.len() <= full.len()
        && prefix
            .iter()
            .zip(full)
            .all(|(a, b)| record_json(a) == record_json(b))
}

#[test]
fn clean_checkpoints_roundtrip_untouched() {
    let (web, frontier) = workload();
    let config = resilient_config(4);
    let full = crawl(&web.network, &frontier, &config);

    let path = tmp_path("clean");
    let mut writer =
        checkpoint::CheckpointWriter::create(&path, &full.label, &full.device_id).unwrap();
    for record in &full.records {
        writer.append(record).unwrap();
    }
    drop(writer);
    let before = std::fs::read(&path).unwrap();
    let (recovered, report) = checkpoint::recover(&path).unwrap();
    assert!(report.clean(), "intact file must report clean: {report:?}");
    assert_eq!(recovered.to_json().unwrap(), full.to_json().unwrap());
    assert_eq!(
        std::fs::read(&path).unwrap(),
        before,
        "clean recovery must not rewrite the file"
    );

    // save_atomic produces the same durable form as incremental appends.
    let atomic = tmp_path("atomic");
    checkpoint::save_atomic(&atomic, &full).unwrap();
    assert_eq!(std::fs::read(&atomic).unwrap(), before);
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&atomic);
}

#[test]
fn torn_write_at_every_boundary_recovers_exactly_the_prefix() {
    let (web, frontier) = workload();
    let config = resilient_config(4);
    let full = crawl(&web.network, &frontier, &config);
    let path = tmp_path("torn");

    for k in 0..full.records.len() {
        let mut writer =
            checkpoint::CheckpointWriter::create(&path, &full.label, &full.device_id).unwrap();
        for record in &full.records[..k] {
            writer.append(record).unwrap();
        }
        writer.arm_torn_write(&full.records[k].url.host);
        assert!(
            writer.append(&full.records[k]).is_err(),
            "armed torn write must surface as an append error"
        );
        assert!(
            writer.append(&full.records[k]).is_err(),
            "a poisoned writer must refuse further appends"
        );
        drop(writer);

        let (recovered, report) = checkpoint::recover(&path).unwrap();
        assert_eq!(recovered.records.len(), k, "prefix length at tear {k}");
        assert_eq!(report.corrupted_at, Some(k));
        assert!(report.bytes_truncated > 0, "the partial line is discarded");
        assert!(is_prefix(&recovered.records, &full.records));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn randomized_corruption_sweep_recovers_and_resumes_byte_identical() {
    let (web, frontier) = workload();
    let config = resilient_config(4);
    let full = crawl(&web.network, &frontier, &config);
    let full_json = full.to_json().unwrap();

    // Pristine checkpoint bytes, produced once; every iteration corrupts
    // a fresh copy.
    let path = tmp_path("sweep");
    checkpoint::save_atomic(&path, &full).unwrap();
    let pristine = std::fs::read(&path).unwrap();
    let header_len = pristine.iter().position(|&b| b == b'\n').unwrap() + 1;

    let mut rng = Lcg(0xC0FFEE);
    let mut corrupted_runs = 0usize;
    for iteration in 0..48 {
        let mut bytes = pristine.clone();
        let offset = header_len + rng.below(bytes.len() - header_len);
        match rng.below(3) {
            0 => {
                // Flip one bit somewhere past the header.
                let bit = 1u8 << rng.below(8);
                bytes[offset] ^= bit;
            }
            1 => {
                // Crash truncation: the file simply ends mid-stream.
                bytes.truncate(offset);
            }
            _ => {
                // Torn tail: garbage bytes past a truncation point.
                bytes.truncate(offset);
                let garbage = rng.below(40) + 1;
                for _ in 0..garbage {
                    bytes.push((rng.next() & 0xff) as u8);
                }
            }
        }
        std::fs::write(&path, &bytes).unwrap();

        let (recovered, report) = checkpoint::recover(&path).unwrap();
        assert!(
            is_prefix(&recovered.records, &full.records),
            "iteration {iteration}: recovery must yield a pristine prefix"
        );
        if !report.clean() {
            corrupted_runs += 1;
        }
        // Idempotence: recovering the truncated file again is clean and
        // yields the same prefix.
        let (again, second) = checkpoint::recover(&path).unwrap();
        assert!(
            second.clean(),
            "iteration {iteration}: second recovery must be clean"
        );
        assert_eq!(again.records.len(), recovered.records.len());

        // Resuming from the recovered prefix merges byte-identical to the
        // uninterrupted dataset at every worker count.
        for workers in [1usize, 4, 8] {
            let cfg = resilient_config(workers);
            let resumed = resume_crawl(&web.network, &frontier, &cfg, &recovered);
            assert_eq!(
                resumed.to_json().unwrap(),
                full_json,
                "iteration {iteration}: resume at {workers} workers diverged"
            );
        }
    }
    assert!(
        corrupted_runs > 40,
        "the sweep must mostly hit real corruption, got {corrupted_runs}/48"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn recovery_refuses_files_without_a_valid_header() {
    let path = tmp_path("header");
    std::fs::write(&path, b"not a header\n").unwrap();
    assert!(checkpoint::recover(&path).is_err());
    std::fs::write(&path, b"").unwrap();
    assert!(checkpoint::recover(&path).is_err());
    let _ = std::fs::remove_file(&path);
}

/// Spills the workload into sharded segments and returns
/// `(spill dir, segment paths, pristine bytes per segment)`.
fn spilled_workload(
    tag: &str,
    web: &SyntheticWeb,
    frontier: &[canvassing_net::Url],
    config: &CrawlConfig,
) -> (PathBuf, Vec<PathBuf>, Vec<Vec<u8>>) {
    let dir = std::env::temp_dir().join(format!("seg-recovery-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for shard in 0..2 {
        crawl_shard_to_segments(&web.network, frontier, config, &dir, shard, 2, 16, 8).unwrap();
    }
    let segments = list_segments(&dir).unwrap();
    assert!(segments.len() >= 4, "80 sites / 2 shards / 16 per segment");
    let pristine: Vec<Vec<u8>> = segments.iter().map(|p| std::fs::read(p).unwrap()).collect();
    (dir, segments, pristine)
}

/// The records a pristine segment holds (recovering a clean file is a
/// pure read).
fn segment_records(path: &Path) -> Vec<SiteRecord> {
    let (ds, report) = checkpoint::recover(path).unwrap();
    assert!(report.clean());
    ds.records
}

/// Byte offsets of every record-frame boundary in a segment file
/// (start of each record line, plus end of file).
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
    let mut boundaries = vec![header_len];
    for (i, &b) in bytes[header_len..].iter().enumerate() {
        if b == b'\n' {
            boundaries.push(header_len + i + 1);
        }
    }
    boundaries
}

/// PR-9 extension of the boundary sweep to segment files: tearing *any*
/// segment at *any* frame boundary — and mid-frame — truncates that
/// segment to its valid prefix on recovery, and a merge over the
/// recovered segments resumes the lost suffix byte-identical to the
/// uninterrupted crawl.
#[test]
fn segment_torn_at_every_frame_boundary_merges_byte_identical() {
    let (web, frontier) = workload();
    let config = resilient_config(4);
    let full = crawl(&web.network, &frontier, &config);
    let full_json = full.to_json().unwrap();
    let (dir, segments, pristine) = spilled_workload("boundary", &web, &frontier, &config);

    for (seg, bytes) in segments.iter().zip(&pristine) {
        let original = segment_records(seg);
        let boundaries = frame_boundaries(bytes);
        // Tear exactly at each boundary, and mid-way into each frame.
        let mut tears: Vec<usize> = boundaries.clone();
        for pair in boundaries.windows(2) {
            tears.push(pair[0] + (pair[1] - pair[0]) / 2);
        }
        for &tear in &tears {
            std::fs::write(seg, &bytes[..tear]).unwrap();

            let (recovered, report) = checkpoint::recover(seg).unwrap();
            assert!(
                is_prefix(&recovered.records, &original),
                "{} torn at {tear}: recovery must be a pristine prefix",
                seg.display()
            );
            let clean_tear = boundaries.contains(&tear);
            assert_eq!(
                report.clean(),
                clean_tear,
                "{} torn at {tear}: mid-frame tears must report dirty",
                seg.display()
            );

            let (merged, merge_report) =
                merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
            assert_eq!(
                merged.to_json().unwrap(),
                full_json,
                "{} torn at {tear}: merge diverged",
                seg.display()
            );
            assert_eq!(
                merge_report.recrawled,
                frontier.len() - merge_report.records_recovered,
                "{} torn at {tear}: every lost record is recrawled",
                seg.display()
            );

            std::fs::write(seg, bytes).unwrap();
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The PR-5 seeded-LCG corruption sweep, retargeted at segment files:
/// random bit flips, truncations, and garbage tails land on random
/// segments; recovery always yields a valid prefix and the resumed
/// merge is always byte-identical.
#[test]
fn randomized_segment_corruption_sweep_merges_byte_identical() {
    let (web, frontier) = workload();
    let config = resilient_config(4);
    let full = crawl(&web.network, &frontier, &config);
    let full_json = full.to_json().unwrap();
    let (dir, segments, pristine) = spilled_workload("sweep", &web, &frontier, &config);

    let originals: Vec<Vec<SiteRecord>> = segments.iter().map(|p| segment_records(p)).collect();
    let mut rng = Lcg(0x5E60_DD5E);
    let mut dirty_merges = 0usize;
    for iteration in 0..32 {
        let victim = rng.below(segments.len());
        let bytes = &pristine[victim];
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap() + 1;
        let mut corrupt = bytes.clone();
        let offset = header_len + rng.below(corrupt.len() - header_len);
        match rng.below(3) {
            0 => corrupt[offset] ^= 1u8 << rng.below(8),
            1 => corrupt.truncate(offset),
            _ => {
                corrupt.truncate(offset);
                for _ in 0..rng.below(40) + 1 {
                    corrupt.push((rng.next() & 0xff) as u8);
                }
            }
        }
        std::fs::write(&segments[victim], &corrupt).unwrap();

        let (recovered, _) = checkpoint::recover(&segments[victim]).unwrap();
        assert!(
            is_prefix(&recovered.records, &originals[victim]),
            "iteration {iteration}: segment recovery must be a pristine prefix"
        );
        let (merged, report) =
            merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
        assert_eq!(
            merged.to_json().unwrap(),
            full_json,
            "iteration {iteration}: merge after corrupting segment {victim} diverged"
        );
        if report.recrawled > 0 {
            dirty_merges += 1;
        }

        std::fs::write(&segments[victim], bytes).unwrap();
    }
    assert!(
        dirty_merges > 20,
        "the sweep must mostly cost real records, got {dirty_merges}/32"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The crawl → checkpoint → crash → recover → resume loop end to end,
/// driven by the fault plan's own `TornWrite` entries (the same wiring
/// `examples/fault_lab.rs` demonstrates).
#[test]
fn plan_armed_torn_writes_compose_with_resume() {
    let (web, frontier) = workload();
    let config = resilient_config(4);
    let full = crawl(&web.network, &frontier, &config);
    let torn_hosts: Vec<&str> = frontier
        .iter()
        .map(|u| u.host.as_str())
        .filter(|h| {
            matches!(
                web.network.faults.fault_for(h),
                Some(canvassing_net::Fault::TornWrite)
            )
        })
        .collect();
    assert!(
        !torn_hosts.is_empty(),
        "matrix plants TornWrite hosts in this workload"
    );

    let path = tmp_path("plan-armed");
    let mut writer =
        checkpoint::CheckpointWriter::create(&path, &full.label, &full.device_id).unwrap();
    writer.arm_faults(&web.network.faults);
    let mut wrote = 0usize;
    for record in &full.records {
        if writer.append(record).is_err() {
            break;
        }
        wrote += 1;
    }
    assert!(
        wrote < full.records.len(),
        "the first TornWrite host tears the log"
    );
    let (recovered, report) = checkpoint::recover(&path).unwrap();
    assert_eq!(recovered.records.len(), wrote);
    assert_eq!(report.corrupted_at, Some(wrote));
    let resumed = resume_crawl(&web.network, &frontier, &config, &recovered);
    assert_eq!(resumed.to_json().unwrap(), full.to_json().unwrap());
    let _ = std::fs::remove_file(&path);
}

/// The supervisor's crash primitive (`CheckpointWriter::tear`) leaves
/// exactly the torn-tail shape the recovery sweep defends against: the
/// fully-flushed prefix recovers clean, the in-flight record is the one
/// casualty, and resuming from the recovered prefix merges
/// byte-identical — the per-crash re-work bound the chaos gates rely on.
#[test]
fn supervisor_tear_recovers_to_the_flushed_prefix() {
    let (web, frontier) = workload();
    let config = resilient_config(1);
    let full = crawl(&web.network, &frontier, &config);
    for cut in [0usize, 1, 7, full.records.len() - 1] {
        let path = tmp_path(&format!("tear-{cut}"));
        let mut writer =
            checkpoint::CheckpointWriter::create(&path, &full.label, &full.device_id).unwrap();
        for record in &full.records[..cut] {
            writer.append(record).unwrap();
        }
        writer.tear(&full.records[cut]).unwrap();
        assert!(
            writer.append(&full.records[cut]).is_err(),
            "a torn writer must be poisoned"
        );
        let (recovered, report) = checkpoint::recover(&path).unwrap();
        assert_eq!(recovered.records.len(), cut, "only the flushed prefix");
        assert_eq!(report.corrupted_at, Some(cut));
        let (again, re_report) = checkpoint::recover(&path).unwrap();
        assert_eq!(again.records.len(), cut, "recovery is idempotent");
        assert!(re_report.clean(), "the truncated file re-recovers clean");
        let resumed = resume_crawl(&web.network, &frontier, &config, &recovered);
        assert_eq!(resumed.to_json().unwrap(), full.to_json().unwrap());
        let _ = std::fs::remove_file(&path);
    }
}
