//! Static-vs-dynamic cross-validation at acceptance scale.
//!
//! The static AST classifier and the dynamic §3.2 detector must agree on
//! the generated corpus: pooled across both cohorts at scale 0.2, the
//! static pass scores F1 ≥ 0.95 against the dynamic ground truth, with
//! no false positives hiding inside a high-recall matrix.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::detect::detect;
use canvassing::validation::{cross_validate, ConfusionMatrix};
use canvassing_browser::{Browser, PageVisit};
use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_net::{PageResource, Resource, ScriptRef, ScriptResource, Url};
use canvassing_raster::DeviceProfile;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

#[test]
fn static_dynamic_agreement_reaches_f1_095_at_scale_02() {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 2025,
        scale: 0.2,
    });
    let mut config = CrawlConfig::control();
    config.workers = 8;

    let mut pooled = ConfusionMatrix::default();
    for cohort in [Cohort::Popular, Cohort::Tail] {
        let dataset = crawl(&web.network, &web.frontier(cohort), &config);
        let detections: Vec<_> = dataset.successful().map(|(_, v)| detect(v)).collect();
        let matrix = cross_validate(&dataset, &detections);
        assert!(
            matrix.decided() > 50,
            "{cohort:?}: only {} unique scripts decided",
            matrix.decided()
        );
        assert!(
            matrix.f1() >= 0.95,
            "{cohort:?}: F1 {:.3} below acceptance bar ({matrix:?})",
            matrix.f1()
        );
        pooled.merge(&matrix);
    }

    assert!(
        pooled.f1() >= 0.95,
        "pooled F1 {:.3} below acceptance bar ({pooled:?})",
        pooled.f1()
    );
    // The static pass must not invent fingerprinters: anything it calls
    // `Fingerprinting` fired dynamically somewhere in the crawl.
    assert_eq!(pooled.fp, 0, "static false positives: {pooled:?}");
    // Abstentions must stay rare — the corpus is designed to be
    // statically classifiable.
    assert!(
        (pooled.inconclusive as f64) < 0.05 * pooled.total() as f64,
        "too many inconclusive scripts: {pooled:?}"
    );
}

/// Serves `source` on a one-page network and runs one instrumented visit.
fn run_one(source: &str) -> PageVisit {
    let mut network = canvassing_net::Network::new();
    let script_url = Url::https("scripts.example", "/probe.js");
    network.host(
        &script_url,
        Resource::Script(ScriptResource {
            source: source.to_string(),
            label: "probe".into(),
        }),
    );
    network.host(
        &Url::https("site.com", "/"),
        Resource::Page(PageResource {
            scripts: vec![ScriptRef::External(script_url)],
            consent_banner: false,
            bot_check: false,
        }),
    );
    Browser::new(DeviceProfile::intel_ubuntu())
        .visit(&network, &Url::https("site.com", "/"))
        .expect("visit succeeds")
}

/// Static `Fingerprinting` must imply the dynamic detector fires: every
/// vendor script (OSS and commercial builds) is statically positive, and
/// executing it produces a fingerprintable canvas.
#[test]
fn static_fingerprinting_implies_dynamic_for_every_vendor_script() {
    use canvassing_vendors::{all_vendors, scripts};
    for vendor in all_vendors() {
        for commercial in [false, true] {
            let source = scripts::source(vendor.id, &scripts::site_token("site.com"), commercial);
            let verdict = canvassing_analysis::classify_source(&source).verdict;
            assert!(
                verdict.is_fingerprinting(),
                "{} (commercial={commercial}): static verdict {verdict:?}",
                vendor.name
            );
            let detection = detect(&run_one(&source));
            assert!(
                detection.is_fingerprinting(),
                "{} (commercial={commercial}): statically fingerprinting but \
                 dynamically silent",
                vendor.name
            );
        }
    }
}

/// Deterministic twin of `generated_corpus_has_no_static_false_positives`
/// below: the proptest stub swallows bodies, so the same property is
/// exercised exhaustively over a fixed slice of the generator space.
#[test]
fn generated_scripts_never_statically_positive_while_dynamically_silent() {
    use canvassing_vendors::{benign, scripts};
    for n in 0..24u64 {
        let source = scripts::generic_fingerprinter(n);
        let verdict = canvassing_analysis::classify_source(&source).verdict;
        if verdict.is_fingerprinting() {
            let detection = detect(&run_one(&source));
            assert!(
                detection.is_fingerprinting(),
                "generic_fingerprinter({n}): static false positive"
            );
        }
    }
    for kind in benign::BenignKind::all() {
        for variant in 0..8u64 {
            let source = benign::source(*kind, variant);
            let verdict = canvassing_analysis::classify_source(&source).verdict;
            if verdict.is_fingerprinting() {
                let detection = detect(&run_one(&source));
                assert!(
                    detection.is_fingerprinting(),
                    "{kind:?}/{variant}: static false positive"
                );
            }
        }
    }
}

mod proptests {
    #![allow(unused_imports)]
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Any generated script the static pass labels `Fingerprinting`
        /// must also trigger the dynamic detector when executed.
        #[test]
        fn generated_corpus_has_no_static_false_positives(n in 0u64..10_000) {
            let source = canvassing_vendors::scripts::generic_fingerprinter(n);
            let verdict = canvassing_analysis::classify_source(&source).verdict;
            if verdict.is_fingerprinting() {
                prop_assert!(detect(&run_one(&source)).is_fingerprinting());
            }
        }
    }
}
