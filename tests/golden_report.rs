//! Golden-snapshot test: the full plain-text study report at a canonical
//! seed/scale must be byte-identical to the checked-in snapshot. Any
//! intentional change to detection, clustering, attribution, report
//! formatting, or the trace layer shows up here as a readable diff.
//!
//! To regenerate after an intentional change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_report
//! ```
//!
//! then review the diff of `tests/golden/report_scale_0.1.txt` like any
//! other code change (see DESIGN.md's trace/observability section).

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::study::{run_study, StudyOptions};
use canvassing_webgen::{SyntheticWeb, WebConfig};

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../tests/golden/report_scale_0.1.txt"
);

fn canonical_report() -> &'static String {
    static REPORT: std::sync::OnceLock<String> = std::sync::OnceLock::new();
    REPORT.get_or_init(render_canonical)
}

fn render_canonical() -> String {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 2025,
        scale: 0.1,
    });
    let results = run_study(
        &web,
        &StudyOptions {
            workers: 4,
            adblock_crawls: true,
            m1_validation: true,
            defense_sweep: false,
            trace: true,
            serving: false,
            engine: Default::default(),
        },
    );
    results.render_report()
}

#[test]
fn report_matches_golden_snapshot() {
    let report = canonical_report();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN_PATH, report).expect("write golden snapshot");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden snapshot missing — run with UPDATE_GOLDEN=1 to create it");
    if *report != golden {
        // Byte-diff with a readable first-divergence report: a full
        // assert_eq! dump of two multi-kilobyte reports is unreviewable.
        let report_lines: Vec<&str> = report.lines().collect();
        let golden_lines: Vec<&str> = golden.lines().collect();
        for (i, (got, want)) in report_lines.iter().zip(&golden_lines).enumerate() {
            assert_eq!(
                got,
                want,
                "report diverges from golden at line {} (regen with UPDATE_GOLDEN=1 \
                 if the change is intentional)",
                i + 1
            );
        }
        panic!(
            "report line count changed: {} vs golden {} (regen with UPDATE_GOLDEN=1 \
             if the change is intentional)",
            report_lines.len(),
            golden_lines.len()
        );
    }
}

/// Structural companion to the byte-level snapshot: the sections the
/// resilience and observability layers contribute must render regardless
/// of the exact numbers (so a regen cannot silently drop them).
#[test]
fn report_renders_resilience_and_observability_sections() {
    let report = canonical_report();
    for section in [
        "== Failure bias (fidelity tiers) ==",
        "== Resilience (breakers and salvage) ==",
        "== Observability (trace layer) ==",
        "worst-case interval [",
        "salvage-inclusive",
    ] {
        assert!(report.contains(section), "report lost section {section:?}");
    }
    // Every fidelity tier row renders, zero-filled or not.
    for tier in canvassing_crawler::VisitFidelity::all() {
        assert!(
            report.contains(&format!("{tier}")),
            "missing fidelity tier row {tier}"
        );
    }
}

/// The bytecode-engine rows must render (a regen cannot silently drop
/// them), with a nonempty corpus and a clean verifier on both cohorts.
#[test]
fn report_renders_bytecode_engine_rows() {
    let report = canonical_report();
    assert!(report.contains("== Bytecode engine: recovered verdicts and verifier =="));
    assert!(report.contains("Cohort | bodies | AST-inconclusive | recovered (fp)"));
    for cohort in ["Popular", "Tail"] {
        let row = report
            .lines()
            .find(|l| l.starts_with(cohort) && l.contains("chunks"))
            .unwrap_or_else(|| panic!("no bytecode-engine row for {cohort}"));
        assert!(
            row.ends_with("0 rejected"),
            "verifier rejected chunks: {row}"
        );
    }
}
