//! Cross-crate integration: generate a synthetic web, run the full study,
//! and check every experiment's *shape* against the paper.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::study::{run_study, StudyOptions};
use canvassing_webgen::{SyntheticWeb, WebConfig};

fn study() -> &'static canvassing::study::StudyResults {
    static STUDY: std::sync::OnceLock<canvassing::study::StudyResults> = std::sync::OnceLock::new();
    STUDY.get_or_init(|| {
        let web = SyntheticWeb::generate(WebConfig {
            seed: 7,
            scale: 0.05,
        });
        run_study(
            &web,
            &StudyOptions {
                workers: 4,
                adblock_crawls: true,
                m1_validation: true,
                defense_sweep: false,
                trace: false,
                serving: false,
                engine: Default::default(),
            },
        )
    })
}

#[test]
fn full_study_shapes_match_the_paper() {
    let results = study();

    // E1: prevalence — popular ≈ 12.7%, tail ≈ 9.9%, popular > tail.
    let p = results.popular.prevalence.fingerprinting_rate();
    let t = results.tail.prevalence.fingerprinting_rate();
    assert!((0.09..=0.17).contains(&p), "popular rate {p}");
    assert!((0.07..=0.13).contains(&t), "tail rate {t}");
    assert!(p > t);

    // E3: reach — a few hundred canvases dominate; tail mostly overlaps
    // popular.
    assert!(results.popular.clustering.unique_canvases() >= 15);
    assert!(results.overlap.sharing_fraction() > 0.75);

    // E2: Figure 1 — the Shopify-style outlier: most frequent tail canvas
    // is rare among popular sites.
    // (At reduced scale the precise ratio is noisy; the paper-scale run in
    // the repro binary shows the full 32-vs-457 Shopify gap.)
    let (outlier_pop, outlier_tail) = results.figure1.tail_outlier.expect("outlier");
    assert!(
        outlier_tail > outlier_pop,
        "tail outlier {outlier_tail} vs popular {outlier_pop}"
    );

    // E4: Table 1 — Akamai and FingerprintJS dominate popular;
    // Shopify dominates tail; security vendors are the minority of reach.
    let find = |name: &str| {
        results
            .attribution
            .vendors
            .iter()
            .find(|v| v.name == name)
            .unwrap_or_else(|| panic!("vendor {name}"))
    };
    let akamai = find("Akamai");
    let fpjs = find("FingerprintJS");
    let shopify = find("Shopify");
    assert!(akamai.popular_sites > shopify.popular_sites);
    assert!(fpjs.popular_sites > shopify.popular_sites);
    assert!(shopify.tail_sites > akamai.tail_sites);
    assert!(shopify.tail_sites > fpjs.tail_sites);
    // Attribution covers roughly the paper's 73% / 71%.
    assert!((0.55..=0.90).contains(&results.attribution.popular_coverage()));
    assert!((0.55..=0.90).contains(&results.attribution.tail_coverage()));

    // E5: Table 2 — ad blockers reduce fingerprinting only modestly.
    assert_eq!(results.table2.len(), 3);
    let control = &results.table2[0];
    for blocked_run in &results.table2[1..] {
        let canvas_keep = blocked_run.canvases.0 as f64 / control.canvases.0 as f64;
        let site_keep = blocked_run.sites.0 as f64 / control.sites.0 as f64;
        assert!(
            canvas_keep > 0.85,
            "{}: canvases {canvas_keep}",
            blocked_run.label
        );
        assert!(site_keep > 0.85, "{}: sites {site_keep}", blocked_run.label);
        assert!(canvas_keep <= 1.0 && site_keep <= 1.0);
    }

    // E6: Table 4 — static coverage far exceeds dynamic blocking.
    let coverage = &results.popular.coverage;
    assert!(coverage.any > 0);
    let any_frac = coverage.any as f64 / coverage.total as f64;
    assert!((0.30..=0.65).contains(&any_frac), "any {any_frac}");
    assert!(coverage.all <= coverage.disconnect);
    assert!(coverage.all <= coverage.easylist);
    let blocked_frac = 1.0 - results.table2[1].canvases.0 as f64 / control.canvases.0 as f64;
    assert!(
        any_frac > 4.0 * blocked_frac,
        "static {any_frac} should dwarf dynamic {blocked_frac}"
    );

    // E7: evasion — first-party serving on roughly half of fp sites;
    // subdomain routing more common among popular sites.
    let pe = &results.popular.evasion;
    let te = &results.tail.evasion;
    let fp_share = pe.pct(pe.first_party_sites);
    assert!((30.0..=70.0).contains(&fp_share), "first-party {fp_share}");
    assert!(pe.pct(pe.subdomain_sites) > te.pct(te.subdomain_sites));

    // E8: double-render checks on a large minority of sites.
    let dr = pe.pct(pe.double_render_sites);
    assert!((25.0..=60.0).contains(&dr), "double-render {dr}");

    // E9: most extractions are fingerprintable, but not all.
    let frac = results.popular.prevalence.fingerprintable_fraction();
    assert!((0.7..=0.97).contains(&frac), "fingerprintable {frac}");
    assert!(results.popular.prevalence.fully_excluded_sites > 0);

    // E10: cross-device validation.
    let v = results.validation.as_ref().expect("validation ran");
    assert!(v.canvases_differ);
    assert!(v.partitions_match);
    assert_eq!(v.unique_canvases.0, v.unique_canvases.1);
}

#[test]
fn report_renders_every_section() {
    let results = study();
    let report = results.render_report();
    for needle in [
        "Prevalence (Section 4.1)",
        "Reach (Section 4.2)",
        "Figure 1",
        "Table 1",
        "Table 2",
        "Table 4",
        "Evasion (Section 5.2)",
        "Cross-device validation",
        "Akamai",
        "Shopify",
    ] {
        assert!(report.contains(needle), "missing {needle}");
    }
}

#[test]
fn imperva_attribution_is_bounded_by_its_deployments() {
    // Imperva canvases are per-site unique, so the regex-based attribution
    // must find them without a canvas cluster, and only them.
    let results = study();
    let imperva = results
        .attribution
        .vendors
        .iter()
        .find(|v| v.name == "Imperva")
        .unwrap();
    // At 5% scale the plan places ~2 popular and 1 tail Imperva sites.
    assert!(
        imperva.popular_sites >= 1,
        "imperva popular {}",
        imperva.popular_sites
    );
    assert!(imperva.popular_sites <= 6);
}
