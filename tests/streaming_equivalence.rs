//! Streaming-path equivalence gates (PR 9).
//!
//! The constant-memory pipeline — chunked scheduler, sharded segment
//! spill, [`CohortAccumulator`]-based aggregation — must be *invisible*
//! in the results: every record identical to the batch crawler's, every
//! report byte identical to [`run_study`]'s, across worker counts, cache
//! temperature, fault injection, and shard/segment geometry. These tests
//! sweep that matrix at reduced scale; `canvassing-bench`'s `scale` bin
//! re-runs the report gate at scale 1.0 under a peak-RSS cap.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::PathBuf;

use canvassing::study::{run_study, run_study_streamed, StreamingOptions, StudyOptions};
use canvassing_crawler::{
    crawl, crawl_shard_to_segments, crawl_streamed, crawl_with_caches, list_segments,
    merge_segments, CrawlConfig, CrawlDataset, RetryPolicy, SiteRecord,
};
use canvassing_net::{FaultMatrix, Url};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn tmp_dir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("canvassing-stream-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

/// A faulted crawl workload: planned outages across the frontier so the
/// equivalence sweep covers retries, salvage, and failure records — not
/// just the happy path.
fn workload() -> (SyntheticWeb, Vec<Url>, CrawlConfig) {
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: 11,
        scale: 0.02,
    });
    let mut frontier = web.frontier(Cohort::Popular);
    frontier.truncate(80);
    let targets: Vec<String> = frontier.iter().step_by(3).map(|u| u.host.clone()).collect();
    FaultMatrix::new(7).inject_all(&mut web.network.faults, targets.iter().map(String::as_str));
    let mut config = CrawlConfig::control();
    config.workers = 4;
    config.retry = RetryPolicy::retries(1);
    (web, frontier, config)
}

fn records_json(records: &[SiteRecord]) -> String {
    records
        .iter()
        .map(|r| serde_json::to_string(r).unwrap())
        .collect::<Vec<_>>()
        .join("\n")
}

/// The tentpole gate: the full study — adblock re-crawls, M1
/// validation, traced control crawls — renders byte-identical whether
/// the control cohorts were materialized in memory or streamed through
/// accumulators in 64-site chunks, sharded 3 ways, and spilled to
/// 256-record segments.
#[test]
fn streamed_study_report_is_byte_identical() {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 2025,
        scale: 0.2,
    });
    let options = StudyOptions {
        workers: 4,
        adblock_crawls: true,
        m1_validation: true,
        defense_sweep: false,
        trace: true,
        serving: false,
        engine: Default::default(),
    };
    let spill = tmp_dir("study-spill");
    let streaming = StreamingOptions {
        chunk_sites: 64,
        segment_sites: 256,
        spill_dir: Some(spill.clone()),
        shards: 3,
    };

    let batch = run_study(&web, &options).render_report();
    let streamed = run_study_streamed(&web, &options, &streaming)
        .unwrap()
        .render_report();

    if batch != streamed {
        let at = batch
            .bytes()
            .zip(streamed.bytes())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| batch.len().min(streamed.len()));
        let lo = at.saturating_sub(120);
        panic!(
            "streamed report diverges at byte {at}:\n--- batch ---\n{}\n--- streamed ---\n{}",
            &batch[lo..(at + 120).min(batch.len())],
            &streamed[lo..(at + 120).min(streamed.len())],
        );
    }

    // The spill is a complete, independently mergeable copy of each
    // control crawl: recovering the popular segments and resuming over
    // the frontier reproduces a direct batch crawl byte for byte.
    let mut control = CrawlConfig::control();
    control.workers = options.workers;
    let frontier = web.frontier(Cohort::Popular);
    let segments = list_segments(&spill.join("popular")).unwrap();
    assert!(
        segments.len() >= 3,
        "3 shards over {} sites at 256/segment should seal >=3 segments",
        frontier.len()
    );
    let (merged, report) =
        merge_segments(&web.network, &frontier, &control, &segments, None).unwrap();
    assert_eq!(report.records_recovered, frontier.len());
    assert_eq!(report.recrawled, 0);
    let direct = crawl(&web.network, &frontier, &control);
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        serde_json::to_string(&direct).unwrap()
    );
    std::fs::remove_dir_all(&spill).ok();
}

/// Crawl-level equivalence under faults: the chunked streaming
/// scheduler delivers exactly the batch scheduler's records, for every
/// worker count, from both cold and warm caches, with stats to match.
#[test]
fn streamed_records_match_batch_across_workers_and_cache_temperature() {
    let (web, frontier, _) = workload();
    for workers in [1usize, 4, 8] {
        let mut config = CrawlConfig::control();
        config.workers = workers;
        config.retry = RetryPolicy::retries(1);
        // One caches instance per path: the two runs must start each
        // pass at the same cache temperature to produce the same stats.
        let batch_caches = config.build_caches();
        let stream_caches = config.build_caches();
        for pass in ["cold", "warm"] {
            let (batch_ds, batch_stats) =
                crawl_with_caches(&web.network, &frontier, &config, &batch_caches);
            let mut streamed: Vec<SiteRecord> = Vec::new();
            let streamed_stats = crawl_streamed(
                &web.network,
                &frontier,
                &config,
                &stream_caches,
                17,
                |i, record| {
                    assert_eq!(i, streamed.len(), "records must arrive in frontier order");
                    streamed.push(record);
                },
            );
            assert_eq!(
                records_json(&batch_ds.records),
                records_json(&streamed),
                "workers={workers} pass={pass}"
            );
            assert_eq!(batch_stats, streamed_stats, "workers={workers} pass={pass}");
        }
    }
}

/// Spill + merge identity under faults, swept over shard counts and a
/// deliberately awkward segment size (13 never divides the shard
/// ranges evenly, so every boundary case — short final segments, sealed
/// vs finish-sealed — is exercised).
#[test]
fn sharded_spill_merges_identically_for_all_shard_counts() {
    let (web, frontier, config) = workload();
    let full = crawl(&web.network, &frontier, &config);
    for shards in [1usize, 4, 8] {
        let dir = tmp_dir(&format!("shards-{shards}"));
        for shard in 0..shards {
            crawl_shard_to_segments(&web.network, &frontier, &config, &dir, shard, shards, 13, 9)
                .unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        let (merged, report) =
            merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
        assert_eq!(report.records_recovered, frontier.len(), "shards={shards}");
        assert_eq!(report.segments_recovered_dirty, 0, "shards={shards}");
        assert_eq!(
            report.duplicates_dropped, 0,
            "disjoint shards never overlap"
        );
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&full).unwrap(),
            "shards={shards}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A merge over a *partial* spill (some shards never ran) recrawls the
/// gap and still lands byte-identical — the scale-out story's crash
/// tolerance: losing a whole shard's process costs its sites' work,
/// never correctness.
#[test]
fn merge_with_missing_shard_recrawls_the_gap_identically() {
    let (web, frontier, config) = workload();
    let full = crawl(&web.network, &frontier, &config);
    let dir = tmp_dir("missing-shard");
    // Run shards 0 and 2 of 3; shard 1 "crashed before starting".
    for shard in [0usize, 2] {
        crawl_shard_to_segments(&web.network, &frontier, &config, &dir, shard, 3, 13, 9).unwrap();
    }
    let segments = list_segments(&dir).unwrap();
    let (merged, report) =
        merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
    assert!(report.recrawled > 0, "the lost shard must be recrawled");
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        serde_json::to_string(&full).unwrap()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Overlapping spills — two independent full-range crawls merged
/// together, the shape a re-leased or double-launched worker leaves
/// behind — dedupe exactly: `records_recovered` counts unique sites,
/// `duplicates_dropped` counts the collisions, and the bytes still
/// match a single crawl.
#[test]
fn overlapping_spills_dedupe_with_exact_accounting() {
    let (web, frontier, config) = workload();
    let full = crawl(&web.network, &frontier, &config);
    let dir_a = tmp_dir("overlap-a");
    let dir_b = tmp_dir("overlap-b");
    crawl_shard_to_segments(&web.network, &frontier, &config, &dir_a, 0, 1, 13, 9).unwrap();
    // The second "worker" crawls only the back half of the range (shard
    // 1 of 2): a partial overlap, not a mirror image.
    crawl_shard_to_segments(&web.network, &frontier, &config, &dir_b, 1, 2, 13, 9).unwrap();
    let mut segments = list_segments(&dir_a).unwrap();
    segments.extend(list_segments(&dir_b).unwrap());
    let (merged, report) =
        merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
    let back_half = frontier.len() - frontier.len() / 2;
    assert_eq!(report.records_recovered, frontier.len(), "unique records");
    assert_eq!(report.duplicates_dropped, back_half, "the overlap, exactly");
    assert_eq!(report.recrawled, 0);
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        serde_json::to_string(&full).unwrap()
    );
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

/// Sanity: a merged dataset's label/device come from the config, so a
/// dataset merged from spill is interchangeable with a crawled one for
/// every downstream consumer.
#[test]
fn merged_dataset_is_a_first_class_crawl_dataset() {
    let (web, frontier, config) = workload();
    let dir = tmp_dir("first-class");
    crawl_shard_to_segments(&web.network, &frontier, &config, &dir, 0, 1, 20, 10).unwrap();
    let segments = list_segments(&dir).unwrap();
    let (merged, _) = merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
    let direct: CrawlDataset = crawl(&web.network, &frontier, &config);
    assert_eq!(merged.label, direct.label);
    assert_eq!(merged.device_id, direct.device_id);
    assert_eq!(merged.failure_breakdown(), direct.failure_breakdown());
    std::fs::remove_dir_all(&dir).ok();
}
