//! Verdict-serving daemon acceptance tests: the standard load schedule
//! over a webgen corpus — burst and overload phases, injected network
//! faults, and a mid-run blocklist reload — must produce a byte-identical
//! response stream across worker counts, an exact shed-tier partition,
//! zero deadline violations, zero dropped requests, and exactly the
//! classifier work the admission plan predicted.

// Tests exercise failure paths where panicking on a broken invariant is
// the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_net::{Network, Url};
use canvassing_serve::{
    generate, harvest_corpus, Corpus, LoadProfile, Payload, ReloadEvent, RuleSnapshot, ServeConfig,
    ServeOutput, ServeStats, Served, ShedThresholds, VerdictRequest, VerdictService,
};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

/// A small synthetic web plus a harvested script corpus and the standard
/// load schedule compressed to test length.
fn soak_fixture() -> (SyntheticWeb, Corpus, Vec<VerdictRequest>, Vec<ReloadEvent>) {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 77,
        scale: 0.02,
    });
    let frontier = web.frontier(Cohort::Popular);
    let corpus = harvest_corpus(&web.network, &frontier, 64);
    assert!(!corpus.is_empty(), "webgen frontier must yield scripts");

    let mut profile = LoadProfile::standard(77);
    for phase in &mut profile.phases {
        phase.duration_ms = (phase.duration_ms / 20).max(20);
    }
    let total_ms: u64 = profile.phases.iter().map(|p| p.duration_ms).sum();
    let requests = generate(&profile, &corpus);
    assert!(requests.len() > 100, "schedule must carry real pressure");

    // Mid-run reload: EasyPrivacy lands on top of the boot list, plus one
    // unanchored rule so every cache shard is invalidated.
    let reloads = vec![ReloadEvent {
        at_ms: total_ms / 2,
        name: "easylist+easyprivacy".into(),
        list_text: format!(
            "{}\n{}\n/fpsoak-collect/*$script\n",
            web.lists.easylist, web.lists.easyprivacy
        ),
        vendor_patterns: None,
    }];
    (web, corpus, requests, reloads)
}

fn boot_snapshot(web: &SyntheticWeb) -> RuleSnapshot {
    RuleSnapshot::new(
        0,
        "easylist-boot",
        &web.lists.easylist,
        RuleSnapshot::standard_vendor_patterns(),
    )
}

fn run(
    web: &SyntheticWeb,
    requests: &[VerdictRequest],
    reloads: &[ReloadEvent],
    workers: usize,
) -> (VerdictService, ServeOutput) {
    let service = VerdictService::new(ServeConfig {
        workers,
        ..ServeConfig::default()
    });
    let out = service.serve(
        requests,
        reloads,
        boot_snapshot(web),
        Some(&web.network),
        None,
    );
    (service, out)
}

#[test]
fn response_stream_is_byte_identical_across_worker_counts() {
    let (web, _, requests, reloads) = soak_fixture();
    let streams: Vec<String> = [1usize, 4, 8]
        .iter()
        .map(|&w| {
            let (_, out) = run(&web, &requests, &reloads, w);
            serde_json::to_string(&out.responses).unwrap()
        })
        .collect();
    assert_eq!(streams[0], streams[1], "workers 1 vs 4 diverged");
    assert_eq!(streams[1], streams[2], "workers 4 vs 8 diverged");
}

#[test]
fn shed_partition_is_exact_and_deadlines_propagate() {
    let (web, _, requests, reloads) = soak_fixture();
    let (_, out) = run(&web, &requests, &reloads, 4);
    let labels: Vec<String> = ["ramp", "steady", "burst", "overload", "drain"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let stats = ServeStats::compute(&requests, &out, &labels);

    assert!(
        stats.partition_exact(),
        "partition must be exact: {stats:?}"
    );
    assert_eq!(stats.offered, requests.len() as u64);
    // The overload schedule exercises the whole admission ladder.
    assert!(stats.tiers.full > 0, "steady phase serves full fidelity");
    assert!(stats.tiers.shed() > 0, "burst must shed tiers");
    assert!(stats.tiers.rejected_overload > 0, "overload must reject");
    assert!(
        stats.tiers.rejected_deadline > 0,
        "deep queues must reject unmeetable deadlines at admission"
    );
    // Deadline propagation: rejection happens at admission, so no
    // completed response may finish past its deadline.
    assert_eq!(stats.deadline_violations, 0);
    for (req, resp) in requests.iter().zip(&out.responses) {
        if resp.served.is_completed() {
            if let Some(d) = req.deadline_ms {
                assert!(
                    resp.finish_ms <= d,
                    "request {} violated its deadline",
                    req.id
                );
            }
        }
    }
}

#[test]
fn mid_run_reload_drops_nothing_and_reclassifies_under_the_new_epoch() {
    let (web, _, requests, reloads) = soak_fixture();
    let (service, out) = run(&web, &requests, &reloads, 4);

    // Zero drops: a dense in-order 1:1 response per offered request.
    assert_eq!(out.responses.len(), requests.len());
    for (req, resp) in requests.iter().zip(&out.responses) {
        assert_eq!(req.id, resp.id, "responses deliver in request order");
    }

    // The reload applied, invalidated shards, and forced incremental
    // re-classification on the hot path.
    assert_eq!(out.plan.reloads.len(), 1);
    assert!(!out.plan.reloads[0].invalidated_shards.is_empty());
    let epochs = service.epoch_stats();
    assert!(epochs.stale_refreshes > 0, "hot bodies must re-classify");

    // Epoch stamping: requests admitted before the swap answer on epoch
    // 0, requests admitted after answer on epoch 1 — never mixed.
    let swap = reloads[0].at_ms;
    for (req, resp) in requests.iter().zip(&out.responses) {
        let expected = u64::from(req.arrival_ms >= swap);
        assert_eq!(
            resp.epoch, expected,
            "request {} (arrival {}ms) answered on the wrong epoch",
            req.id, req.arrival_ms
        );
    }
}

#[test]
fn classifier_work_matches_the_admission_plan_exactly() {
    let (web, _, requests, reloads) = soak_fixture();
    let (service, out) = run(&web, &requests, &reloads, 8);
    assert_eq!(
        service.analysis_stats().analyses,
        out.plan.predicted_analyses(),
        "no hidden analyses, no double work"
    );
}

#[test]
fn faulted_url_fetches_surface_as_typed_responses() {
    let (mut web, corpus, _, _) = soak_fixture();
    // Take down the host of some URL-carrying corpus entry, then request
    // it directly by URL.
    let (_, url) = corpus
        .bodies
        .iter()
        .find(|(_, u)| u.is_some())
        .expect("corpus has external scripts");
    let url = url.clone().unwrap();
    web.network.faults.take_down(&url.host);

    let requests = vec![
        VerdictRequest {
            id: 0,
            arrival_ms: 0,
            deadline_ms: None,
            payload: Payload::Url { url: url.clone() },
            phase: 0,
        },
        VerdictRequest {
            id: 1,
            arrival_ms: 1,
            deadline_ms: None,
            payload: Payload::Body {
                source: "let fine = 1;".into(),
            },
            phase: 0,
        },
    ];
    let (_, out) = run(&web, &requests, &[], 4);
    match &out.responses[0].served {
        Served::FetchFailed { error } => assert_eq!(error, "unreachable"),
        other => panic!("dead host must answer a typed failure, got {other:?}"),
    }
    assert!(
        out.responses[1].served.is_completed(),
        "a faulted host must not poison unrelated requests"
    );
}

#[test]
fn degraded_tiers_never_touch_the_parser() {
    let (web, corpus, _, _) = soak_fixture();
    // Thresholds of zero force every admitted request below full
    // fidelity; the parser and classifier must stay completely cold.
    let service = VerdictService::new(ServeConfig {
        shed: ShedThresholds {
            full_below: 0,
            cache_only_below: 0,
            heuristic_below: 1_000,
        },
        ..ServeConfig::default()
    });
    let requests: Vec<VerdictRequest> = corpus
        .bodies
        .iter()
        .take(20)
        .enumerate()
        .map(|(i, (source, _))| VerdictRequest {
            id: i as u64,
            arrival_ms: i as u64 * 3,
            deadline_ms: None,
            payload: Payload::Body {
                source: source.clone(),
            },
            phase: 0,
        })
        .collect();
    let out = service.serve(
        &requests,
        &[],
        boot_snapshot(&web),
        Some(&web.network),
        None,
    );
    assert_eq!(service.script_stats().lookups(), 0, "no parse work at all");
    assert_eq!(service.analysis_stats().lookups(), 0);
    for resp in &out.responses {
        assert!(
            matches!(resp.served, Served::Heuristic { .. }),
            "everything sheds to the static heuristic: {:?}",
            resp.served
        );
    }
}

#[test]
fn url_requests_resolve_blocklist_and_vendor_attribution() {
    // A vendor-patterned URL hosting a script must come back enriched:
    // blocklisted under a matching rule and attributed to the vendor.
    let mut network = Network::new();
    let url = Url::https("fpnpmcdn.net", "/v4/loader.js");
    network.host(
        &url,
        canvassing_net::Resource::Script(canvassing_net::ScriptResource {
            source: "let v = 4;".into(),
            label: "fpjs".into(),
        }),
    );
    let boot = RuleSnapshot::new(
        0,
        "ep",
        "||fpnpmcdn.net^$script\n",
        RuleSnapshot::standard_vendor_patterns(),
    );
    let service = VerdictService::new(ServeConfig::default());
    let requests = vec![VerdictRequest {
        id: 0,
        arrival_ms: 0,
        deadline_ms: None,
        payload: Payload::Url { url },
        phase: 0,
    }];
    let out = service.serve(&requests, &[], boot, Some(&network), None);
    match &out.responses[0].served {
        Served::Full {
            blocklisted,
            vendor,
            ..
        } => {
            assert!(*blocklisted, "||fpnpmcdn.net^$script covers the URL");
            assert_eq!(vendor.as_deref(), Some("FingerprintJS"));
        }
        other => panic!("expected a full-tier answer, got {other:?}"),
    }
}
