//! Perf-layer acceptance tests: the compiled-script cache, render memo,
//! and surface pool are throughput optimizations only — every dataset a
//! cached crawl produces must be byte-identical to the uncached one,
//! across worker counts, under the full fault-injection matrix, across a
//! checkpoint/resume split, and the §5.3 double-render stability check
//! must behave identically with memoization on.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::detect::detect;
use canvassing_browser::DefenseMode;
use canvassing_crawler::{
    crawl, crawl_with_caches, crawl_with_stats, resume_crawl, CachingPolicy, CrawlConfig,
    CrawlDataset,
};
use canvassing_net::FaultMatrix;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn web(seed: u64) -> (SyntheticWeb, Vec<canvassing_net::Url>) {
    let web = SyntheticWeb::generate(WebConfig { seed, scale: 0.02 });
    let frontier = web.frontier(Cohort::Popular);
    (web, frontier)
}

fn config(workers: usize, caching: CachingPolicy) -> CrawlConfig {
    let mut config = CrawlConfig::control();
    config.workers = workers;
    config.caching = caching;
    config
}

#[test]
fn cached_and_uncached_crawls_are_byte_identical() {
    let (web, frontier) = web(21);
    let cached = crawl(
        &web.network,
        &frontier,
        &config(8, CachingPolicy::default()),
    );
    let uncached = crawl(
        &web.network,
        &frontier,
        &config(8, CachingPolicy::disabled()),
    );
    assert_eq!(
        cached.to_json().unwrap(),
        uncached.to_json().unwrap(),
        "caching must never change a record"
    );
}

#[test]
fn cached_crawl_is_byte_identical_across_worker_counts() {
    let (web, frontier) = web(22);
    let one = crawl(
        &web.network,
        &frontier,
        &config(1, CachingPolicy::default()),
    );
    let eight = crawl(
        &web.network,
        &frontier,
        &config(8, CachingPolicy::default()),
    );
    assert_eq!(one.to_json().unwrap(), eight.to_json().unwrap());
}

#[test]
fn caching_preserves_byte_identity_under_the_fault_matrix() {
    // Layer the PR-1 fault matrix over a third of the frontier: the cache
    // layers must not perturb records even when visits fail, panic, or
    // get retried around them.
    let (mut web, frontier) = web(23);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    FaultMatrix::new(5).inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));

    let cached = crawl(
        &web.network,
        &frontier,
        &config(8, CachingPolicy::default()),
    );
    let uncached = crawl(
        &web.network,
        &frontier,
        &config(8, CachingPolicy::disabled()),
    );
    assert_eq!(cached.to_json().unwrap(), uncached.to_json().unwrap());

    let single = crawl(
        &web.network,
        &frontier,
        &config(1, CachingPolicy::default()),
    );
    assert_eq!(cached.to_json().unwrap(), single.to_json().unwrap());
}

#[test]
fn cached_resume_merges_to_the_uninterrupted_dataset() {
    let (web, frontier) = web(24);
    let cfg = config(4, CachingPolicy::default());
    let full = crawl(&web.network, &frontier, &cfg);

    let mut partial_records = full.records[..frontier.len() / 2].to_vec();
    partial_records.remove(frontier.len() / 4);
    let checkpoint = CrawlDataset {
        label: full.label.clone(),
        device_id: full.device_id.clone(),
        records: partial_records,
    };
    let resumed = resume_crawl(&web.network, &frontier, &cfg, &checkpoint);
    assert_eq!(
        resumed.to_json().unwrap(),
        full.to_json().unwrap(),
        "resume with caches must merge to the exact uninterrupted dataset"
    );
}

#[test]
fn warm_caches_skip_parses_without_changing_the_dataset() {
    let (web, frontier) = web(25);
    let cfg = config(8, CachingPolicy::default());
    let caches = cfg.build_caches();
    let (cold_ds, cold) = crawl_with_caches(&web.network, &frontier, &cfg, &caches);
    let (warm_ds, warm) = crawl_with_caches(&web.network, &frontier, &cfg, &caches);
    assert_eq!(cold_ds.to_json().unwrap(), warm_ds.to_json().unwrap());
    assert!(cold.script_parses > 0, "cold pass parses the corpus");
    assert_eq!(warm.script_parses, 0, "warm pass re-parses nothing");
    assert_eq!(warm.memo_computes, 0, "warm pass re-renders nothing");
}

#[test]
fn breakers_and_salvage_preserve_byte_identity_across_cache_strategies() {
    // The resilience control plane (PR 5) composes with the perf layers
    // (PR 2): with per-host circuit breakers and salvage enabled under
    // the fault matrix, datasets must still be byte-identical across
    // caching on/off, worker counts, cache temperature, and a
    // checkpoint/resume split.
    let (mut web, frontier) = web(27);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    FaultMatrix::new(6).inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));

    let resilient = |workers: usize, caching: CachingPolicy| {
        let mut cfg = config(workers, caching);
        cfg.breakers = canvassing_crawler::BreakerPolicy::enabled();
        cfg.salvage = true;
        cfg
    };
    let cached = crawl(
        &web.network,
        &frontier,
        &resilient(8, CachingPolicy::default()),
    );
    let uncached = crawl(
        &web.network,
        &frontier,
        &resilient(8, CachingPolicy::disabled()),
    );
    assert_eq!(cached.to_json().unwrap(), uncached.to_json().unwrap());
    let single = crawl(
        &web.network,
        &frontier,
        &resilient(1, CachingPolicy::default()),
    );
    assert_eq!(cached.to_json().unwrap(), single.to_json().unwrap());
    assert!(
        cached.salvaged().count() > 0,
        "matrix produces salvaged visits at this scale"
    );

    // Warm caches: same dataset again, no re-parsing.
    let cfg = resilient(8, CachingPolicy::default());
    let caches = cfg.build_caches();
    let (cold_ds, cold) = crawl_with_caches(&web.network, &frontier, &cfg, &caches);
    let (warm_ds, warm) = crawl_with_caches(&web.network, &frontier, &cfg, &caches);
    assert_eq!(cold_ds.to_json().unwrap(), warm_ds.to_json().unwrap());
    assert_eq!(cold_ds.to_json().unwrap(), cached.to_json().unwrap());
    assert!(cold.script_parses > 0);
    assert_eq!(warm.script_parses, 0);

    // Resume across a mid-crawl split with breakers on: the plan is
    // recomputed over the full frontier, so the merge stays exact.
    let mut partial_records = cached.records[..frontier.len() / 2].to_vec();
    partial_records.remove(frontier.len() / 4);
    let checkpoint = CrawlDataset {
        label: cached.label.clone(),
        device_id: cached.device_id.clone(),
        records: partial_records,
    };
    let resumed = resume_crawl(&web.network, &frontier, &cfg, &checkpoint);
    assert_eq!(resumed.to_json().unwrap(), cached.to_json().unwrap());
}

#[test]
fn vm_engine_is_byte_identical_across_workers_and_cache_temperature() {
    // The bytecode VM composes with every perf layer: with the VM
    // explicitly on, datasets stay byte-identical across worker counts
    // 1/4/8 and across cold vs warm shared caches — and match the
    // tree-walking oracle on the same workload.
    use canvassing_browser::ExecEngine;
    let (web, frontier) = web(28);
    let vm_config = |workers: usize| {
        let mut cfg = config(workers, CachingPolicy::default());
        cfg.engine = ExecEngine::Bytecode;
        cfg
    };
    let mut oracle_cfg = config(4, CachingPolicy::default());
    oracle_cfg.engine = ExecEngine::TreeWalker;
    let oracle = crawl(&web.network, &frontier, &oracle_cfg)
        .to_json()
        .unwrap();

    for workers in [1, 4, 8] {
        let cfg = vm_config(workers);
        let caches = cfg.build_caches();
        let (cold_ds, cold) = crawl_with_caches(&web.network, &frontier, &cfg, &caches);
        let (warm_ds, warm) = crawl_with_caches(&web.network, &frontier, &cfg, &caches);
        assert_eq!(
            cold_ds.to_json().unwrap(),
            oracle,
            "VM cold crawl diverged from the tree-walker at {workers} workers"
        );
        assert_eq!(
            warm_ds.to_json().unwrap(),
            oracle,
            "VM warm crawl diverged from the tree-walker at {workers} workers"
        );
        assert!(cold.script_compiles > 0, "cold pass compiles the corpus");
        assert_eq!(
            cold.script_compiles, cold.script_parses,
            "every executed body is compiled exactly once"
        );
        assert_eq!(warm.script_compiles, 0, "warm pass recompiles nothing");
        assert_eq!(warm.script_parses, 0, "warm pass re-parses nothing");
    }
}

#[test]
fn compile_counts_are_engine_independent() {
    // The `compiles` counter is part of the study report, so it must be
    // a pure function of the workload: the tree-walker path attaches
    // bytecode to cached entries too, and both engines report the same
    // parse/compile/hit totals.
    use canvassing_browser::ExecEngine;
    let (web, frontier) = web(29);
    let stats_for = |engine: ExecEngine| {
        let mut cfg = config(4, CachingPolicy::default());
        cfg.engine = engine;
        let (_, stats) = crawl_with_stats(&web.network, &frontier, &cfg);
        stats
    };
    let vm = stats_for(ExecEngine::Bytecode);
    let tw = stats_for(ExecEngine::TreeWalker);
    assert_eq!(vm, tw, "crawl stats must not depend on the engine");
    assert!(vm.script_compiles > 0);
    assert!(vm.script_compiles <= vm.script_parses);
}

#[test]
fn double_render_check_still_fires_with_memoization() {
    // §5.3: fingerprinters render the same canvas twice and compare. Memo
    // replay must preserve both extractions (same bytes under no defense)
    // so the detection heuristic sees the double render; and under a
    // randomization defense the memo must stand aside entirely so the
    // instability is real, not replayed.
    let (web, frontier) = web(26);

    let cached = crawl(
        &web.network,
        &frontier,
        &config(8, CachingPolicy::default()),
    );
    let uncached = crawl(
        &web.network,
        &frontier,
        &config(8, CachingPolicy::disabled()),
    );
    let double_render_sites = |ds: &CrawlDataset| -> usize {
        ds.successful()
            .map(|(_, v)| detect(v))
            .filter(|d| d.double_render_check)
            .count()
    };
    let with_memo = double_render_sites(&cached);
    let without_memo = double_render_sites(&uncached);
    assert!(with_memo > 0, "corpus contains double-rendering vendors");
    assert_eq!(with_memo, without_memo, "memo must not mask the check");

    // Under per-render randomization, memo replay is disabled and every
    // double-rendering script sees genuinely unstable canvases.
    let mut defended = config(8, CachingPolicy::default());
    defended.defense = DefenseMode::RandomizePerRender { seed: 3 };
    let (_, stats) = crawl_with_stats(&web.network, &frontier, &defended);
    assert_eq!(stats.memo_hits, 0, "defended crawls never replay renders");
    assert_eq!(stats.memo_computes, 0);
    assert!(stats.script_executions > 0);
}
