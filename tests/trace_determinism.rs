//! Trace-layer acceptance tests: per-visit event streams are
//! deterministic facts about `(network, url, config)` — never about the
//! schedule. The same workload must produce byte-identical RingSink
//! streams across worker counts, across cold vs warm shared caches, and
//! under the fault-injection matrix; and every successful visit's trace
//! must cover the full five-stage vocabulary.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use canvassing_crawler::{crawl, crawl_with_caches, CachingPolicy, CrawlConfig};
use canvassing_net::FaultMatrix;
use canvassing_trace::{span_names, RingSink, TraceSink, VisitTrace};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn web(seed: u64) -> (SyntheticWeb, Vec<canvassing_net::Url>) {
    let web = SyntheticWeb::generate(WebConfig { seed, scale: 0.02 });
    let frontier = web.frontier(Cohort::Popular);
    (web, frontier)
}

fn traced_config(workers: usize, caching: CachingPolicy) -> (CrawlConfig, Arc<RingSink>) {
    let sink = Arc::new(RingSink::new(4096));
    let mut config = CrawlConfig::control();
    config.workers = workers;
    config.caching = caching;
    config.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
    (config, sink)
}

fn run(web: &SyntheticWeb, frontier: &[canvassing_net::Url], workers: usize) -> Vec<VisitTrace> {
    let (config, sink) = traced_config(workers, CachingPolicy::default());
    crawl(&web.network, frontier, &config);
    sink.traces()
}

#[test]
fn trace_streams_identical_across_worker_counts() {
    let (web, frontier) = web(41);
    let one = run(&web, &frontier, 1);
    let four = run(&web, &frontier, 4);
    let eight = run(&web, &frontier, 8);
    assert_eq!(one.len(), frontier.len());
    assert_eq!(one, four, "1 vs 4 workers");
    assert_eq!(one, eight, "1 vs 8 workers");
}

#[test]
fn trace_streams_identical_cold_vs_warm_caches() {
    // The second crawl answers nearly everything from the shared script
    // cache, analysis cache, and render memo — but cache temperature is a
    // schedule detail, so the visit streams must not change. (Hit/miss
    // attribution lives in the shared metrics registry, not the stream.)
    let (web, frontier) = web(42);
    let (config, sink) = traced_config(6, CachingPolicy::default());
    let caches = config.build_caches();
    let (_, cold_stats) = crawl_with_caches(&web.network, &frontier, &config, &caches);
    let cold = sink.traces();

    let (config, sink) = traced_config(6, CachingPolicy::default());
    let (_, warm_stats) = crawl_with_caches(&web.network, &frontier, &config, &caches);
    let warm = sink.traces();

    assert_eq!(cold, warm, "cache temperature must not leak into streams");
    assert_eq!(cold_stats.trace_visits, warm_stats.trace_visits);
    assert_eq!(cold_stats.trace_events, warm_stats.trace_events);
    assert!(cold_stats.script_parses > 0, "cold pass parsed the corpus");
    assert_eq!(warm_stats.script_parses, 0, "warm pass re-parsed nothing");
}

#[test]
fn caching_changes_only_the_execution_strategy_marker() {
    // Caching is part of the config, so streams may legitimately differ —
    // but only in one place: a memo-satisfied execution carries a
    // `render.replay` instant where the uncached crawl carries
    // `script.exec`. Everything else (ticks, spans, simulated durations,
    // even the step-count detail, since replay relocates the canonical
    // execution's records) must be byte-identical.
    let (web, frontier) = web(43);
    let (cached_cfg, cached_sink) = traced_config(8, CachingPolicy::default());
    crawl(&web.network, &frontier, &cached_cfg);
    let (uncached_cfg, uncached_sink) = traced_config(8, CachingPolicy::disabled());
    crawl(&web.network, &frontier, &uncached_cfg);

    let normalize = |traces: Vec<VisitTrace>| -> Vec<VisitTrace> {
        traces
            .into_iter()
            .map(|mut t| {
                for e in &mut t.events {
                    if let canvassing_trace::EventKind::Instant { name, .. } = &mut e.kind {
                        if *name == "render.replay" {
                            *name = "script.exec";
                        }
                    }
                }
                t
            })
            .collect()
    };
    let cached = cached_sink.traces();
    let replays = cached
        .iter()
        .flat_map(|t| &t.events)
        .filter(|e| {
            matches!(
                &e.kind,
                canvassing_trace::EventKind::Instant { name, .. } if *name == "render.replay"
            )
        })
        .count();
    assert!(replays > 0, "memo replays happen at this scale");
    assert_eq!(
        normalize(cached),
        normalize(uncached_sink.traces()),
        "caching must change nothing beyond the replay/exec marker"
    );
}

#[test]
fn trace_streams_schedule_independent_under_fault_matrix() {
    // Layer the PR-1 fault matrix over a third of the frontier: retries,
    // truncations, and outages are *facts* about the network, so they
    // belong in the stream — identically whatever the worker count.
    let (mut web, frontier) = web(44);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    FaultMatrix::new(5).inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));

    let single = run(&web, &frontier, 1);
    let fleet = run(&web, &frontier, 8);
    assert_eq!(single, fleet, "faulted streams must not depend on workers");
    // The matrix actually bit: some trace carries a fault or error event.
    let has = |name: &str| {
        single.iter().any(|t| {
            t.events.iter().any(|e| {
                matches!(
                    &e.kind,
                    canvassing_trace::EventKind::Instant { name: n, .. } if *n == name
                )
            })
        })
    };
    assert!(
        has("net.fault") || has("net.error"),
        "fault matrix left no mark on any stream"
    );
}

#[test]
fn breaker_and_salvage_traces_are_schedule_independent() {
    // Enable the full resilience control plane: a dead shared script host
    // drives a circuit open (then short-circuits), and a latency-spiked
    // script host kills visits mid-pipeline so salvage fires. All of it is
    // planned from the frontier, so the streams must stay byte-identical
    // across worker counts — including the breaker transition instants.
    let (mut web, frontier) = web(46);
    let mut script_hosts: Vec<String> = frontier
        .iter()
        .filter_map(|u| match web.network.peek(u) {
            Some(canvassing_net::Resource::Page(page)) => Some(page),
            _ => None,
        })
        .flat_map(|page| {
            page.scripts.iter().filter_map(|s| match s {
                canvassing_net::ScriptRef::External(u) => Some(u.host.clone()),
                _ => None,
            })
        })
        .collect();
    script_hosts.sort();
    script_hosts.dedup();
    assert!(script_hosts.len() >= 2, "corpus has shared script hosts");
    web.network.faults.take_down(&script_hosts[0]);
    web.network.faults.inject(
        &script_hosts[1],
        canvassing_net::Fault::LatencySpike { extra_ms: 60_000 },
    );

    let run_resilient = |workers: usize| {
        let (mut config, sink) = traced_config(workers, CachingPolicy::default());
        config.breakers = canvassing_crawler::BreakerPolicy::enabled();
        config.salvage = true;
        crawl(&web.network, &frontier, &config);
        sink.traces()
    };
    let single = run_resilient(1);
    let fleet = run_resilient(8);
    assert_eq!(
        single, fleet,
        "breaker/salvage streams must not depend on workers"
    );

    let count = |name: &str| {
        single
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| {
                matches!(
                    &e.kind,
                    canvassing_trace::EventKind::Instant { name: n, .. } if *n == name
                )
            })
            .count()
    };
    assert!(
        count("breaker.open") > 0,
        "dead script host opens a circuit"
    );
    assert!(
        count("breaker.short_circuit") > 0,
        "later references to the open host short-circuit"
    );
    assert!(
        count("visit.salvage") > 0,
        "spiked script host produces salvaged visits"
    );
}

#[test]
fn every_successful_visit_covers_the_stage_vocabulary() {
    let (web, frontier) = web(45);
    let traces = run(&web, &frontier, 4);
    let mut checked = 0usize;
    for trace in &traces {
        let outcome = trace.events.iter().find_map(|e| match &e.kind {
            canvassing_trace::EventKind::Instant { name, detail, .. }
                if *name == "visit.outcome" =>
            {
                Some(detail.clone())
            }
            _ => None,
        });
        let outcome = outcome.expect("every trace ends with visit.outcome");
        if outcome != "success" {
            continue;
        }
        let names = span_names(trace);
        for stage in ["fetch", "triage", "parse", "execute", "extract"] {
            assert!(
                names.contains(stage),
                "{}: successful visit missing stage {stage}",
                trace.label
            );
        }
        checked += 1;
    }
    assert!(checked > frontier.len() / 2, "most visits succeed");
}
