//! Engine A/B acceptance gate: the bytecode VM and the tree-walking
//! interpreter must be observationally indistinguishable at the study
//! level. The whole plain-text study report — every prevalence number,
//! cluster, attribution row, failure tier, cache counter, and trace
//! total — must be byte-identical between the two engines at scale 0.2
//! under the fault-injection matrix, across worker counts.
//!
//! This is the contract that lets the VM replace the tree-walker as the
//! production engine: identical results, identical host-effect
//! sequences, and byte-identical step accounting (fuel trips included),
//! so nothing downstream of script execution can tell them apart.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::study::{run_study, StudyOptions};
use canvassing_browser::ExecEngine;
use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_net::FaultMatrix;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn options(workers: usize, engine: ExecEngine) -> StudyOptions {
    StudyOptions {
        workers,
        // Control crawls only: the ad-block / M1 re-crawls quadruple the
        // runtime without adding engine-sensitive code paths beyond what
        // the control already exercises (the faulted crawl below covers
        // retries/salvage; `end_to_end.rs` covers the full option set).
        adblock_crawls: false,
        m1_validation: false,
        defense_sweep: false,
        trace: true,
        serving: false,
        engine,
    }
}

/// The headline gate: full study, scale 0.2, both engines, three worker
/// counts — one report byte-for-byte.
#[test]
fn study_report_is_byte_identical_across_engines_and_workers() {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 2025,
        scale: 0.2,
    });
    let baseline = run_study(&web, &options(4, ExecEngine::TreeWalker)).render_report();
    assert!(
        baseline.contains("bytecode compiles"),
        "report must surface compile accounting"
    );
    for workers in [1, 4, 8] {
        let vm = run_study(&web, &options(workers, ExecEngine::Bytecode)).render_report();
        assert_eq!(
            vm, baseline,
            "VM study report diverged from the tree-walker oracle at {workers} workers"
        );
    }
}

/// Same gate under the fault-injection matrix: retries, salvage, panics,
/// and fuel-starved visits must starve both engines at the same step.
#[test]
fn faulted_datasets_are_byte_identical_across_engines() {
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: 2026,
        scale: 0.2,
    });
    let frontier = web.frontier(Cohort::Popular);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    FaultMatrix::new(9).inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));

    let config = |workers: usize, engine: ExecEngine| {
        let mut cfg = CrawlConfig::control();
        cfg.workers = workers;
        cfg.engine = engine;
        cfg.breakers = canvassing_crawler::BreakerPolicy::enabled();
        cfg
    };
    let oracle = crawl(&web.network, &frontier, &config(4, ExecEngine::TreeWalker))
        .to_json()
        .unwrap();
    for workers in [1, 4, 8] {
        let vm = crawl(
            &web.network,
            &frontier,
            &config(workers, ExecEngine::Bytecode),
        )
        .to_json()
        .unwrap();
        assert_eq!(
            vm, oracle,
            "faulted VM dataset diverged from the oracle at {workers} workers"
        );
    }
}
