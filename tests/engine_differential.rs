//! AST-vs-bytecode engine differential suite.
//!
//! The two static engines share one verdict synthesis and must never
//! *decisively disagree* on the non-adversarial corpus (vendor, generic,
//! and benign scripts). On the seeded evasion corpus the AST engine is
//! expected to abstain and the bytecode engine to recover a decisive
//! `Fingerprinting` verdict — gated here at ≥80% recovery with zero new
//! false positives, cross-checked against the dynamic detector.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::detect::detect;
use canvassing_analysis::{classify, classify_bytecode, classify_merged, Verdict};
use canvassing_browser::{Browser, PageVisit};
use canvassing_net::{PageResource, Resource, ScriptRef, ScriptResource, Url};
use canvassing_raster::DeviceProfile;
use canvassing_script::parse;
use canvassing_vendors::{all_vendors, benign, scripts};
use canvassing_webgen::{evasive_script, EVASION_VARIANT_COUNT};

/// Decisive disagreement between the engines on one program.
fn decisive_disagreement(src: &str) -> Option<(Verdict, Verdict)> {
    let program = parse(src).expect("corpus script parses");
    let ast = classify(&program).verdict;
    let bytecode = classify_bytecode(&program).verdict;
    if ast != Verdict::Inconclusive
        && bytecode != Verdict::Inconclusive
        && ast.is_fingerprinting() != bytecode.is_fingerprinting()
    {
        Some((ast, bytecode))
    } else {
        None
    }
}

#[test]
fn engines_agree_on_vendor_corpus() {
    for vendor in all_vendors() {
        for commercial in [false, true] {
            let src = scripts::source(vendor.id, &scripts::site_token("diff.example"), commercial);
            assert_eq!(
                decisive_disagreement(&src),
                None,
                "{} (commercial={commercial})",
                vendor.name
            );
        }
    }
}

#[test]
fn engines_agree_on_generic_corpus() {
    for n in 0..200u64 {
        let src = scripts::generic_fingerprinter(n);
        assert_eq!(
            decisive_disagreement(&src),
            None,
            "generic_fingerprinter({n})"
        );
    }
}

#[test]
fn engines_agree_on_benign_corpus() {
    for kind in benign::BenignKind::all() {
        for variant in 0..8u64 {
            let src = benign::source(*kind, variant);
            assert_eq!(decisive_disagreement(&src), None, "{kind:?}/{variant}");
        }
    }
}

/// The bytecode engine must never *introduce* a fingerprinting verdict on
/// the benign corpus: the merged cascade stays non-positive wherever the
/// AST engine already excluded the script.
#[test]
fn merged_cascade_adds_no_false_positives_on_benign_corpus() {
    for kind in benign::BenignKind::all() {
        for variant in 0..8u64 {
            let src = benign::source(*kind, variant);
            let program = parse(&src).expect("benign script parses");
            let ast = classify(&program).verdict;
            let merged = classify_merged(&program).verdict;
            if !ast.is_fingerprinting() {
                assert!(
                    !merged.is_fingerprinting(),
                    "{kind:?}/{variant}: merged cascade invented a fingerprinter \
                     (ast={ast:?}, merged={merged:?})"
                );
            }
        }
    }
}

/// The headline recovery gate: every evasion variant defeats the AST
/// engine (Inconclusive or Benign — never a decisive positive), and the
/// bytecode engine recovers a decisive `Fingerprinting` verdict for at
/// least 80% of them.
#[test]
fn bytecode_engine_recovers_at_least_80_percent_of_evasion_corpus() {
    let mut evaded_ast = 0usize;
    let mut recovered = 0usize;
    for v in 0..EVASION_VARIANT_COUNT {
        let src = evasive_script(v);
        let program = parse(&src).expect("evasion variant parses");
        let ast = classify(&program).verdict;
        assert!(
            !ast.is_fingerprinting(),
            "variant {v} no longer evades the AST engine — corpus is stale"
        );
        evaded_ast += 1;
        let merged = classify_merged(&program).verdict;
        if merged.is_fingerprinting() {
            recovered += 1;
        }
    }
    assert!(
        recovered * 10 >= evaded_ast * 8,
        "bytecode engine recovered {recovered}/{evaded_ast} evasion variants (< 80%)"
    );
}

/// Serves `source` on a one-page network and runs one instrumented visit.
fn run_one(source: &str) -> PageVisit {
    let mut network = canvassing_net::Network::new();
    let script_url = Url::https("scripts.example", "/probe.js");
    network.host(
        &script_url,
        Resource::Script(ScriptResource {
            source: source.to_string(),
            label: "probe".into(),
        }),
    );
    network.host(
        &Url::https("site.com", "/"),
        Resource::Page(PageResource {
            scripts: vec![ScriptRef::External(script_url)],
            consent_banner: false,
            bot_check: false,
        }),
    );
    Browser::new(DeviceProfile::intel_ubuntu())
        .visit(&network, &Url::https("site.com", "/"))
        .expect("visit succeeds")
}

/// Soundness of the recovery: every recovered evasion verdict is backed
/// by the dynamic detector actually firing on the same script.
#[test]
fn recovered_evasion_verdicts_are_dynamically_confirmed() {
    for v in 0..EVASION_VARIANT_COUNT {
        let src = evasive_script(v);
        let merged = classify_merged(&parse(&src).expect("parse")).verdict;
        if merged.is_fingerprinting() {
            assert!(
                detect(&run_one(&src)).is_fingerprinting(),
                "variant {v}: bytecode-recovered verdict is a dynamic false positive"
            );
        }
    }
}

/// The bytecode verifier accepts every compiled chunk across the whole
/// generated corpus (all webgen script sources at CI scale).
#[test]
fn verifier_accepts_every_corpus_chunk() {
    let web = canvassing_webgen::SyntheticWeb::generate(canvassing_webgen::WebConfig {
        seed: 2025,
        scale: 0.05,
    });
    let mut checked = 0usize;
    let keys: Vec<(String, String)> = web
        .network
        .resource_keys()
        .map(|(h, p)| (h.to_string(), p.to_string()))
        .collect();
    for (host, path) in keys {
        let url = Url::https(&host, &path);
        let sources: Vec<String> = match web.network.peek(&url) {
            Some(Resource::Script(s)) => vec![s.source.clone()],
            Some(Resource::Page(p)) => p
                .scripts
                .iter()
                .filter_map(|r| match r {
                    ScriptRef::Inline { source, .. } => Some(source.clone()),
                    ScriptRef::External(_) => None,
                })
                .collect(),
            None => Vec::new(),
        };
        for src in sources {
            let Ok(program) = parse(&src) else { continue };
            let compiled = canvassing_script::compile(&program);
            canvassing_script::verify(&compiled)
                .unwrap_or_else(|e| panic!("verifier rejected corpus script at {url}: {e}"));
            checked += 1;
        }
    }
    assert!(checked > 50, "only {checked} corpus scripts verified");
}
