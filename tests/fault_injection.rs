//! Fault injection across the crawl pipeline, in the spirit of the
//! networking guides' `--drop-chance` examples: dead hosts, broken DNS,
//! bot walls, consent gates, crashing scripts, and missing resources must
//! degrade into *recorded* failures, never into panics or silent
//! misclassification.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_browser::{Browser, VisitError};
use canvassing_crawler::{crawl, CrawlConfig, FailureKind};
use canvassing_net::{Network, PageResource, Resource, ScriptRef, ScriptResource, Url};
use canvassing_raster::DeviceProfile;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn page_with(scripts: Vec<ScriptRef>, consent: bool, bot: bool) -> Resource {
    Resource::Page(PageResource {
        scripts,
        consent_banner: consent,
        bot_check: bot,
    })
}

#[test]
fn dead_hosts_become_failure_records() {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 3,
        scale: 0.02,
    });
    let frontier = web.frontier(Cohort::Popular);
    let ds = crawl(&web.network, &frontier, &CrawlConfig::control());
    let failures = ds.failed().count();
    let expected_failures = frontier.len() - web.config.crawl_successes(Cohort::Popular);
    assert_eq!(failures, expected_failures);
    // Down sites draw from the permanent fault inventory; every failure
    // carries a typed kind from it — no free-form string matching.
    for (_, failure) in ds.failed() {
        assert!(
            matches!(
                failure.kind,
                FailureKind::Unreachable
                    | FailureKind::Dns
                    | FailureKind::DnsTransient
                    | FailureKind::Timeout
                    | FailureKind::Truncated
            ),
            "unexpected failure kind {:?}: {}",
            failure.kind,
            failure.error
        );
        assert_eq!(failure.attempts, 1, "visit-once semantics");
    }
    let breakdown = ds.failure_breakdown();
    assert_eq!(breakdown.values().sum::<usize>(), failures);
}

#[test]
fn bot_walls_fail_only_non_stealth_clients() {
    let mut network = Network::new();
    let url = Url::https("guarded.example", "/");
    network.host(&url, page_with(vec![], false, true));

    let mut naive = Browser::new(DeviceProfile::intel_ubuntu());
    naive.passes_bot_checks = false;
    assert!(matches!(
        naive.visit(&network, &url),
        Err(VisitError::BotBlocked(_))
    ));

    let crawler_browser = Browser::new(DeviceProfile::intel_ubuntu());
    assert!(crawler_browser.visit(&network, &url).is_ok());
}

#[test]
fn crashing_scripts_do_not_poison_the_page() {
    let mut network = Network::new();
    let good = Url::https("cdn.good.example", "/fp.js");
    let bad = Url::https("cdn.bad.example", "/broken.js");
    network.host(
        &good,
        Resource::Script(ScriptResource {
            source: r#"
                let c = document.createElement("canvas");
                c.width = 40; c.height = 20;
                c.toDataURL();
            "#
            .into(),
            label: "good".into(),
        }),
    );
    network.host(
        &bad,
        Resource::Script(ScriptResource {
            source: "this is not ( valid canvascript".into(),
            label: "bad".into(),
        }),
    );
    let url = Url::https("site.example", "/");
    network.host(
        &url,
        page_with(
            vec![ScriptRef::External(bad), ScriptRef::External(good)],
            false,
            false,
        ),
    );
    let visit = Browser::new(DeviceProfile::intel_ubuntu())
        .visit(&network, &url)
        .expect("visit survives the broken script");
    assert_eq!(visit.scripts.len(), 2);
    assert!(visit.scripts[0].error.is_some(), "bad script errored");
    assert!(visit.scripts[1].error.is_none(), "good script ran");
    assert_eq!(visit.extractions.len(), 1);
}

#[test]
fn missing_script_resources_are_recorded_not_fatal() {
    let mut network = Network::new();
    let url = Url::https("site.example", "/");
    network.host(
        &url,
        page_with(
            vec![ScriptRef::External(Url::https("nxdomain.example", "/x.js"))],
            false,
            false,
        ),
    );
    let visit = Browser::new(DeviceProfile::intel_ubuntu())
        .visit(&network, &url)
        .expect("page loads");
    assert_eq!(visit.scripts.len(), 1);
    assert!(visit.scripts[0].error.is_some());
}

#[test]
fn infinite_loop_script_is_cut_off_by_step_budget() {
    let mut network = Network::new();
    let url = Url::https("site.example", "/");
    network.host(
        &Url::https("cdn.example", "/spin.js"),
        Resource::Script(ScriptResource {
            source: "while (true) { let x = 1; }".into(),
            label: "spin".into(),
        }),
    );
    network.host(
        &url,
        page_with(
            vec![ScriptRef::External(Url::https("cdn.example", "/spin.js"))],
            false,
            false,
        ),
    );
    let started = std::time::Instant::now();
    let visit = Browser::new(DeviceProfile::intel_ubuntu())
        .visit(&network, &url)
        .expect("visit returns");
    assert!(visit.scripts[0]
        .error
        .as_deref()
        .unwrap_or("")
        .contains("step budget"));
    assert!(
        started.elapsed() < std::time::Duration::from_secs(30),
        "budget must cut off quickly"
    );
}

#[test]
fn consent_gating_is_respected_both_ways() {
    let mut network = Network::new();
    let script = Url::https("cdn.example", "/fp.js");
    network.host(
        &script,
        Resource::Script(ScriptResource {
            source: r#"
                let c = document.createElement("canvas");
                c.width = 30; c.height = 30;
                c.toDataURL();
            "#
            .into(),
            label: "fp".into(),
        }),
    );
    let url = Url::https("gdpr.example", "/");
    network.host(
        &url,
        page_with(vec![ScriptRef::External(script)], true, false),
    );

    let mut no_consent = Browser::new(DeviceProfile::intel_ubuntu());
    no_consent.autoconsent = false;
    let visit = no_consent.visit(&network, &url).unwrap();
    assert!(visit.extractions.is_empty(), "no consent, no scripts");
    assert!(visit.consent_banner);

    let autoconsent = Browser::new(DeviceProfile::intel_ubuntu());
    let visit = autoconsent.visit(&network, &url).unwrap();
    assert_eq!(visit.extractions.len(), 1);
}

#[test]
fn cname_chain_loops_fail_the_script_not_the_crawl() {
    let mut network = Network::new();
    network.dns.insert_cname("a.loop.example", "b.loop.example");
    network.dns.insert_cname("b.loop.example", "a.loop.example");
    let url = Url::https("site.example", "/");
    network.host(
        &url,
        page_with(
            vec![ScriptRef::External(Url::https("a.loop.example", "/x.js"))],
            false,
            false,
        ),
    );
    let visit = Browser::new(DeviceProfile::intel_ubuntu())
        .visit(&network, &url)
        .expect("page survives DNS loop");
    assert!(visit.scripts[0].error.is_some());
}
