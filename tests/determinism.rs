//! Determinism guarantees across the whole stack: the reproduction's
//! analyses are only meaningful if identical configurations produce
//! byte-identical artifacts, independent of thread scheduling.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn web(seed: u64) -> SyntheticWeb {
    SyntheticWeb::generate(WebConfig { seed, scale: 0.02 })
}

#[test]
fn same_seed_same_web_same_crawl() {
    let a = web(11);
    let b = web(11);
    assert_eq!(a.lists.easylist, b.lists.easylist);
    assert_eq!(a.lists.easyprivacy, b.lists.easyprivacy);
    assert_eq!(a.lists.disconnect, b.lists.disconnect);

    let fa = a.frontier(Cohort::Popular);
    let fb = b.frontier(Cohort::Popular);
    assert_eq!(fa, fb);

    let da = crawl(&a.network, &fa, &CrawlConfig::control());
    let db = crawl(&b.network, &fb, &CrawlConfig::control());
    assert_eq!(da.to_json().unwrap(), db.to_json().unwrap());
}

#[test]
fn worker_count_does_not_change_results() {
    let w = web(13);
    let frontier = w.frontier(Cohort::Tail);
    let mut serial = CrawlConfig::control();
    serial.workers = 1;
    let mut parallel = CrawlConfig::control();
    parallel.workers = 11;
    let a = crawl(&w.network, &frontier, &serial);
    let b = crawl(&w.network, &frontier, &parallel);
    assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
}

#[test]
fn datasets_roundtrip_through_json() {
    let w = web(17);
    let frontier = w.frontier(Cohort::Popular);
    let ds = crawl(&w.network, &frontier, &CrawlConfig::control());
    let json = ds.to_json().unwrap();
    let back = canvassing_crawler::CrawlDataset::from_json(&json).unwrap();
    assert_eq!(back.to_json().unwrap(), json);
    assert_eq!(back.success_count(), ds.success_count());
    assert_eq!(back.extraction_count(), ds.extraction_count());
}

#[test]
fn analyses_are_deterministic_too() {
    let run = || {
        let w = web(19);
        let frontier = w.frontier(Cohort::Popular);
        let ds = crawl(&w.network, &frontier, &CrawlConfig::control());
        let detections: Vec<_> = ds
            .successful()
            .map(|(_, v)| canvassing::detect(v))
            .collect();
        let clustering = canvassing::Clustering::build(detections.iter());
        serde_json::to_string(&clustering.clusters).unwrap()
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_produce_different_webs_with_same_marginals() {
    let a = web(100);
    let b = web(200);
    // Hosts differ...
    assert_ne!(
        a.frontier(Cohort::Popular)[0],
        b.frontier(Cohort::Popular)[0]
    );
    // ...but the planted marginals (site totals, fingerprinting targets)
    // are identical because they come from the same config.
    assert_eq!(
        a.frontier(Cohort::Popular).len(),
        b.frontier(Cohort::Popular).len()
    );
    let fp = |w: &SyntheticWeb| {
        w.plan
            .sites
            .iter()
            .filter(|s| !s.deployments.is_empty())
            .count()
    };
    assert_eq!(fp(&a), fp(&b));
}
