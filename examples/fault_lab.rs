//! Fault lab: sweep the deterministic fault matrix over a synthetic web
//! and show how the resilient harness degrades every failure mode — dead
//! hosts, flaky connects, broken DNS, latency spikes, truncated bodies,
//! even panicking workers — into typed records, then demonstrate retry
//! healing, checkpoint/resume determinism, partial-visit salvage with
//! fidelity tiers, per-host circuit breakers, and crash-consistent
//! checkpoint recovery from a torn write.
//!
//! ```sh
//! cargo run --release --example fault_lab -- [scale] [matrix-seed]
//! ```

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_crawler::{
    checkpoint, crawl, crawl_with_stats, resume_crawl, BreakerPolicy, CrawlConfig, CrawlDataset,
    RetryPolicy, VisitFidelity,
};
use canvassing_net::FaultMatrix;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn breakdown_table(ds: &CrawlDataset) {
    let breakdown = ds.failure_breakdown();
    let failed: usize = breakdown.values().sum();
    println!(
        "  {} sites: {} successful, {} failed",
        ds.records.len(),
        ds.success_count(),
        failed
    );
    for (kind, count) in &breakdown {
        println!("    {kind:<14} {count}");
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.05);
    let matrix_seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);

    println!("generating synthetic web at scale {scale} ...");
    let mut web = SyntheticWeb::generate(WebConfig { seed: 2025, scale });
    let frontier = web.frontier(Cohort::Popular);

    // Layer the seeded fault matrix over a third of the frontier: each
    // chosen host gets a fault kind derived from hash(seed, host).
    let matrix = FaultMatrix::new(matrix_seed);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    matrix.inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));
    println!(
        "fault matrix seed {matrix_seed}: {} of {} hosts faulted\n",
        targets.len(),
        frontier.len()
    );

    println!("visit-once crawl (paper §3.1 semantics, retries = 0):");
    let config = CrawlConfig::control();
    let started = std::time::Instant::now();
    let visit_once = crawl(&web.network, &frontier, &config);
    println!(
        "  completed in {:.1?} without a harness panic",
        started.elapsed()
    );
    breakdown_table(&visit_once);

    println!("\nsame crawl with 3 retries (transient kinds only):");
    let mut retrying = CrawlConfig::control();
    retrying.retry = RetryPolicy::retries(3);
    let healed = crawl(&web.network, &frontier, &retrying);
    breakdown_table(&healed);
    println!(
        "  retries healed {} sites; permanent failures untouched",
        healed.success_count() - visit_once.success_count()
    );

    println!("\ncheckpoint/resume determinism:");
    let half = frontier.len() / 2;
    let checkpoint = CrawlDataset {
        label: visit_once.label.clone(),
        device_id: visit_once.device_id.clone(),
        records: visit_once.records[..half].to_vec(),
    };
    let resumed = resume_crawl(&web.network, &frontier, &config, &checkpoint);
    let identical = resumed.to_json().unwrap() == visit_once.to_json().unwrap();
    println!(
        "  resumed from a {half}-site checkpoint: byte-identical to the \
         uninterrupted crawl = {identical}"
    );

    println!("\nworker-count determinism:");
    let mut solo = CrawlConfig::control();
    solo.workers = 1;
    let single = crawl(&web.network, &frontier, &solo);
    println!(
        "  workers=1 vs workers=8: byte-identical = {}",
        single.to_json().unwrap() == visit_once.to_json().unwrap()
    );

    println!("\npartial-visit salvage (fidelity tiers):");
    let tiers = visit_once.fidelity_breakdown();
    for tier in VisitFidelity::all() {
        println!("    {tier:<14} {}", tiers[&tier]);
    }
    println!(
        "  {} failed visits kept their partial evidence (scripts with \
         static-classifier verdicts land in static-salvage)",
        visit_once.salvaged().count()
    );

    println!("\ncrash-consistent checkpoint (torn write -> recover -> resume):");
    let path = std::env::temp_dir().join(format!("fault-lab-ckpt-{}.log", std::process::id()));
    let mut writer =
        checkpoint::CheckpointWriter::create(&path, &visit_once.label, &visit_once.device_id)
            .unwrap();
    writer.arm_torn_write(&visit_once.records[half].url.host);
    let mut wrote = 0usize;
    for record in &visit_once.records {
        if writer.append(record).is_err() {
            break;
        }
        wrote += 1;
    }
    drop(writer);
    let (recovered, report) = checkpoint::recover(&path).unwrap();
    println!(
        "  torn write after {wrote} records; recovery kept {} and truncated \
         {} bytes of torn tail",
        report.records_recovered, report.bytes_truncated
    );
    let resumed = resume_crawl(&web.network, &frontier, &config, &recovered);
    println!(
        "  resumed from the recovered prefix: byte-identical = {}",
        resumed.to_json().unwrap() == visit_once.to_json().unwrap()
    );
    let _ = std::fs::remove_file(&path);

    println!("\nper-host circuit breakers (threshold 3, cooldown 8 ticks):");
    // Take down a shared third-party script host: after three failed
    // fetches its circuit opens and every later reference short-circuits
    // instead of burning the retry budget.
    let mut script_refs: std::collections::BTreeMap<String, usize> = Default::default();
    for u in &frontier {
        if let Some(canvassing_net::Resource::Page(page)) = web.network.peek(u) {
            for s in &page.scripts {
                if let canvassing_net::ScriptRef::External(u) = s {
                    *script_refs.entry(u.host.clone()).or_default() += 1;
                }
            }
        }
    }
    let (hot_host, refs) = script_refs
        .iter()
        .max_by_key(|(host, n)| (**n, std::cmp::Reverse(host.as_str())))
        .map(|(h, n)| (h.clone(), *n))
        .unwrap();
    web.network.faults.take_down(&hot_host);
    let mut breakered = CrawlConfig::control();
    breakered.breakers = BreakerPolicy::enabled();
    let (with_breakers, stats) = crawl_with_stats(&web.network, &frontier, &breakered);
    println!(
        "  took down shared script host {} ({refs} references): {} circuit \
         opens, {} short-circuited, dataset still deterministic = {}",
        hot_host,
        stats.breaker_opens,
        stats.breaker_short_circuits,
        {
            let again = crawl(&web.network, &frontier, &breakered);
            again.to_json().unwrap() == with_breakers.to_json().unwrap()
        }
    );
}
