//! Fault lab: sweep the deterministic fault matrix over a synthetic web
//! and show how the resilient harness degrades every failure mode — dead
//! hosts, flaky connects, broken DNS, latency spikes, truncated bodies,
//! even panicking workers — into typed records, then demonstrate retry
//! healing and checkpoint/resume determinism.
//!
//! ```sh
//! cargo run --release --example fault_lab -- [scale] [matrix-seed]
//! ```

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_crawler::{crawl, resume_crawl, CrawlConfig, CrawlDataset, RetryPolicy};
use canvassing_net::FaultMatrix;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn breakdown_table(ds: &CrawlDataset) {
    let breakdown = ds.failure_breakdown();
    let failed: usize = breakdown.values().sum();
    println!(
        "  {} sites: {} successful, {} failed",
        ds.records.len(),
        ds.success_count(),
        failed
    );
    for (kind, count) in &breakdown {
        println!("    {kind:<14} {count}");
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.05);
    let matrix_seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(7);

    println!("generating synthetic web at scale {scale} ...");
    let mut web = SyntheticWeb::generate(WebConfig { seed: 2025, scale });
    let frontier = web.frontier(Cohort::Popular);

    // Layer the seeded fault matrix over a third of the frontier: each
    // chosen host gets a fault kind derived from hash(seed, host).
    let matrix = FaultMatrix::new(matrix_seed);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 3 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    matrix.inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));
    println!(
        "fault matrix seed {matrix_seed}: {} of {} hosts faulted\n",
        targets.len(),
        frontier.len()
    );

    println!("visit-once crawl (paper §3.1 semantics, retries = 0):");
    let config = CrawlConfig::control();
    let started = std::time::Instant::now();
    let visit_once = crawl(&web.network, &frontier, &config);
    println!(
        "  completed in {:.1?} without a harness panic",
        started.elapsed()
    );
    breakdown_table(&visit_once);

    println!("\nsame crawl with 3 retries (transient kinds only):");
    let mut retrying = CrawlConfig::control();
    retrying.retry = RetryPolicy::retries(3);
    let healed = crawl(&web.network, &frontier, &retrying);
    breakdown_table(&healed);
    println!(
        "  retries healed {} sites; permanent failures untouched",
        healed.success_count() - visit_once.success_count()
    );

    println!("\ncheckpoint/resume determinism:");
    let half = frontier.len() / 2;
    let checkpoint = CrawlDataset {
        label: visit_once.label.clone(),
        device_id: visit_once.device_id.clone(),
        records: visit_once.records[..half].to_vec(),
    };
    let resumed = resume_crawl(&web.network, &frontier, &config, &checkpoint);
    let identical = resumed.to_json().unwrap() == visit_once.to_json().unwrap();
    println!(
        "  resumed from a {half}-site checkpoint: byte-identical to the \
         uninterrupted crawl = {identical}"
    );

    println!("\nworker-count determinism:");
    let mut solo = CrawlConfig::control();
    solo.workers = 1;
    let single = crawl(&web.network, &frontier, &solo);
    println!(
        "  workers=1 vs workers=8: byte-identical = {}",
        single.to_json().unwrap() == visit_once.to_json().unwrap()
    );
}
