//! Prevalence survey: generate a (reduced-scale) synthetic web, crawl
//! both cohorts, and print the §4.1 prevalence numbers and Figure 1.
//!
//! ```sh
//! cargo run --release --example prevalence_survey -- [scale] [seed]
//! ```
//!
//! Default scale is 0.1 (2k popular + 2k tail sites); pass `1.0` for the
//! paper-scale 20k + 20k crawl.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::cluster::{Clustering, OverlapStats};
use canvassing::detect::detect;
use canvassing::figures::Figure1;
use canvassing::prevalence::Prevalence;
use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.1);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2025);

    println!("generating synthetic web at scale {scale} (seed {seed}) ...");
    let web = SyntheticWeb::generate(WebConfig { seed, scale });

    let config = CrawlConfig::control();
    let mut analyses = Vec::new();
    for cohort in [Cohort::Popular, Cohort::Tail] {
        let frontier = web.frontier(cohort);
        println!("crawling {:?} cohort: {} sites ...", cohort, frontier.len());
        let started = std::time::Instant::now();
        let dataset = crawl(&web.network, &frontier, &config);
        println!(
            "  done in {:.1?}: {} successful, {} failed",
            started.elapsed(),
            dataset.success_count(),
            dataset.failed().count()
        );
        let detections: Vec<_> = dataset.successful().map(|(_, v)| detect(v)).collect();
        let prevalence = Prevalence::compute(&detections, dataset.records.len());
        println!(
            "  fingerprinting sites: {} / {} successful ({:.1}%)",
            prevalence.fingerprinting_sites,
            prevalence.successes,
            100.0 * prevalence.fingerprinting_rate()
        );
        println!(
            "  canvases per fingerprinting site: mean {:.2}, median {}, max {}",
            prevalence.mean_canvases, prevalence.median_canvases, prevalence.max_canvases
        );
        println!(
            "  fingerprintable extractions: {} of {} ({:.0}%)",
            prevalence.fingerprintable_extractions,
            prevalence.total_extractions,
            100.0 * prevalence.fingerprintable_fraction()
        );
        analyses.push((cohort, detections));
    }

    let popular = Clustering::build(analyses[0].1.iter());
    let tail = Clustering::build(analyses[1].1.iter());
    println!(
        "\nunique canvases: {} popular, {} tail",
        popular.unique_canvases(),
        tail.unique_canvases()
    );
    let overlap = OverlapStats::compute(&popular, &tail);
    println!(
        "tail sites sharing a canvas with a popular site: {:.1}%",
        100.0 * overlap.sharing_fraction()
    );

    println!("\nFigure 1 (top 20 canvases):");
    let figure = Figure1::build(&popular, &tail, 20);
    println!("{}", figure.render_ascii(30));
}
