//! Ad-blocker evasion lab (§5.2): shows, request by request, why
//! blocklist rules that *statically* cover fingerprinting scripts fail to
//! block them in practice — the first-party exception, site-scoped `@@`
//! exceptions, the `$document` rule-design failure, CDN fronting, and
//! CNAME cloaking (which only uBlock Origin sees through).
//!
//! ```sh
//! cargo run --example adblock_evasion
//! ```

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_blocklist::{FilterList, RequestContext, Verdict};
use canvassing_browser::{AdBlockerKind, Extension};
use canvassing_net::{DnsZone, ResourceType, Url};

const EASYLIST_EXCERPT: &str = "\
! EasyList excerpt (synthetic, mirrors the rule shapes the paper found)
/akam/*$script
||privacy-cs.mail.ru^$script
@@||privacy-cs.mail.ru^$script,domain=ru
||mgid.com^$document
||tracker-pixel.net^$script
";

struct Case {
    what: &'static str,
    page: &'static str,
    script: &'static str,
}

fn main() {
    let list = FilterList::parse("EasyList", EASYLIST_EXCERPT);
    let abp = Extension::new(AdBlockerKind::AdblockPlus, EASYLIST_EXCERPT);
    let ubo = Extension::new(AdBlockerKind::UblockOrigin, EASYLIST_EXCERPT);

    // DNS with one CNAME cloak: metrics.shop.com is really tracker-pixel.net.
    let mut dns = DnsZone::new();
    dns.insert_auto("tracker-pixel.net");
    dns.insert_cname("metrics.shop.com", "tracker-pixel.net");

    let cases = [
        Case {
            what: "Akamai sensor, first-party path (footnote 5)",
            page: "https://bank.example/",
            script: "https://bank.example/akam/13/ab12.js",
        },
        Case {
            what: "mail.ru counter on a .ru site (site-scoped @@ exception)",
            page: "https://news.ru/",
            script: "https://privacy-cs.mail.ru/counter/top.js",
        },
        Case {
            what: "mail.ru counter on a .com site (no exception)",
            page: "https://blog.example/",
            script: "https://privacy-cs.mail.ru/counter/top.js",
        },
        Case {
            what: "mgid fingerprinting script ($document rule, A.6)",
            page: "https://news.example/",
            script: "https://mgid.com/fp-collect.js",
        },
        Case {
            what: "plain third-party tracker",
            page: "https://shop.com/",
            script: "https://tracker-pixel.net/fp.js",
        },
        Case {
            what: "the same tracker, CNAME-cloaked as first-party",
            page: "https://shop.com/",
            script: "https://metrics.shop.com/fp.js",
        },
    ];

    println!(
        "{:<55} {:>10} {:>8} {:>8}",
        "scenario", "static", "ABP", "uBO"
    );
    for case in &cases {
        let page = Url::parse(case.page).unwrap();
        let script = Url::parse(case.script).unwrap();

        // Static coverage, adblockparser style (§5.1): does any rule
        // match the URL as a script, ignoring page context?
        let statically_covered = list.covers_script_url(&script, ResourceType::Script);

        let abp_blocked = abp.check_script(&page, &script, &dns).is_some();
        let ubo_blocked = ubo.check_script(&page, &script, &dns).is_some();

        println!(
            "{:<55} {:>10} {:>8} {:>8}",
            case.what,
            if statically_covered { "covered" } else { "-" },
            if abp_blocked { "BLOCK" } else { "allow" },
            if ubo_blocked { "BLOCK" } else { "allow" },
        );
    }

    // Show the full verdict detail for the mail.ru exception case.
    println!("\nverdict detail for mail.ru on news.ru:");
    let ctx = RequestContext::new(
        Url::parse("https://privacy-cs.mail.ru/counter/top.js").unwrap(),
        ResourceType::Script,
        false,
        "news.ru",
    );
    match list.evaluate(&ctx) {
        Verdict::Excepted { block, exception } => {
            println!("  blocking rule matched:  {block}");
            println!("  but exception applied:  {exception}");
        }
        other => println!("  {other:?}"),
    }
}
