//! Minimal client loop against the verdict-serving daemon:
//!
//! 1. steady admission at full fidelity,
//! 2. a same-instant burst that sheds tiers and rejects the overflow
//!    with retry-after hints,
//! 3. a hot blocklist reload that flips a verdict without dropping a
//!    single in-flight request.
//!
//! Run with `cargo run --example serve_demo`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_net::{Network, Resource, ScriptResource, Url};
use canvassing_serve::{
    Payload, ReloadEvent, RuleSnapshot, ServeConfig, Served, ShedThresholds, VerdictRequest,
    VerdictResponse, VerdictService,
};

fn show(tag: &str, resp: &VerdictResponse) {
    let outcome = match &resp.served {
        Served::Full {
            verdict,
            blocklisted,
            vendor,
            ..
        } => format!(
            "full: {verdict}, blocklisted={blocklisted}, vendor={}",
            vendor.as_deref().unwrap_or("-")
        ),
        Served::CacheOnly { verdict, .. } => format!("cache-only: {verdict}"),
        Served::CacheMiss => "cache-only: miss (come back later)".into(),
        Served::Heuristic { suspicious } => format!("heuristic: suspicious={suspicious}"),
        Served::FetchFailed { error } => format!("fetch failed: {error}"),
        Served::Rejected {
            reason,
            retry_after_ms,
        } => format!("REJECTED ({}), retry in {retry_after_ms}ms", reason.label()),
    };
    println!(
        "  [{tag}] req {:>2} t={:>4}ms epoch {} latency {:>3}ms  {outcome}",
        resp.id,
        resp.arrival_ms,
        resp.epoch,
        resp.latency_ms(),
    );
}

fn main() {
    // A tiny network: one tracker CDN serving a canvas-fingerprinting
    // script, not yet on any blocklist.
    let mut network = Network::new();
    let tracker = Url::https("cdn.tracker.example", "/collect.js");
    network.host(
        &tracker,
        Resource::Script(ScriptResource {
            source: r#"
                let c = document.createElement('canvas');
                let ctx = c.getContext('2d');
                ctx.fillText('demo,fp', 2, 2);
                let px = c.toDataURL();
                navigator.sendBeacon('/collect', px);
            "#
            .into(),
            label: "collect".into(),
        }),
    );

    // Small queue bands so the burst below visibly walks the ladder.
    let service = VerdictService::new(ServeConfig {
        lanes: 2,
        shed: ShedThresholds {
            full_below: 3,
            cache_only_below: 6,
            heuristic_below: 9,
        },
        queue_capacity: 9,
        ..ServeConfig::default()
    });
    let boot = RuleSnapshot::new(
        0,
        "boot",
        "||ads.legacy.example^$script\n",
        RuleSnapshot::standard_vendor_patterns(),
    );

    let url_req = |id: u64, arrival_ms: u64| VerdictRequest {
        id,
        arrival_ms,
        deadline_ms: None,
        payload: Payload::Url {
            url: tracker.clone(),
        },
        phase: 0,
    };

    let mut requests = Vec::new();
    // Phase 0: two steady requests, 100ms apart — both admitted at full
    // fidelity (the second hits the warm cache).
    requests.push(url_req(0, 0));
    requests.push(url_req(1, 100));
    // Phase 1: a 12-request burst at t=500ms — the queue bands shed the
    // tail to cache-only, then the heuristic, then typed rejections.
    for i in 0..12 {
        requests.push(url_req(2 + i, 500));
    }
    // Phase 2: after a hot reload at t=900ms puts the tracker's domain on
    // the blocklist, the same URL re-classifies under epoch 1.
    requests.push(url_req(14, 1_000));

    let reloads = vec![ReloadEvent {
        at_ms: 900,
        name: "blocklist-update".into(),
        list_text: "||ads.legacy.example^$script\n||cdn.tracker.example^$script\n".into(),
        vendor_patterns: None,
    }];

    let out = service.serve(&requests, &reloads, boot, Some(&network), None);

    println!("-- steady: admitted at full fidelity --");
    for resp in &out.responses[..2] {
        show("steady", resp);
    }
    println!("-- burst at t=500ms: the shed ladder in one instant --");
    for resp in &out.responses[2..14] {
        show("burst", resp);
    }
    println!("-- after the hot reload at t=900ms: same URL, new epoch --");
    show("reload", &out.responses[14]);

    let reload = &out.plan.reloads[0];
    println!(
        "\nreload \"{}\" applied at {}ms: epoch {} invalidated {} cache shard(s)",
        reloads[0].name,
        reload.at_ms,
        reload.epoch,
        reload.invalidated_shards.len(),
    );
    println!(
        "requests offered {}  responses delivered {}  (zero drops)",
        requests.len(),
        out.responses.len(),
    );
}
