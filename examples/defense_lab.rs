//! Defense lab (§5.3): run the same fingerprinting script under every
//! modeled browser defense and show what the fingerprinter's
//! double-render stability check concludes.
//!
//! The punchline mirrors the paper's footnote 7: per-render noise is
//! detected by the check (the fingerprinter simply discards the canvas
//! component), while per-session noise passes the check — yet still
//! poisons cross-site grouping because the noise differs per session.
//!
//! ```sh
//! cargo run --example defense_lab
//! ```

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_browser::{Browser, DefenseMode};
use canvassing_net::{Network, PageResource, Resource, ScriptRef, ScriptResource, Url};
use canvassing_raster::DeviceProfile;

/// A FingerprintJS-style script: double-render check, then report.
const FINGERPRINTER: &str = r##"
fn render() {
    let c = document.createElement("canvas");
    c.width = 220; c.height = 48;
    let x = c.getContext("2d");
    x.textBaseline = "top";
    x.fillStyle = "#069";
    x.font = "14px Arial";
    x.fillText("stability probe \u{1F603}", 2, 4);
    x.fillStyle = "rgba(255, 102, 0, 0.7)";
    x.fillRect(10, 24, 120, 18);
    return c.toDataURL();
}
let first = render();
let second = render();
if (first == second) {
    "canvas:" + first.substring(30, 46);
} else {
    "canvas:unstable";
}
"##;

fn build_network() -> (Network, Url) {
    let mut network = Network::new();
    let script_url = Url::https("fp.vendor.example", "/agent.js");
    network.host(
        &script_url,
        Resource::Script(ScriptResource {
            source: FINGERPRINTER.to_string(),
            label: "stability-prober".into(),
        }),
    );
    let page = Url::https("site.example", "/");
    network.host(
        &page,
        Resource::Page(PageResource {
            scripts: vec![ScriptRef::External(script_url)],
            consent_banner: false,
            bot_check: false,
        }),
    );
    (network, page)
}

fn run(defense: DefenseMode) -> (bool, Vec<String>) {
    let (network, page) = build_network();
    let mut browser = Browser::new(DeviceProfile::intel_ubuntu());
    browser.defense = defense;
    let visit = browser.visit(&network, &page).expect("visit");
    let urls: Vec<String> = visit
        .extractions
        .iter()
        .map(|e| e.data_url.clone())
        .collect();
    let stable = urls.len() >= 2 && urls[0] == urls[1];
    (stable, urls)
}

fn main() {
    println!(
        "{:<42} {:>18} {:>22}",
        "defense", "check says stable?", "fingerprint usable?"
    );

    let cases: [(&str, DefenseMode); 5] = [
        ("none (default browser)", DefenseMode::None),
        ("canvas blocking (Tor-style)", DefenseMode::Block),
        (
            "per-render noise (Brave/extension-style)",
            DefenseMode::RandomizePerRender { seed: 7 },
        ),
        (
            "per-session noise (Firefox-style), session A",
            DefenseMode::RandomizePerSession { seed: 7 },
        ),
        (
            "per-session noise (Firefox-style), session B",
            DefenseMode::RandomizePerSession { seed: 8 },
        ),
    ];

    let mut session_canvases = Vec::new();
    for (name, defense) in cases {
        let (stable, urls) = run(defense);
        // "Usable" from the fingerprinter's perspective: stable and not a
        // blocked constant.
        let blocked = urls.iter().all(|u| u == canvassing_dom::BLOCKED_DATA_URL);
        let usable = stable && !blocked;
        println!(
            "{:<42} {:>18} {:>22}",
            name,
            if stable { "yes" } else { "no → discard" },
            if usable { "yes" } else { "no" },
        );
        if matches!(defense, DefenseMode::RandomizePerSession { .. }) {
            session_canvases.push(urls[0].clone());
        }
    }

    // The subtle point: per-session noise passes the stability check but
    // the canvas differs *across sessions*, breaking re-identification.
    assert_ne!(session_canvases[0], session_canvases[1]);
    println!(
        "\nper-session noise passed the check in both sessions, but the two \
         sessions produced different canvases — re-identification across \
         visits fails anyway ✓"
    );
}
