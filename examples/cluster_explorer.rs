//! Cluster explorer: crawl a small synthetic web and print the canvas
//! clusters — the literal "fingerprinting the fingerprinters" table: each
//! distinct canvas, how many sites render it, and from which script URLs
//! it originates.
//!
//! ```sh
//! cargo run --release --example cluster_explorer -- [scale]
//! ```

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::cluster::Clustering;
use canvassing::detect::detect;
use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0.05);
    let web = SyntheticWeb::generate(WebConfig { seed: 2025, scale });
    let frontier = web.frontier(Cohort::Popular);
    println!("crawling {} popular sites ...", frontier.len());
    let dataset = crawl(&web.network, &frontier, &CrawlConfig::control());
    let detections: Vec<_> = dataset.successful().map(|(_, v)| detect(v)).collect();
    let clustering = Clustering::build(detections.iter());

    println!(
        "{} fingerprinting sites, {} distinct canvases\n",
        detections.iter().filter(|d| d.is_fingerprinting()).count(),
        clustering.unique_canvases()
    );
    println!(
        "{:<6} {:>6} {:>8}  script URLs observed (up to 3)",
        "rank", "sites", "extracts"
    );
    for (i, cluster) in clustering.clusters.iter().take(25).enumerate() {
        let mut urls: Vec<&str> = cluster
            .script_urls
            .iter()
            .map(String::as_str)
            .take(3)
            .collect();
        if cluster.script_urls.len() > 3 {
            urls.push("…");
        }
        println!(
            "{:<6} {:>6} {:>8}  {}",
            i + 1,
            cluster.site_count(),
            cluster.extractions,
            urls.join("  ")
        );
    }

    // The headline trick: identical canvases pin down the service even
    // when sites serve the script from their own domains.
    if let Some(head) = clustering.clusters.first() {
        let hosts: std::collections::BTreeSet<&str> = head
            .script_urls
            .iter()
            .filter_map(|u| u.split('/').nth(2))
            .collect();
        println!(
            "\ntop cluster is served from {} distinct hosts — grouping by canvas \
             bytes unifies them where URL-based attribution cannot",
            hosts.len()
        );
    }
}
