//! Quickstart: host a page that runs a fingerprinting script, visit it
//! with the instrumented browser, and inspect what the measurement
//! pipeline sees.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing::detect;
use canvassing_browser::Browser;
use canvassing_net::{Network, PageResource, Resource, ScriptRef, ScriptResource, Url};
use canvassing_raster::DeviceProfile;

fn main() {
    // 1. Build a tiny web: one page, one third-party fingerprinting script.
    let mut network = Network::new();
    let script_url = Url::https("cdn.fingerprinter.example", "/fp.js");
    network.host(
        &script_url,
        Resource::Script(ScriptResource {
            source: r##"
                // A minimal canvas fingerprinter: draw a text test canvas,
                // extract it, and do the double-render stability check.
                fn testCanvas() {
                    let c = document.createElement("canvas");
                    c.width = 240; c.height = 60;
                    let x = c.getContext("2d");
                    x.textBaseline = "alphabetic";
                    x.fillStyle = "#f60";
                    x.fillRect(100, 1, 62, 20);
                    x.fillStyle = "#069";
                    x.font = "11pt no-real-font-123";
                    x.fillText("Cwm fjordbank gly \u{1F603}", 2, 15);
                    return c.toDataURL();
                }
                let first = testCanvas();
                let second = testCanvas();
                let stable = first == second;
            "##
            .to_string(),
            label: "demo-fingerprinter".into(),
        }),
    );
    let page_url = Url::https("shop.example", "/");
    network.host(
        &page_url,
        Resource::Page(PageResource {
            scripts: vec![ScriptRef::External(script_url)],
            consent_banner: false,
            bot_check: false,
        }),
    );

    // 2. Visit the page with the instrumented headless browser.
    let browser = Browser::new(DeviceProfile::intel_ubuntu());
    let visit = browser.visit(&network, &page_url).expect("visit succeeds");

    println!(
        "visited {} — {} API calls recorded",
        visit.page,
        visit.api_calls.len()
    );
    for call in visit.api_calls.iter().take(8) {
        println!(
            "  [{:>4}ms] {:?}.{} {:?}",
            call.timestamp_ms, call.interface, call.name, call.args
        );
    }
    println!(
        "  ... plus {} more calls",
        visit.api_calls.len().saturating_sub(8)
    );

    // 3. Run the paper's detection heuristics.
    let detection = detect(&visit);
    println!("\nfingerprintable canvases: {}", detection.canvases.len());
    for c in &detection.canvases {
        println!(
            "  {}x{} canvas from {} (hash {:016x}, first {} chars: {}…)",
            c.width,
            c.height,
            c.script_url,
            c.hash,
            40,
            &c.data_url[..40]
        );
    }
    println!(
        "double-render randomization check observed: {}",
        detection.double_render_check
    );

    // 4. The same script renders identical bytes on a second site — the
    // property the paper's clustering exploits.
    let page2 = Url::https("news.example", "/");
    network.host(
        &page2,
        Resource::Page(PageResource {
            scripts: vec![ScriptRef::External(Url::https(
                "cdn.fingerprinter.example",
                "/fp.js",
            ))],
            consent_banner: false,
            bot_check: false,
        }),
    );
    let visit2 = browser.visit(&network, &page2).expect("second visit");
    let d2 = detect(&visit2);
    assert_eq!(detection.canvases[0].data_url, d2.canvases[0].data_url);
    println!(
        "\nsame script on {} produced byte-identical canvases ✓",
        page2.host
    );

    // 5. A different device renders differently (the fingerprinting signal).
    let m1 = Browser::new(DeviceProfile::apple_m1());
    let visit_m1 = m1.visit(&network, &page_url).expect("m1 visit");
    let d_m1 = detect(&visit_m1);
    assert_ne!(detection.canvases[0].data_url, d_m1.canvases[0].data_url);
    println!("Apple M1 profile rendered different canvas bytes ✓");
}
