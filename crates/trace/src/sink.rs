//! Where finished visit traces go.
//!
//! The crawler feeds [`VisitTrace`]s to a sink **in frontier order from a
//! single thread** after every worker has joined, so a sink observes a
//! deterministic stream whatever the crawl's worker count or schedule.
//! Sinks still must be `Send + Sync` (the handle is shared through crawl
//! config structs that cross threads), but they are free to use one plain
//! mutex — consumption is not a hot path.

use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::VisitTrace;

/// A consumer of finished visit traces.
pub trait TraceSink: Send + Sync {
    /// Fast-path gate: when `false`, the crawl constructs disabled
    /// recorders and no events are recorded at all (the near-zero
    /// overhead path). Defaults to `true`.
    fn enabled(&self) -> bool {
        true
    }

    /// Consumes one finished visit trace. Called in frontier order.
    fn consume(&self, trace: VisitTrace);
}

/// The default sink: tracing fully off. `enabled()` is `false`, so no
/// recorder ever records and `consume` is unreachable in practice.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn consume(&self, _trace: VisitTrace) {}
}

/// Counts visits/spans/events and drops the data — the cheapest *enabled*
/// sink. Used by the study pipeline to surface trace volume in reports
/// without retaining whole streams.
#[derive(Debug, Default)]
pub struct CountingSink {
    visits: AtomicU64,
    spans: AtomicU64,
    events: AtomicU64,
}

impl CountingSink {
    /// Creates a zeroed counting sink.
    pub fn new() -> CountingSink {
        CountingSink::default()
    }

    /// `(visits, spans, events)` consumed so far.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.visits.load(Ordering::Relaxed),
            self.spans.load(Ordering::Relaxed),
            self.events.load(Ordering::Relaxed),
        )
    }
}

impl TraceSink for CountingSink {
    fn consume(&self, trace: VisitTrace) {
        self.visits.fetch_add(1, Ordering::Relaxed);
        self.spans.fetch_add(trace.span_count(), Ordering::Relaxed);
        self.events
            .fetch_add(trace.events.len() as u64, Ordering::Relaxed);
    }
}

/// Bounded in-memory sink: keeps the **most recent** `capacity` visit
/// traces in consumption order. The test workhorse — determinism suites
/// compare two sinks' drained streams structurally.
#[derive(Debug)]
pub struct RingSink {
    capacity: usize,
    ring: Mutex<VecDeque<VisitTrace>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// A ring holding at most `capacity` traces (oldest evicted first).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 4096))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Copies out the retained traces, oldest first.
    pub fn traces(&self) -> Vec<VisitTrace> {
        self.ring
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Number of traces evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of traces currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap_or_else(|p| p.into_inner()).len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingSink {
    fn consume(&self, trace: VisitTrace) {
        let mut ring = self.ring.lock().unwrap_or_else(|p| p.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(trace);
    }
}

/// Streams each visit trace as one JSON line to a writer (file, stdout,
/// buffer). The serialization is hand-rolled and deterministic — see
/// [`VisitTrace::to_jsonl`].
pub struct JsonlSink {
    writer: Mutex<Box<dyn Write + Send>>,
    lines: AtomicU64,
}

impl JsonlSink {
    /// Wraps any writer.
    pub fn new(writer: Box<dyn Write + Send>) -> JsonlSink {
        JsonlSink {
            writer: Mutex::new(writer),
            lines: AtomicU64::new(0),
        }
    }

    /// Creates (truncating) `path` and streams JSONL into it.
    pub fn create(path: &str) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Lines written so far.
    pub fn lines(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .flush()
    }
}

impl TraceSink for JsonlSink {
    fn consume(&self, trace: VisitTrace) {
        let line = trace.to_jsonl();
        let mut writer = self.writer.lock().unwrap_or_else(|p| p.into_inner());
        // A sink must not panic the crawl; a full disk degrades to a
        // truncated trace file.
        let _ = writer.write_all(line.as_bytes());
        let _ = writer.write_all(b"\n");
        self.lines.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::VisitRecorder;

    fn trace(label: &str) -> VisitTrace {
        let rec = VisitRecorder::new(label, None);
        let s = rec.begin("fetch");
        rec.end(s, 3);
        rec.finish().unwrap()
    }

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
    }

    #[test]
    fn counting_sink_totals() {
        let sink = CountingSink::new();
        sink.consume(trace("a"));
        sink.consume(trace("b"));
        assert_eq!(sink.totals(), (2, 2, 4));
    }

    #[test]
    fn ring_sink_bounds_and_evicts_oldest() {
        let sink = RingSink::new(2);
        assert!(sink.is_empty());
        sink.consume(trace("a"));
        sink.consume(trace("b"));
        sink.consume(trace("c"));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 1);
        let labels: Vec<String> = sink.traces().into_iter().map(|t| t.label).collect();
        assert_eq!(labels, vec!["b".to_string(), "c".to_string()]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_visit() {
        let buf: Vec<u8> = Vec::new();
        let shared = std::sync::Arc::new(Mutex::new(buf));
        struct SharedWriter(std::sync::Arc<Mutex<Vec<u8>>>);
        impl Write for SharedWriter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonlSink::new(Box::new(SharedWriter(std::sync::Arc::clone(&shared))));
        sink.consume(trace("https://a.com/"));
        sink.consume(trace("https://b.com/"));
        sink.flush().unwrap();
        assert_eq!(sink.lines(), 2);
        let text = String::from_utf8(shared.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("https://a.com/"));
        assert!(lines[1].starts_with('{') && lines[1].ends_with('}'));
    }
}
