//! # canvassing-trace
//!
//! The pipeline's deterministic observability substrate: per-visit span
//! and event recording on **logical clocks**, lock-sharded typed metrics
//! (counters and histograms), and pluggable [`TraceSink`]s.
//!
//! The crawl is a measurement instrument, and instruments need
//! self-measurement: §3's crawl and §5's evasion analyses are only
//! trustworthy if we can see where time, cache hits, faults, and verdicts
//! come from per visit. This crate gives every visit a timeline — fetch →
//! parse → static-triage → execute → extract — without perturbing the
//! pipeline's core guarantee that datasets (and now traces) are
//! byte-identical across worker counts, cache temperature, and
//! checkpoint/resume boundaries.
//!
//! ## Determinism contract
//!
//! * **No wall time.** Event timestamps are ticks of a per-visit
//!   monotonic logical clock seeded fresh for each visit ([`VisitRecorder`]);
//!   durations are *simulated* milliseconds (network latency plus
//!   interpreter steps at a fixed rate) supplied by the caller. Two runs
//!   of the same workload therefore produce byte-identical traces.
//! * **Per-visit streams.** A recorder is visit-scoped and single
//!   threaded; the crawler collects finished [`VisitTrace`]s in frontier
//!   order and feeds them to the sink from one thread, so the sink's
//!   stream is schedule-independent.
//! * **Schedule-dependent facts stay out of the stream.** *Which* visit
//!   populated a shared cache depends on worker interleaving, so
//!   per-visit events never claim hit-vs-miss attribution; those tallies
//!   go to the shared [`MetricsRegistry`], whose totals are deterministic
//!   for a workload even though their per-visit attribution is not.
//!
//! ## Overhead
//!
//! Recorders carry an `enabled` flag checked first in every `#[inline]`
//! record method; with the default [`NullSink`] the crawler constructs
//! disabled recorders and the whole layer costs one branch per record
//! site (measured ≤ 2% on the crawl-throughput bench).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod sink;
pub mod timeline;

pub use event::{visit_seed, EventKind, SpanId, TraceEvent, VisitTrace, ROOT_SPAN};
pub use metrics::{Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use recorder::{SpanGuard, VisitRecorder};
pub use sink::{CountingSink, JsonlSink, NullSink, RingSink, TraceSink};
pub use timeline::{hot_path, render_timeline, span_names, span_tree, HotPathRow, SpanNode};
