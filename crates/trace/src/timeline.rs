//! Reading traces back: span trees, rendered per-visit timelines, and the
//! cross-visit hot-path breakdown the `bench trace` subcommand prints.

use std::collections::BTreeMap;

use crate::event::{EventKind, SpanId, TraceEvent, VisitTrace, ROOT_SPAN};

/// One node of a reconstructed span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Span id within the visit (0 for the synthetic root).
    pub id: SpanId,
    /// Stage name (`"visit"` for the synthetic root).
    pub name: &'static str,
    /// Tick the span opened at (0 for the root).
    pub start_tick: u64,
    /// Simulated milliseconds attributed on close.
    pub dur_ms: u64,
    /// Instant events recorded directly in this span.
    pub events: Vec<(u64, &'static str, String)>,
    /// Child spans, in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Simulated milliseconds of this span plus all descendants.
    pub fn total_dur_ms(&self) -> u64 {
        self.dur_ms
            + self
                .children
                .iter()
                .map(SpanNode::total_dur_ms)
                .sum::<u64>()
    }

    /// Depth-first iterator over `self` and all descendants.
    fn walk<'a>(&'a self, out: &mut Vec<&'a SpanNode>) {
        out.push(self);
        for child in &self.children {
            child.walk(out);
        }
    }
}

/// Rebuilds the span tree of one visit under a synthetic `"visit"` root.
/// Tolerates truncated streams (spans missing their end) by leaving
/// `dur_ms` at 0, so a panicked visit's partial trace still renders.
pub fn span_tree(trace: &VisitTrace) -> SpanNode {
    // Spans are recorded strictly nested, so a stack of open nodes
    // reconstructs the tree in one pass: close pops a node into its
    // parent's children.
    let mut stack: Vec<SpanNode> = vec![SpanNode {
        id: ROOT_SPAN,
        name: "visit",
        start_tick: 0,
        dur_ms: 0,
        events: Vec::new(),
        children: Vec::new(),
    }];
    for TraceEvent { tick, kind } in &trace.events {
        match kind {
            EventKind::SpanStart { id, name, .. } => {
                stack.push(SpanNode {
                    id: *id,
                    name,
                    start_tick: *tick,
                    dur_ms: 0,
                    events: Vec::new(),
                    children: Vec::new(),
                });
            }
            EventKind::SpanEnd { id, dur_ms } => {
                if stack.len() > 1 && stack[stack.len() - 1].id == *id {
                    if let Some(mut node) = stack.pop() {
                        node.dur_ms = *dur_ms;
                        if let Some(parent) = stack.last_mut() {
                            parent.children.push(node);
                        }
                    }
                }
            }
            EventKind::Instant { name, detail, .. } => {
                if let Some(node) = stack.last_mut() {
                    node.events.push((*tick, name, detail.clone()));
                }
            }
        }
    }
    // A truncated stream leaves spans open: fold them into their parents.
    while stack.len() > 1 {
        if let Some(node) = stack.pop() {
            if let Some(parent) = stack.last_mut() {
                parent.children.push(node);
            }
        }
    }
    stack.pop().unwrap_or_else(|| SpanNode {
        id: ROOT_SPAN,
        name: "visit",
        start_tick: 0,
        dur_ms: 0,
        events: Vec::new(),
        children: Vec::new(),
    })
}

/// The set of span names appearing anywhere in a visit's trace — the
/// stage-coverage check (`fetch`/`parse`/`triage`/`execute`/`extract`)
/// tests and the `trace --check` gate use.
pub fn span_names(trace: &VisitTrace) -> std::collections::BTreeSet<&'static str> {
    trace
        .events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::SpanStart { name, .. } => Some(name),
            _ => None,
        })
        .collect()
}

/// Renders one visit as an indented plain-text timeline.
pub fn render_timeline(trace: &VisitTrace) -> String {
    let tree = span_tree(trace);
    let mut out = format!(
        "visit {} ({} events, {} sim-ms)\n",
        trace.label,
        trace.events.len(),
        tree.total_dur_ms()
    );
    fn render(node: &SpanNode, depth: usize, out: &mut String) {
        if node.id != ROOT_SPAN {
            out.push_str(&format!(
                "{}[{:>4}] {} ({} sim-ms)\n",
                "  ".repeat(depth),
                node.start_tick,
                node.name,
                node.dur_ms
            ));
        }
        let depth_here = if node.id == ROOT_SPAN {
            depth
        } else {
            depth + 1
        };
        for (tick, name, detail) in &node.events {
            out.push_str(&format!(
                "{}[{:>4}] · {}{}{}\n",
                "  ".repeat(depth_here),
                tick,
                name,
                if detail.is_empty() { "" } else { ": " },
                detail
            ));
        }
        for child in &node.children {
            render(child, depth_here, out);
        }
    }
    render(&tree, 0, &mut out);
    out
}

/// One row of the hot-path breakdown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotPathRow {
    /// Stage (span) name.
    pub name: &'static str,
    /// Times the stage ran across all visits.
    pub count: u64,
    /// Total simulated milliseconds attributed to the stage itself
    /// (exclusive of child spans).
    pub total_dur_ms: u64,
}

/// Aggregates span self-time across many visits, most expensive stage
/// first (ties broken by name, so the table is deterministic).
pub fn hot_path(traces: &[VisitTrace]) -> Vec<HotPathRow> {
    let mut by_name: BTreeMap<&'static str, (u64, u64)> = BTreeMap::new();
    for trace in traces {
        let tree = span_tree(trace);
        let mut nodes = Vec::new();
        tree.walk(&mut nodes);
        for node in nodes {
            if node.id == ROOT_SPAN {
                continue;
            }
            let entry = by_name.entry(node.name).or_insert((0, 0));
            entry.0 += 1;
            entry.1 += node.dur_ms;
        }
    }
    let mut rows: Vec<HotPathRow> = by_name
        .into_iter()
        .map(|(name, (count, total_dur_ms))| HotPathRow {
            name,
            count,
            total_dur_ms,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.total_dur_ms
            .cmp(&a.total_dur_ms)
            .then_with(|| a.name.cmp(b.name))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::VisitRecorder;

    fn sample() -> VisitTrace {
        let rec = VisitRecorder::new("https://site.com/", None);
        let fetch = rec.begin("fetch");
        rec.instant("net.fault", || "latency-spike".into());
        rec.end(fetch, 40);
        let exec = rec.begin("execute");
        let parse = rec.begin("parse");
        rec.end(parse, 0);
        rec.instant("steps", || "1200".into());
        rec.end(exec, 1);
        rec.finish().unwrap()
    }

    #[test]
    fn tree_reconstructs_nesting() {
        let tree = span_tree(&sample());
        assert_eq!(tree.name, "visit");
        assert_eq!(tree.children.len(), 2);
        assert_eq!(tree.children[0].name, "fetch");
        assert_eq!(tree.children[0].dur_ms, 40);
        assert_eq!(tree.children[0].events.len(), 1);
        assert_eq!(tree.children[1].name, "execute");
        assert_eq!(tree.children[1].children[0].name, "parse");
        assert_eq!(tree.total_dur_ms(), 41);
    }

    #[test]
    fn truncated_stream_still_builds() {
        let mut trace = sample();
        trace.events.truncate(3); // cut mid-span
        let tree = span_tree(&trace);
        assert_eq!(tree.children[0].name, "fetch");
    }

    #[test]
    fn names_cover_recorded_stages() {
        let names = span_names(&sample());
        assert!(names.contains("fetch"));
        assert!(names.contains("parse"));
        assert!(names.contains("execute"));
        assert!(!names.contains("extract"));
    }

    #[test]
    fn timeline_renders_ticks_and_durations() {
        let text = render_timeline(&sample());
        assert!(text.contains("visit https://site.com/"));
        assert!(text.contains("fetch (40 sim-ms)"));
        assert!(text.contains("net.fault: latency-spike"));
        assert!(text.contains("  [   4] parse"));
    }

    #[test]
    fn hot_path_aggregates_and_sorts() {
        let rows = hot_path(&[sample(), sample()]);
        assert_eq!(rows[0].name, "fetch");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_dur_ms, 80);
        let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["fetch", "execute", "parse"]);
    }
}
