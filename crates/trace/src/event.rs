//! Trace events and the per-visit trace record.

/// Identifies a span within one visit's trace. Ids are allocated densely
/// in span-open order starting at 1; [`ROOT_SPAN`] (0) is the implicit
/// visit-level root that every top-level span parents to.
pub type SpanId = u32;

/// The implicit per-visit root span.
pub const ROOT_SPAN: SpanId = 0;

/// FNV-1a hash of a visit label (its URL) — the deterministic per-visit
/// seed that identifies a trace stream independent of crawl scheduling.
pub fn visit_seed(label: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in label.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One recorded fact. Span names are `&'static str` by design: the
/// vocabulary of pipeline stages is closed, and static names keep the
/// disabled fast path free of allocation at every record site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A span opened under `parent`.
    SpanStart {
        /// The new span's id.
        id: SpanId,
        /// The enclosing span (`ROOT_SPAN` at visit level).
        parent: SpanId,
        /// Stage name, e.g. `"fetch"`, `"parse"`, `"execute"`.
        name: &'static str,
    },
    /// A span closed.
    SpanEnd {
        /// The span being closed.
        id: SpanId,
        /// Simulated milliseconds attributed to the span (network
        /// latency, interpreter steps at the fixed step rate — never
        /// wall time).
        dur_ms: u64,
    },
    /// An instant event inside a span.
    Instant {
        /// The owning span.
        span: SpanId,
        /// Event name, e.g. `"verdict"`, `"net.fault"`.
        name: &'static str,
        /// Free-form detail; deterministic for a given workload.
        detail: String,
    },
}

/// One event on the visit's logical clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Logical-clock tick (0-based, strictly increasing within a visit).
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The finished trace of one visit: the unit a [`crate::TraceSink`]
/// consumes. Equality is structural, so whole streams can be compared in
/// determinism tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VisitTrace {
    /// Deterministic visit id ([`visit_seed`] of the label).
    pub visit_id: u64,
    /// Human-readable visit label (the page URL).
    pub label: String,
    /// The event stream, in logical-clock order.
    pub events: Vec<TraceEvent>,
}

impl VisitTrace {
    /// Number of spans opened in this trace.
    pub fn span_count(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanStart { .. }))
            .count() as u64
    }

    /// Number of [`EventKind::Instant`] events named `name` — the query
    /// supervision tests use to assert protocol events (`lease.acquire`,
    /// `worker.crash`, `straggler.speculate`, …) without walking event
    /// streams by hand.
    pub fn instant_count(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(&e.kind, EventKind::Instant { name: n, .. } if *n == name))
            .count()
    }

    /// Serializes the trace as one JSON object (one JSONL line, no
    /// trailing newline). Hand-rolled so the crate stays dependency-free;
    /// output is deterministic byte-for-byte.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 48);
        out.push_str("{\"visit_id\":");
        out.push_str(&self.visit_id.to_string());
        out.push_str(",\"label\":");
        json_string(&mut out, &self.label);
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"tick\":");
            out.push_str(&e.tick.to_string());
            match &e.kind {
                EventKind::SpanStart { id, parent, name } => {
                    out.push_str(",\"span_start\":{\"id\":");
                    out.push_str(&id.to_string());
                    out.push_str(",\"parent\":");
                    out.push_str(&parent.to_string());
                    out.push_str(",\"name\":");
                    json_string(&mut out, name);
                    out.push('}');
                }
                EventKind::SpanEnd { id, dur_ms } => {
                    out.push_str(",\"span_end\":{\"id\":");
                    out.push_str(&id.to_string());
                    out.push_str(",\"dur_ms\":");
                    out.push_str(&dur_ms.to_string());
                    out.push('}');
                }
                EventKind::Instant { span, name, detail } => {
                    out.push_str(",\"instant\":{\"span\":");
                    out.push_str(&span.to_string());
                    out.push_str(",\"name\":");
                    json_string(&mut out, name);
                    out.push_str(",\"detail\":");
                    json_string(&mut out, detail);
                    out.push('}');
                }
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes + escapes).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visit_seed_is_fnv1a() {
        assert_eq!(visit_seed(""), 0xcbf29ce484222325);
        assert_ne!(visit_seed("https://a.com/"), visit_seed("https://b.com/"));
    }

    #[test]
    fn jsonl_escapes_and_is_deterministic() {
        let trace = VisitTrace {
            visit_id: 7,
            label: "https://x.com/\"q\"\n".into(),
            events: vec![
                TraceEvent {
                    tick: 0,
                    kind: EventKind::SpanStart {
                        id: 1,
                        parent: ROOT_SPAN,
                        name: "fetch",
                    },
                },
                TraceEvent {
                    tick: 1,
                    kind: EventKind::Instant {
                        span: 1,
                        name: "net.fault",
                        detail: "latency-spike".into(),
                    },
                },
                TraceEvent {
                    tick: 2,
                    kind: EventKind::SpanEnd { id: 1, dur_ms: 12 },
                },
            ],
        };
        let a = trace.to_jsonl();
        let b = trace.to_jsonl();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"visit_id\":7,"));
        assert!(a.contains("\\\"q\\\"\\n"));
        assert!(a.contains("\"name\":\"fetch\""));
        assert!(a.ends_with("]}"));
        assert_eq!(trace.span_count(), 1);
        assert_eq!(trace.instant_count("net.fault"), 1);
        assert_eq!(trace.instant_count("lease.acquire"), 0);
    }
}
