//! Typed crawl-wide metrics: counters and power-of-two histograms behind
//! a lock-sharded registry.
//!
//! Metrics complement the per-visit event stream: facts whose *per-visit
//! attribution* is schedule-dependent (which worker's visit populated a
//! shared cache, say) are recorded here instead, because their **totals**
//! are deterministic for a given workload even when their attribution is
//! not. Snapshots come back in name order, so rendered metric reports are
//! byte-identical across runs and worker counts.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of independently locked shards in the registry. Registration is
/// rare (the metric vocabulary is small and static); sharding exists so
/// workers registering different names under load never serialize.
const SHARDS: usize = 8;

/// Histogram bucket count: bucket `i` holds values in `[2^(i-1), 2^i)`
/// (bucket 0 holds zero), with the last bucket open-ended.
pub const HISTOGRAM_BUCKETS: usize = 17;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A log2-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Bucket index for a sample: 0 for 0, else `1 + floor(log2 v)`,
    /// clamped to the last (open-ended) bucket.
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Plain-number snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound (exclusive) of bucket `i`, `u64::MAX` for the last.
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            1
        } else if i >= HISTOGRAM_BUCKETS - 1 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Nearest-rank quantile, resolved to the (exclusive) upper bound of
    /// the bucket holding that rank — an upper estimate with log2
    /// resolution, deterministic for a given sample multiset. `q` is
    /// clamped to `[0, 1]`; returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest rank r (1-based) with r >= q * count.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return HistogramSnapshot::bucket_bound(i);
            }
        }
        HistogramSnapshot::bucket_bound(HISTOGRAM_BUCKETS - 1)
    }
}

/// Deterministic (name-ordered) copy of a registry's contents.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<&'static str, HistogramSnapshot>,
}

/// A lock-sharded registry of named counters and histograms. `Arc`-share
/// one per crawl; record sites hold on to the `Arc<Counter>` /
/// `Arc<Histogram>` handles so steady-state recording is a single atomic
/// add with no map lookup.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: [Mutex<HashMap<&'static str, Arc<Counter>>>; SHARDS],
    histograms: [Mutex<HashMap<&'static str, Arc<Histogram>>>; SHARDS],
}

fn shard_of(name: &str) -> usize {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h as usize) % SHARDS
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns (registering on first sight) the counter named `name`.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        let mut map = self.counters[shard_of(name)]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(name).or_default())
    }

    /// Returns (registering on first sight) the histogram named `name`.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        let mut map = self.histograms[shard_of(name)]
            .lock()
            .unwrap_or_else(|p| p.into_inner());
        Arc::clone(map.entry(name).or_default())
    }

    /// Convenience: bump `name` by `n`.
    pub fn add(&self, name: &'static str, n: u64) {
        self.counter(name).add(n);
    }

    /// Convenience: record one histogram sample.
    pub fn observe(&self, name: &'static str, v: u64) {
        self.histogram(name).observe(v);
    }

    /// Name-ordered snapshot of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for shard in &self.counters {
            for (name, c) in shard.lock().unwrap_or_else(|p| p.into_inner()).iter() {
                snap.counters.insert(name, c.get());
            }
        }
        for shard in &self.histograms {
            for (name, h) in shard.lock().unwrap_or_else(|p| p.into_inner()).iter() {
                snap.histograms.insert(name, h.snapshot());
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot_in_name_order() {
        let reg = MetricsRegistry::new();
        reg.add("b.second", 2);
        reg.add("a.first", 1);
        reg.add("b.second", 3);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.keys().copied().collect();
        assert_eq!(names, vec!["a.first", "b.second"]);
        assert_eq!(snap.counters["b.second"], 5);
    }

    #[test]
    fn counter_handles_skip_the_map() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hot");
        for _ in 0..100 {
            c.add(1);
        }
        assert_eq!(reg.counter("hot").get(), 100);
        assert!(Arc::ptr_eq(&c, &reg.counter("hot")));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.buckets[0], 1, "zero bucket");
        assert_eq!(snap.buckets[1], 1, "[1,2)");
        assert_eq!(snap.buckets[2], 2, "[2,4)");
        assert_eq!(snap.buckets[11], 1, "[1024,2048)");
        assert_eq!(snap.buckets[HISTOGRAM_BUCKETS - 1], 1, "open-ended tail");
        assert!(snap.mean() > 0.0);
        assert_eq!(HistogramSnapshot::bucket_bound(0), 1);
        assert_eq!(HistogramSnapshot::bucket_bound(3), 8);
        assert_eq!(
            HistogramSnapshot::bucket_bound(HISTOGRAM_BUCKETS - 1),
            u64::MAX
        );
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().quantile(0.5), 0, "empty histogram");
        for v in [1u64, 2, 3, 100] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // Ranks: q=0.25 → rank 1 → bucket of 1 → bound 2; q=0.5 → rank 2
        // → bucket [2,4) → bound 4; q=1.0 → rank 4 → bucket [64,128) →
        // bound 128. Upper estimates, never under the true value.
        assert_eq!(snap.quantile(0.25), 2);
        assert_eq!(snap.quantile(0.5), 4);
        assert_eq!(snap.quantile(0.75), 4);
        assert_eq!(snap.quantile(1.0), 128);
        assert_eq!(snap.quantile(0.0), 2, "q=0 clamps to rank 1");
        // Out-of-range q clamps instead of panicking.
        assert_eq!(snap.quantile(7.5), 128);
    }

    #[test]
    fn concurrent_recording_is_lossless() {
        let reg = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let reg = Arc::clone(&reg);
                scope.spawn(move || {
                    let c = reg.counter("shared");
                    for i in 0..1000u64 {
                        c.add(1);
                        reg.observe("lat", i % 64);
                    }
                });
            }
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counters["shared"], 8_000);
        assert_eq!(snap.histograms["lat"].count, 8_000);
    }
}
