//! The per-visit trace recorder.
//!
//! A [`VisitRecorder`] is created by the crawl harness for each visit,
//! threaded by reference through the browser → net → script → analysis
//! call chain, and turned into a [`VisitTrace`] when the visit finishes.
//! It is visit-scoped and single-threaded by construction (interior
//! mutability is a `RefCell`, not a lock): cross-thread determinism is
//! the *crawler's* job — it feeds finished traces to the sink in frontier
//! order — so the recorder itself never needs synchronization.
//!
//! Every record method is `#[inline]` and checks the `enabled` flag
//! first: a disabled recorder (the default, when the crawl has no trace
//! sink) costs one predictable branch per record site and never
//! allocates. Event details are built through closures so the formatting
//! work is skipped entirely when disabled.

use std::cell::RefCell;
use std::sync::Arc;

use crate::event::{visit_seed, EventKind, SpanId, TraceEvent, VisitTrace, ROOT_SPAN};
use crate::metrics::MetricsRegistry;

struct Inner {
    events: Vec<TraceEvent>,
    clock: u64,
    next_span: SpanId,
    open: Vec<SpanId>,
}

/// A visit-scoped span/event recorder on a monotonic logical clock.
pub struct VisitRecorder {
    enabled: bool,
    visit_id: u64,
    label: String,
    metrics: Option<Arc<MetricsRegistry>>,
    inner: RefCell<Inner>,
}

impl VisitRecorder {
    /// A recorder that records nothing (the hot-path default). All record
    /// methods reduce to one branch.
    pub fn disabled() -> VisitRecorder {
        VisitRecorder {
            enabled: false,
            visit_id: 0,
            label: String::new(),
            metrics: None,
            inner: RefCell::new(Inner {
                events: Vec::new(),
                clock: 0,
                next_span: 1,
                open: Vec::new(),
            }),
        }
    }

    /// A live recorder for the visit labeled `label` (its URL). The
    /// logical clock starts at 0; the visit id is the deterministic
    /// [`visit_seed`] of the label. `metrics` is the crawl-wide registry
    /// counter/histogram records route to (see the module docs of
    /// [`crate::metrics`] for why they are not per-visit events).
    pub fn new(label: &str, metrics: Option<Arc<MetricsRegistry>>) -> VisitRecorder {
        VisitRecorder {
            enabled: true,
            visit_id: visit_seed(label),
            label: label.to_string(),
            metrics,
            inner: RefCell::new(Inner {
                events: Vec::with_capacity(32),
                clock: 0,
                next_span: 1,
                open: Vec::new(),
            }),
        }
    }

    /// Whether this recorder records anything.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span named `name` under the innermost open span (or the
    /// visit root). Returns the id to pass to [`VisitRecorder::end`].
    /// Disabled recorders return [`ROOT_SPAN`].
    #[inline]
    pub fn begin(&self, name: &'static str) -> SpanId {
        if !self.enabled {
            return ROOT_SPAN;
        }
        let mut inner = self.inner.borrow_mut();
        let id = inner.next_span;
        inner.next_span += 1;
        let parent = inner.open.last().copied().unwrap_or(ROOT_SPAN);
        let tick = inner.clock;
        inner.clock += 1;
        inner.open.push(id);
        inner.events.push(TraceEvent {
            tick,
            kind: EventKind::SpanStart { id, parent, name },
        });
        id
    }

    /// Closes span `id`, attributing `dur_ms` simulated milliseconds to
    /// it. Spans opened after `id` that are still open are closed first
    /// (with zero duration), so the stream always nests properly even on
    /// early-exit error paths.
    #[inline]
    pub fn end(&self, id: SpanId, dur_ms: u64) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        while let Some(open) = inner.open.pop() {
            let tick = inner.clock;
            inner.clock += 1;
            let dur = if open == id { dur_ms } else { 0 };
            inner.events.push(TraceEvent {
                tick,
                kind: EventKind::SpanEnd {
                    id: open,
                    dur_ms: dur,
                },
            });
            if open == id {
                break;
            }
        }
    }

    /// Opens a span and returns a guard that closes it (with zero
    /// duration) on drop — for stages whose duration is structural, not
    /// simulated time.
    #[inline]
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            rec: self,
            id: self.begin(name),
            closed: false,
        }
    }

    /// Records an instant event in the innermost open span. `detail` is
    /// only invoked when the recorder is enabled.
    #[inline]
    pub fn instant(&self, name: &'static str, detail: impl FnOnce() -> String) {
        if !self.enabled {
            return;
        }
        let mut inner = self.inner.borrow_mut();
        let span = inner.open.last().copied().unwrap_or(ROOT_SPAN);
        let tick = inner.clock;
        inner.clock += 1;
        inner.events.push(TraceEvent {
            tick,
            kind: EventKind::Instant {
                span,
                name,
                detail: detail(),
            },
        });
    }

    /// Bumps the crawl-wide counter `name` (no-op when disabled or when
    /// the recorder has no registry).
    #[inline]
    pub fn bump(&self, name: &'static str) {
        if !self.enabled {
            return;
        }
        if let Some(metrics) = &self.metrics {
            metrics.add(name, 1);
        }
    }

    /// Records a sample in the crawl-wide histogram `name`.
    #[inline]
    pub fn observe(&self, name: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        if let Some(metrics) = &self.metrics {
            metrics.observe(name, v);
        }
    }

    /// Finishes the visit: closes any spans still open (zero duration)
    /// and returns the trace. `None` when disabled.
    pub fn finish(self) -> Option<VisitTrace> {
        if !self.enabled {
            return None;
        }
        let mut inner = self.inner.into_inner();
        while let Some(open) = inner.open.pop() {
            let tick = inner.clock;
            inner.clock += 1;
            inner.events.push(TraceEvent {
                tick,
                kind: EventKind::SpanEnd {
                    id: open,
                    dur_ms: 0,
                },
            });
        }
        Some(VisitTrace {
            visit_id: self.visit_id,
            label: self.label,
            events: inner.events,
        })
    }
}

/// RAII guard returned by [`VisitRecorder::span`].
pub struct SpanGuard<'a> {
    rec: &'a VisitRecorder,
    id: SpanId,
    closed: bool,
}

impl SpanGuard<'_> {
    /// Closes the span now, attributing `dur_ms` simulated milliseconds.
    pub fn end(mut self, dur_ms: u64) {
        self.closed = true;
        self.rec.end(self.id, dur_ms);
    }

    /// The span's id (e.g. to close it explicitly later).
    pub fn id(&self) -> SpanId {
        self.id
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if !self.closed {
            self.rec.end(self.id, 0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = VisitRecorder::disabled();
        assert!(!rec.enabled());
        let s = rec.begin("fetch");
        rec.instant("x", || unreachable!("detail must not be built"));
        rec.end(s, 10);
        rec.bump("c");
        assert!(rec.finish().is_none());
    }

    #[test]
    fn spans_nest_and_ticks_increase() {
        let rec = VisitRecorder::new("https://site.com/", None);
        let outer = rec.begin("fetch");
        rec.instant("net.fault", || "latency-spike".into());
        let inner = rec.begin("parse");
        rec.end(inner, 0);
        rec.end(outer, 25);
        let trace = rec.finish().unwrap();
        assert_eq!(trace.visit_id, visit_seed("https://site.com/"));
        let ticks: Vec<u64> = trace.events.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![0, 1, 2, 3, 4]);
        assert!(matches!(
            trace.events[0].kind,
            EventKind::SpanStart {
                id: 1,
                parent: ROOT_SPAN,
                name: "fetch"
            }
        ));
        assert!(matches!(
            trace.events[2].kind,
            EventKind::SpanStart {
                id: 2,
                parent: 1,
                name: "parse"
            }
        ));
        assert!(matches!(
            trace.events[4].kind,
            EventKind::SpanEnd { id: 1, dur_ms: 25 }
        ));
    }

    #[test]
    fn end_closes_abandoned_children_first() {
        let rec = VisitRecorder::new("v", None);
        let outer = rec.begin("execute");
        let _abandoned = rec.begin("parse");
        rec.end(outer, 5);
        let trace = rec.finish().unwrap();
        // parse (id 2) must close before execute (id 1).
        let ends: Vec<(u32, u64)> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SpanEnd { id, dur_ms } => Some((id, dur_ms)),
                _ => None,
            })
            .collect();
        assert_eq!(ends, vec![(2, 0), (1, 5)]);
    }

    #[test]
    fn finish_closes_open_spans() {
        let rec = VisitRecorder::new("v", None);
        rec.begin("fetch");
        rec.begin("parse");
        let trace = rec.finish().unwrap();
        assert_eq!(trace.span_count(), 2);
        let ends = trace
            .events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::SpanEnd { .. }))
            .count();
        assert_eq!(ends, 2, "finish closes everything left open");
    }

    #[test]
    fn guard_closes_on_drop_and_on_end() {
        let rec = VisitRecorder::new("v", None);
        {
            let _g = rec.span("triage");
        }
        rec.span("fetch").end(9);
        let trace = rec.finish().unwrap();
        let ends: Vec<u64> = trace
            .events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::SpanEnd { dur_ms, .. } => Some(dur_ms),
                _ => None,
            })
            .collect();
        assert_eq!(ends, vec![0, 9]);
    }

    #[test]
    fn metrics_route_to_the_registry() {
        let reg = Arc::new(MetricsRegistry::new());
        let rec = VisitRecorder::new("v", Some(Arc::clone(&reg)));
        rec.bump("script.cache.hit");
        rec.bump("script.cache.hit");
        rec.observe("net.latency_ms", 40);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["script.cache.hit"], 2);
        assert_eq!(snap.histograms["net.latency_ms"].count, 1);
        // Counter records never appear in the event stream.
        assert!(rec.finish().unwrap().events.is_empty());
    }
}
