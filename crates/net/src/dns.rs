//! Simulated DNS with CNAME chains.
//!
//! CNAME cloaking (§5.2) works by pointing a first-party subdomain
//! (`metrics.example.com`) at a tracker's host (`collect.tracker.net`)
//! via a CNAME record: URL-based blocklists see the first-party name while
//! traffic actually flows to the tracker. Detecting it requires resolving
//! names and comparing the registrable domains of the query name and the
//! canonical (post-CNAME) name — which is what this module makes possible.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::domain::registrable_domain;

/// A minimal IPv4 address newtype (we don't route packets; addresses only
/// need to be comparable and printable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Ipv4(pub [u8; 4]);

impl std::fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}.{}.{}", self.0[0], self.0[1], self.0[2], self.0[3])
    }
}

/// One DNS record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DnsRecord {
    /// Terminal address record.
    A(Ipv4),
    /// Alias to another name.
    Cname(String),
}

/// Result of a successful resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The name originally queried.
    pub query: String,
    /// The final canonical name (after following CNAMEs).
    pub canonical: String,
    /// The resolved address.
    pub address: Ipv4,
    /// The CNAME chain followed, excluding the query name itself.
    pub chain: Vec<String>,
}

impl Resolution {
    /// Whether the canonical name lives under a different registrable
    /// domain than the query name — the CNAME-cloaking signal.
    pub fn is_cloaked(&self) -> bool {
        match (
            registrable_domain(&self.query),
            registrable_domain(&self.canonical),
        ) {
            (Some(a), Some(b)) => !a.eq_ignore_ascii_case(b),
            _ => false,
        }
    }
}

/// Resolution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// No record for the name. Authoritative and permanent: retrying an
    /// NXDOMAIN never helps.
    NxDomain(String),
    /// CNAME chain exceeded the depth limit or looped.
    ChainTooLong(String),
    /// The authoritative server answered SERVFAIL — a server-side error
    /// that, unlike NXDOMAIN, may clear up on a later attempt.
    ServFail(String),
    /// The resolver got no answer at all before its own deadline.
    Timeout(String),
}

impl DnsError {
    /// Whether a retry could plausibly succeed (SERVFAIL / resolver
    /// timeout, as opposed to the authoritative NXDOMAIN and loop cases).
    pub fn is_transient(&self) -> bool {
        matches!(self, DnsError::ServFail(_) | DnsError::Timeout(_))
    }
}

impl std::fmt::Display for DnsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DnsError::NxDomain(n) => write!(f, "NXDOMAIN: {n}"),
            DnsError::ChainTooLong(n) => write!(f, "CNAME chain too long resolving {n}"),
            DnsError::ServFail(n) => write!(f, "SERVFAIL: {n}"),
            DnsError::Timeout(n) => write!(f, "dns timeout: {n}"),
        }
    }
}

impl std::error::Error for DnsError {}

/// Maximum CNAME chain length, matching common resolver limits.
const MAX_CHAIN: usize = 8;

/// An authoritative zone for the whole simulated Internet.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DnsZone {
    records: BTreeMap<String, DnsRecord>,
}

impl DnsZone {
    /// An empty zone.
    pub fn new() -> DnsZone {
        DnsZone::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the zone has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts an A record (replacing any existing record for the name).
    pub fn insert_a(&mut self, name: &str, addr: Ipv4) {
        self.records
            .insert(name.to_ascii_lowercase(), DnsRecord::A(addr));
    }

    /// Inserts a CNAME record.
    pub fn insert_cname(&mut self, name: &str, target: &str) {
        self.records.insert(
            name.to_ascii_lowercase(),
            DnsRecord::Cname(target.to_ascii_lowercase()),
        );
    }

    /// Derives a deterministic address for a name and registers it —
    /// convenient for bulk site generation.
    pub fn insert_auto(&mut self, name: &str) -> Ipv4 {
        let addr = auto_address(name);
        self.insert_a(name, addr);
        addr
    }

    /// Looks up a single record without following CNAMEs.
    pub fn lookup(&self, name: &str) -> Option<&DnsRecord> {
        self.records.get(&name.to_ascii_lowercase())
    }

    /// Resolves a name, following CNAME chains.
    pub fn resolve(&self, name: &str) -> Result<Resolution, DnsError> {
        let query = name.to_ascii_lowercase();
        let mut current = query.clone();
        let mut chain = Vec::new();
        loop {
            match self.records.get(&current) {
                None => return Err(DnsError::NxDomain(current)),
                Some(DnsRecord::A(addr)) => {
                    return Ok(Resolution {
                        canonical: current,
                        address: *addr,
                        query,
                        chain,
                    })
                }
                Some(DnsRecord::Cname(target)) => {
                    if chain.len() >= MAX_CHAIN || target == &query || chain.contains(target) {
                        return Err(DnsError::ChainTooLong(query));
                    }
                    chain.push(target.clone());
                    current = target.clone();
                }
            }
        }
    }
}

/// A deterministic pseudo-address derived from the name (stable across
/// runs, distinct across names with high probability).
pub fn auto_address(name: &str) -> Ipv4 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.to_ascii_lowercase().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // Avoid reserved first octets 0 and 127 for verisimilitude.
    let o1 = 1 + (h % 126) as u8 + if (h % 126) as u8 + 1 == 127 { 1 } else { 0 };
    Ipv4([o1, (h >> 8) as u8, (h >> 16) as u8, (h >> 24) as u8])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolves_a_record() {
        let mut z = DnsZone::new();
        z.insert_a("example.com", Ipv4([1, 2, 3, 4]));
        let r = z.resolve("EXAMPLE.com").unwrap();
        assert_eq!(r.address, Ipv4([1, 2, 3, 4]));
        assert_eq!(r.canonical, "example.com");
        assert!(r.chain.is_empty());
        assert!(!r.is_cloaked());
    }

    #[test]
    fn follows_cname_chain() {
        let mut z = DnsZone::new();
        z.insert_cname("metrics.example.com", "collect.tracker.net");
        z.insert_cname("collect.tracker.net", "edge.tracker.net");
        z.insert_a("edge.tracker.net", Ipv4([9, 9, 9, 9]));
        let r = z.resolve("metrics.example.com").unwrap();
        assert_eq!(r.canonical, "edge.tracker.net");
        assert_eq!(r.chain.len(), 2);
        assert!(r.is_cloaked(), "cross-site CNAME must be flagged");
    }

    #[test]
    fn same_site_cname_is_not_cloaked() {
        let mut z = DnsZone::new();
        z.insert_cname("www.example.com", "lb.example.com");
        z.insert_a("lb.example.com", Ipv4([4, 4, 4, 4]));
        assert!(!z.resolve("www.example.com").unwrap().is_cloaked());
    }

    #[test]
    fn nxdomain() {
        let z = DnsZone::new();
        assert_eq!(
            z.resolve("missing.example.com"),
            Err(DnsError::NxDomain("missing.example.com".into()))
        );
    }

    #[test]
    fn cname_loop_is_detected() {
        let mut z = DnsZone::new();
        z.insert_cname("a.example.com", "b.example.com");
        z.insert_cname("b.example.com", "a.example.com");
        assert!(matches!(
            z.resolve("a.example.com"),
            Err(DnsError::ChainTooLong(_))
        ));
    }

    #[test]
    fn auto_addresses_are_stable_and_mostly_distinct() {
        assert_eq!(auto_address("example.com"), auto_address("example.com"));
        assert_ne!(auto_address("example.com"), auto_address("example.org"));
        let a = auto_address("example.com");
        assert_ne!(a.0[0], 0);
        assert_ne!(a.0[0], 127);
    }

    #[test]
    fn insert_auto_registers() {
        let mut z = DnsZone::new();
        let addr = z.insert_auto("site.example");
        assert_eq!(z.resolve("site.example").unwrap().address, addr);
    }
}
