//! Registrable-domain (eTLD+1) logic.
//!
//! First-party vs. third-party classification — which drives ad blockers'
//! first-party exceptions (§5.2) — is defined on *registrable domains*,
//! not hostnames: `shop.example.co.uk` and `cdn.example.co.uk` are the
//! same party. We implement a compact public-suffix list covering the
//! suffixes that occur in the synthetic web (a full PSL would add nothing
//! to the reproduction).

/// Multi-label public suffixes known to this implementation. Single-label
/// TLDs (`com`, `ru`, `io`, …) are implicitly public suffixes.
const MULTI_LABEL_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "ac.uk", "gov.uk", "com.au", "net.au", "org.au", "com.br", "com.cn",
    "com.mx", "com.tr", "com.pa", "co.jp", "or.jp", "ne.jp", "co.kr", "co.in", "co.nz", "com.sg",
    "com.ar", "msk.ru", "spb.ru",
];

/// Returns the public suffix of `host` (e.g. `co.uk` for
/// `shop.example.co.uk`, `com` for `example.com`). A bare TLD is its own
/// suffix.
pub fn public_suffix(host: &str) -> &str {
    let host = host.trim_end_matches('.');
    for suffix in MULTI_LABEL_SUFFIXES {
        if host == *suffix {
            return suffix;
        }
        if let Some(prefix) = host.strip_suffix(suffix) {
            if prefix.ends_with('.') {
                return &host[host.len() - suffix.len()..];
            }
        }
    }
    match host.rfind('.') {
        Some(i) => &host[i + 1..],
        None => host,
    }
}

/// Returns the registrable domain (eTLD+1) of `host`, or `None` when the
/// host *is* a public suffix (or empty).
pub fn registrable_domain(host: &str) -> Option<&str> {
    let host = host.trim_end_matches('.');
    if host.is_empty() {
        return None;
    }
    let suffix = public_suffix(host);
    if suffix.len() == host.len() {
        return None; // the host is itself a public suffix
    }
    let prefix = &host[..host.len() - suffix.len() - 1]; // strip ".suffix"
    let label = match prefix.rfind('.') {
        Some(i) => &prefix[i + 1..],
        None => prefix,
    };
    if label.is_empty() {
        return None;
    }
    Some(&host[host.len() - suffix.len() - label.len() - 1..])
}

/// Whether two hosts belong to the same site (same registrable domain).
pub fn same_site(a: &str, b: &str) -> bool {
    match (registrable_domain(a), registrable_domain(b)) {
        (Some(x), Some(y)) => x.eq_ignore_ascii_case(y),
        _ => a.eq_ignore_ascii_case(b),
    }
}

/// Whether `host` is a (proper or improper) subdomain of `parent`:
/// `a.example.com` is a subdomain of `example.com`; a host is a subdomain
/// of itself.
pub fn is_subdomain_of(host: &str, parent: &str) -> bool {
    let host = host.to_ascii_lowercase();
    let parent = parent.to_ascii_lowercase();
    host == parent || host.ends_with(&format!(".{parent}"))
}

/// Whether the host ends in the given TLD label (e.g. `"ru"`).
pub fn has_tld(host: &str, tld: &str) -> bool {
    public_suffix(host) == tld || public_suffix(host).ends_with(&format!(".{tld}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tlds() {
        assert_eq!(registrable_domain("example.com"), Some("example.com"));
        assert_eq!(registrable_domain("www.example.com"), Some("example.com"));
        assert_eq!(registrable_domain("a.b.c.example.com"), Some("example.com"));
    }

    #[test]
    fn multi_label_suffixes() {
        assert_eq!(public_suffix("shop.example.co.uk"), "co.uk");
        assert_eq!(
            registrable_domain("shop.example.co.uk"),
            Some("example.co.uk")
        );
        assert_eq!(registrable_domain("betus.com.pa"), Some("betus.com.pa"));
        assert_eq!(registrable_domain("www.betus.com.pa"), Some("betus.com.pa"));
    }

    #[test]
    fn bare_suffix_has_no_registrable_domain() {
        assert_eq!(registrable_domain("com"), None);
        assert_eq!(registrable_domain("co.uk"), None);
        assert_eq!(registrable_domain(""), None);
    }

    #[test]
    fn single_label_host() {
        assert_eq!(registrable_domain("localhost"), None);
        assert_eq!(public_suffix("localhost"), "localhost");
    }

    #[test]
    fn same_site_classification() {
        assert!(same_site("a.example.com", "b.example.com"));
        assert!(same_site("example.com", "www.example.com"));
        assert!(!same_site("example.com", "example.org"));
        assert!(!same_site("a.example.co.uk", "a.other.co.uk"));
        // Single-label hosts fall back to exact comparison.
        assert!(same_site("localhost", "localhost"));
        assert!(!same_site("localhost", "otherhost"));
    }

    #[test]
    fn subdomain_relation() {
        assert!(is_subdomain_of("cdn.example.com", "example.com"));
        assert!(is_subdomain_of("example.com", "example.com"));
        assert!(!is_subdomain_of("badexample.com", "example.com"));
        assert!(!is_subdomain_of("example.com", "cdn.example.com"));
    }

    #[test]
    fn tld_check() {
        assert!(has_tld("mail.ru", "ru"));
        assert!(has_tld("site.msk.ru", "ru"));
        assert!(!has_tld("example.com", "ru"));
    }

    #[test]
    fn trailing_dot_is_ignored() {
        assert_eq!(registrable_domain("example.com."), Some("example.com"));
    }
}
