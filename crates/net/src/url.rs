//! URL parsing and serialization.
//!
//! Implements the subset of the WHATWG URL model the measurement pipeline
//! needs: absolute `http`/`https` URLs with host, optional port, path and
//! query. The blocklist engine, party classification, CDN detection, and
//! script-pattern attribution all operate on these components.

use serde::{Deserialize, Serialize};

/// A parsed absolute URL.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Url {
    /// Scheme, lowercased (`http` or `https`).
    pub scheme: String,
    /// Host, lowercased. Never empty.
    pub host: String,
    /// Explicit port if present.
    pub port: Option<u16>,
    /// Path, always beginning with `/`.
    pub path: String,
    /// Query string without the leading `?`, if present.
    pub query: Option<String>,
}

/// Error from [`Url::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UrlParseError {
    /// The offending input.
    pub input: String,
    /// What was wrong.
    pub reason: &'static str,
}

impl std::fmt::Display for UrlParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid URL {:?}: {}", self.input, self.reason)
    }
}

impl std::error::Error for UrlParseError {}

impl Url {
    /// Parses an absolute http(s) URL.
    pub fn parse(input: &str) -> Result<Url, UrlParseError> {
        let err = |reason| UrlParseError {
            input: input.to_string(),
            reason,
        };
        let trimmed = input.trim();
        let (scheme, rest) = trimmed
            .split_once("://")
            .ok_or_else(|| err("missing scheme"))?;
        let scheme = scheme.to_ascii_lowercase();
        if scheme != "http" && scheme != "https" {
            return Err(err("unsupported scheme"));
        }
        // Split authority from path/query.
        let (authority, path_query) = match rest.find(['/', '?']) {
            Some(i) if rest.as_bytes()[i] == b'/' => (&rest[..i], &rest[i..]),
            Some(i) => (&rest[..i], &rest[i..]),
            None => (rest, ""),
        };
        if authority.is_empty() {
            return Err(err("empty host"));
        }
        // Userinfo is not supported; reject rather than mis-parse.
        if authority.contains('@') {
            return Err(err("userinfo not supported"));
        }
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) => {
                let port: u16 = p.parse().map_err(|_| err("invalid port"))?;
                (h, Some(port))
            }
            None => (authority, None),
        };
        if host.is_empty() {
            return Err(err("empty host"));
        }
        let host = host.to_ascii_lowercase();
        if !host
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '.' || c == '-' || c == '_')
        {
            return Err(err("invalid host character"));
        }
        let (path, query) = match path_query.split_once('?') {
            Some((p, q)) => (p, Some(q.to_string())),
            None => (path_query, None),
        };
        let path = if path.is_empty() {
            "/".to_string()
        } else if path.starts_with('/') {
            path.to_string()
        } else {
            format!("/{path}")
        };
        Ok(Url {
            scheme,
            host,
            port,
            path,
            query,
        })
    }

    /// Convenience constructor for tests and generators.
    pub fn https(host: &str, path: &str) -> Url {
        Url {
            scheme: "https".into(),
            host: host.to_ascii_lowercase(),
            port: None,
            path: if path.starts_with('/') {
                path.to_string()
            } else {
                format!("/{path}")
            },
            query: None,
        }
    }

    /// The origin string, e.g. `https://example.com`.
    pub fn origin(&self) -> String {
        match self.port {
            Some(p) => format!("{}://{}:{}", self.scheme, self.host, p),
            None => format!("{}://{}", self.scheme, self.host),
        }
    }

    /// Path plus query, as matched by blocklist rules.
    pub fn path_and_query(&self) -> String {
        match &self.query {
            Some(q) => format!("{}?{}", self.path, q),
            None => self.path.clone(),
        }
    }

    /// Filename component of the path (`/a/b/app.js` → `app.js`).
    pub fn filename(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or("")
    }
}

impl std::fmt::Display for Url {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.origin(), self.path_and_query())
    }
}

impl std::str::FromStr for Url {
    type Err = UrlParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_url() {
        let u = Url::parse("https://Example.COM/a/b.js?x=1").unwrap();
        assert_eq!(u.scheme, "https");
        assert_eq!(u.host, "example.com");
        assert_eq!(u.path, "/a/b.js");
        assert_eq!(u.query.as_deref(), Some("x=1"));
        assert_eq!(u.port, None);
    }

    #[test]
    fn parses_port() {
        let u = Url::parse("http://localhost:8080/").unwrap();
        assert_eq!(u.port, Some(8080));
        assert_eq!(u.origin(), "http://localhost:8080");
    }

    #[test]
    fn missing_path_becomes_root() {
        let u = Url::parse("https://example.com").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.to_string(), "https://example.com/");
    }

    #[test]
    fn query_without_path() {
        let u = Url::parse("https://example.com?q=1").unwrap();
        assert_eq!(u.path, "/");
        assert_eq!(u.query.as_deref(), Some("q=1"));
    }

    #[test]
    fn rejects_bad_urls() {
        for bad in [
            "",
            "example.com",
            "ftp://example.com/",
            "https:///path",
            "https://user@example.com/",
            "https://exa mple.com/",
            "https://example.com:notaport/",
        ] {
            assert!(Url::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn display_roundtrips() {
        for s in [
            "https://example.com/",
            "https://example.com/a/b.js?x=1&y=2",
            "http://sub.example.co.uk:8080/path",
        ] {
            let u = Url::parse(s).unwrap();
            assert_eq!(u.to_string(), s);
            assert_eq!(Url::parse(&u.to_string()).unwrap(), u);
        }
    }

    #[test]
    fn filename_extraction() {
        assert_eq!(Url::https("a.com", "/x/y/app.js").filename(), "app.js");
        assert_eq!(Url::https("a.com", "/").filename(), "");
    }

    #[cfg(test)]
    mod props {
        // The proptest stub swallows test bodies; imports look unused.
        #![allow(unused_imports)]
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn parse_display_roundtrip(
                host in "[a-z][a-z0-9-]{0,10}(\\.[a-z]{2,5}){1,2}",
                path in "(/[a-z0-9._-]{1,8}){0,3}",
            ) {
                let s = format!("https://{host}{path}");
                let u = Url::parse(&s).unwrap();
                let re = Url::parse(&u.to_string()).unwrap();
                prop_assert_eq!(u, re);
            }
        }
    }
}
