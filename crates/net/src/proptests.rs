//! Property tests for the network substrate.

#![cfg(test)]
// The proptest stub expands test bodies to nothing, so strategy
// helpers and imports look unused to rustc.
#![allow(unused_imports, dead_code)]

use proptest::prelude::*;

use crate::dns::{auto_address, DnsZone};
use crate::domain::{is_subdomain_of, public_suffix, registrable_domain, same_site};
use crate::url::Url;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// URL parsing never panics on arbitrary printable input.
    #[test]
    fn url_parse_is_total(s in "[ -~]{0,80}") {
        let _ = Url::parse(&s);
    }

    /// The registrable domain, when present, is a suffix of the host and
    /// contains the public suffix.
    #[test]
    fn registrable_domain_is_a_suffix(host in "([a-z]{1,8}\\.){0,3}[a-z]{2,6}") {
        if let Some(rd) = registrable_domain(&host) {
            prop_assert!(host.ends_with(rd));
            let ps = public_suffix(&host);
            prop_assert!(rd.ends_with(ps));
            prop_assert!(rd.len() > ps.len());
        }
    }

    /// registrable_domain is idempotent: applying it to its own output is
    /// the identity.
    #[test]
    fn registrable_domain_idempotent(host in "([a-z]{1,8}\\.){0,3}[a-z]{2,6}") {
        if let Some(rd) = registrable_domain(&host) {
            prop_assert_eq!(registrable_domain(rd), Some(rd));
        }
    }

    /// same_site is reflexive and symmetric.
    #[test]
    fn same_site_is_an_equivalence_fragment(
        a in "([a-z]{1,6}\\.){1,2}[a-z]{2,4}",
        b in "([a-z]{1,6}\\.){1,2}[a-z]{2,4}",
    ) {
        prop_assert!(same_site(&a, &a));
        prop_assert_eq!(same_site(&a, &b), same_site(&b, &a));
    }

    /// A label prepended to any host is a subdomain of it and same-site
    /// with it (when the host has a registrable domain).
    #[test]
    fn prepended_label_is_subdomain(
        label in "[a-z]{1,6}",
        host in "[a-z]{1,8}\\.(com|org|net|ru|co\\.uk)",
    ) {
        let sub = format!("{label}.{host}");
        prop_assert!(is_subdomain_of(&sub, &host));
        prop_assert!(!is_subdomain_of(&host, &sub));
        prop_assert!(same_site(&sub, &host));
    }

    /// Auto addresses are deterministic and avoid reserved first octets.
    #[test]
    fn auto_addresses_are_stable(name in "[a-z0-9.-]{1,24}") {
        let a = auto_address(&name);
        prop_assert_eq!(a, auto_address(&name));
        prop_assert!(a.0[0] != 0 && a.0[0] != 127);
    }

    /// Any acyclic CNAME chain up to the depth limit resolves to the
    /// terminal A record.
    #[test]
    fn cname_chains_resolve(depth in 0usize..8) {
        let mut zone = DnsZone::new();
        for i in 0..depth {
            zone.insert_cname(&format!("n{i}.example"), &format!("n{}.example", i + 1));
        }
        let addr = zone.insert_auto(&format!("n{depth}.example"));
        let res = zone.resolve("n0.example").unwrap();
        prop_assert_eq!(res.address, addr);
        prop_assert_eq!(res.chain.len(), depth);
    }
}
