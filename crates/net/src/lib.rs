//! # canvassing-net
//!
//! The simulated network substrate for the *Canvassing the Fingerprinters*
//! reproduction: URLs, registrable domains, DNS with CNAME chains, and an
//! HTTP fetch model with deterministic fault injection.
//!
//! The paper's evasion analysis (§5.2) is fundamentally about *where
//! scripts are served from*: first-party bundling, subdomain routing,
//! CNAME cloaking, and CDN fronting all change the relationship between a
//! script's URL and the organization that operates it. This crate
//! implements the naming and fetching machinery those analyses run on:
//!
//! * [`url::Url`] — absolute http(s) URL parsing;
//! * [`domain`] — public-suffix / registrable-domain logic (eTLD+1);
//! * [`dns::DnsZone`] — CNAME-chain resolution with cloaking detection;
//! * [`http::Network`] — hosted resources, fetch semantics, party
//!   classification, the Appendix A.5 CDN list, and fault injection.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod dns;
pub mod domain;
pub mod http;
#[cfg(test)]
mod proptests;
pub mod url;

pub use dns::{DnsError, DnsRecord, DnsZone, Ipv4, Resolution};
pub use http::{
    classify_party, is_popular_cdn, latency_ms, Fault, FaultMatrix, FaultPlan, FetchError, Network,
    PageResource, Party, Resource, ResourceType, Response, ScriptRef, ScriptResource, POPULAR_CDNS,
};
pub use url::{Url, UrlParseError};
