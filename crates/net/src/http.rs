//! The HTTP fetch model: hosted resources, requests, responses, party
//! classification, CDN detection, and fault injection.
//!
//! This is not a packet-level stack — the study needs request/response
//! semantics (who serves which script from which origin), not TCP. Pages
//! and scripts are resources registered against `(host, path)` keys;
//! fetching resolves the host through [`crate::dns::DnsZone`], applies the
//! fault plan, and returns the resource together with the DNS resolution
//! (so callers can detect CNAME cloaking).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::dns::{DnsError, DnsZone, Resolution};
use crate::domain::{is_subdomain_of, same_site};
use crate::url::Url;

/// Resource types, mirroring the blocklist `$` option vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceType {
    /// Top-level HTML document.
    Document,
    /// JavaScript (canvascript) resource.
    Script,
    /// Image resource.
    Image,
    /// Anything else.
    Other,
}

impl ResourceType {
    /// Canonical lowercase name (as used in filter options).
    pub fn as_str(&self) -> &'static str {
        match self {
            ResourceType::Document => "document",
            ResourceType::Script => "script",
            ResourceType::Image => "image",
            ResourceType::Other => "other",
        }
    }
}

/// How a page references one script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptRef {
    /// External script loaded from a URL (`<script src=...>`).
    External(Url),
    /// Script bundled inline into the page's own first-party JavaScript.
    /// Carries the source directly; its "URL" for instrumentation purposes
    /// is the page URL itself (this is the first-party bundling evasion).
    Inline {
        /// The bundled source text.
        source: String,
        /// Label for provenance bookkeeping (e.g. vendor name); opaque to
        /// the network layer.
        label: String,
    },
}

/// A hosted page (HTML document).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PageResource {
    /// Scripts the page loads, in order.
    pub scripts: Vec<ScriptRef>,
    /// Whether a consent banner gates script execution until accepted.
    pub consent_banner: bool,
    /// Whether the site blocks clients that fail bot detection.
    pub bot_check: bool,
}

/// A hosted script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptResource {
    /// canvascript source text.
    pub source: String,
    /// Provenance label (vendor name or `"benign:*"`), opaque here.
    pub label: String,
}

/// Any hosted resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Resource {
    /// An HTML document.
    Page(PageResource),
    /// A script.
    Script(ScriptResource),
}

/// A fetch response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The resource served.
    pub resource: Resource,
    /// DNS resolution used to reach the server.
    pub resolution: Resolution,
    /// Deterministic latency estimate in milliseconds (used for
    /// instrumentation timestamps).
    pub latency_ms: u64,
}

/// Fetch failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchError {
    /// DNS failed.
    Dns(DnsError),
    /// Host resolved but nothing is registered at the path.
    NotFound(Url),
    /// The host is marked unreachable by the fault plan.
    Unreachable(String),
    /// The request was blocked by a client-side extension (set by the
    /// browser layer, surfaced through the same error type for uniform
    /// handling).
    Blocked(Url),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Dns(e) => write!(f, "dns error: {e}"),
            FetchError::NotFound(u) => write!(f, "404: {u}"),
            FetchError::Unreachable(h) => write!(f, "unreachable host: {h}"),
            FetchError::Blocked(u) => write!(f, "blocked by extension: {u}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// Deterministic fault injection, in the spirit of the smoltcp examples'
/// `--drop-chance`: failures are planned, not random, so crawls are
/// reproducible.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Hosts that refuse every connection (site down / timeout).
    pub unreachable_hosts: BTreeSet<String>,
}

impl FaultPlan {
    /// Marks a host unreachable.
    pub fn take_down(&mut self, host: &str) {
        self.unreachable_hosts.insert(host.to_ascii_lowercase());
    }

    /// Whether a host is down.
    pub fn is_down(&self, host: &str) -> bool {
        self.unreachable_hosts.contains(&host.to_ascii_lowercase())
    }
}

/// The simulated network: DNS zone plus hosted resources.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    /// The global DNS zone.
    pub dns: DnsZone,
    /// Hosted resources keyed by `(host, path)`.
    resources: BTreeMap<(String, String), Resource>,
    /// Planned faults.
    pub faults: FaultPlan,
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Number of hosted resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Hosts a resource, auto-registering an A record for the host if the
    /// DNS zone doesn't know it yet.
    pub fn host(&mut self, url: &Url, resource: Resource) {
        if self.dns.lookup(&url.host).is_none() {
            self.dns.insert_auto(&url.host);
        }
        self.resources
            .insert((url.host.clone(), url.path.clone()), resource);
    }

    /// Looks up a hosted resource without going through fetch semantics.
    pub fn peek(&self, url: &Url) -> Option<&Resource> {
        // The canonical host may differ from the URL host under CNAME
        // cloaking: content is registered under the canonical name.
        if let Some(r) = self.resources.get(&(url.host.clone(), url.path.clone())) {
            return Some(r);
        }
        let resolution = self.dns.resolve(&url.host).ok()?;
        self.resources
            .get(&(resolution.canonical, url.path.clone()))
    }

    /// Fetches a URL: resolves DNS, applies the fault plan, and returns
    /// the resource. Content registered under a CNAME target is reachable
    /// through the aliasing name (that's the point of cloaking).
    pub fn fetch(&self, url: &Url) -> Result<Response, FetchError> {
        if self.faults.is_down(&url.host) {
            return Err(FetchError::Unreachable(url.host.clone()));
        }
        let resolution = self.dns.resolve(&url.host).map_err(FetchError::Dns)?;
        if self.faults.is_down(&resolution.canonical) {
            return Err(FetchError::Unreachable(resolution.canonical.clone()));
        }
        let resource = self
            .resources
            .get(&(url.host.clone(), url.path.clone()))
            .or_else(|| {
                self.resources
                    .get(&(resolution.canonical.clone(), url.path.clone()))
            })
            .ok_or_else(|| FetchError::NotFound(url.clone()))?;
        Ok(Response {
            resource: resource.clone(),
            latency_ms: latency_ms(&url.host),
            resolution,
        })
    }

    /// Iterates over all hosted `(host, path)` keys (deterministic order).
    pub fn resource_keys(&self) -> impl Iterator<Item = (&str, &str)> {
        self.resources
            .iter()
            .map(|((h, p), _)| (h.as_str(), p.as_str()))
    }
}

/// Party classification of a resource URL relative to a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Party {
    /// Same registrable domain as the page.
    FirstParty,
    /// Same registrable domain, but served from a subdomain of the page
    /// host (the "subdomain routing" evasion is a special case of
    /// first-party serving that the paper reports separately).
    FirstPartySubdomain,
    /// Different registrable domain.
    ThirdParty,
}

/// Classifies `resource` relative to a page at `page`.
pub fn classify_party(page: &Url, resource: &Url) -> Party {
    if same_site(&page.host, &resource.host) {
        if resource.host != page.host && is_subdomain_of(&resource.host, &page.host) {
            Party::FirstPartySubdomain
        } else {
            Party::FirstParty
        }
    } else {
        Party::ThirdParty
    }
}

/// The popular-CDN domains from Appendix A.5 of the paper. Scripts served
/// from these are rarely blocked because the domains host vast amounts of
/// legitimate content.
pub const POPULAR_CDNS: &[&str] = &[
    "cloudflare.com",
    "cloudfront.net",
    "fastly.net",
    "gstatic.com",
    "googleusercontent.com",
    "googleapis.com",
    "akamai.net",
    "azureedge.net",
    "b-cdn.net",
    "bootstrapcdn.com",
    "cdn.jsdelivr.net",
    "cdnjs.cloudflare.com",
];

/// Whether a host is (a subdomain of) a popular CDN from Appendix A.5.
pub fn is_popular_cdn(host: &str) -> bool {
    POPULAR_CDNS
        .iter()
        .any(|cdn| is_subdomain_of(host, cdn))
}

/// Deterministic per-host latency in milliseconds (5–80 ms), derived from
/// a hash of the host name. Gives instrumentation realistic-looking,
/// reproducible timestamps.
pub fn latency_ms(host: &str) -> u64 {
    let mut h: u64 = 0x9e3779b97f4a7c15;
    for b in host.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    5 + h % 76
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_at(host: &str) -> Url {
        Url::https(host, "/")
    }

    #[test]
    fn host_and_fetch_roundtrip() {
        let mut net = Network::new();
        let url = Url::https("example.com", "/app.js");
        net.host(
            &url,
            Resource::Script(ScriptResource {
                source: "let x = 1;".into(),
                label: "test".into(),
            }),
        );
        let resp = net.fetch(&url).unwrap();
        match resp.resource {
            Resource::Script(s) => assert_eq!(s.label, "test"),
            _ => panic!("wrong resource type"),
        }
        assert!(resp.latency_ms >= 5);
    }

    #[test]
    fn fetch_missing_path_is_404() {
        let mut net = Network::new();
        net.host(
            &Url::https("example.com", "/"),
            Resource::Page(PageResource::default()),
        );
        let err = net.fetch(&Url::https("example.com", "/nope.js")).unwrap_err();
        assert!(matches!(err, FetchError::NotFound(_)));
    }

    #[test]
    fn fetch_unknown_host_is_dns_error() {
        let net = Network::new();
        let err = net.fetch(&Url::https("ghost.example", "/")).unwrap_err();
        assert!(matches!(err, FetchError::Dns(DnsError::NxDomain(_))));
    }

    #[test]
    fn fault_plan_takes_host_down() {
        let mut net = Network::new();
        let url = Url::https("example.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        net.faults.take_down("example.com");
        assert!(matches!(
            net.fetch(&url).unwrap_err(),
            FetchError::Unreachable(_)
        ));
    }

    #[test]
    fn cname_cloaked_content_is_reachable_via_alias() {
        let mut net = Network::new();
        // Tracker hosts the script under its canonical name.
        let canonical = Url::https("edge.tracker.net", "/fp.js");
        net.host(
            &canonical,
            Resource::Script(ScriptResource {
                source: "fp()".into(),
                label: "tracker".into(),
            }),
        );
        // Site aliases metrics.example.com -> edge.tracker.net.
        net.dns
            .insert_cname("metrics.example.com", "edge.tracker.net");
        let via_alias = Url::https("metrics.example.com", "/fp.js");
        let resp = net.fetch(&via_alias).unwrap();
        assert!(resp.resolution.is_cloaked());
        assert!(matches!(resp.resource, Resource::Script(_)));
    }

    #[test]
    fn party_classification() {
        let page = page_at("www.example.com");
        assert_eq!(
            classify_party(&page, &Url::https("www.example.com", "/a.js")),
            Party::FirstParty
        );
        assert_eq!(
            classify_party(&page, &Url::https("fp.www.example.com", "/a.js")),
            Party::FirstPartySubdomain
        );
        // Same registrable domain but not a subdomain of the page host:
        // still first-party for blocklist purposes.
        assert_eq!(
            classify_party(&page, &Url::https("cdn.example.com", "/a.js")),
            Party::FirstParty
        );
        assert_eq!(
            classify_party(&page, &Url::https("tracker.net", "/a.js")),
            Party::ThirdParty
        );
    }

    #[test]
    fn cdn_detection() {
        assert!(is_popular_cdn("d123.cloudfront.net"));
        assert!(is_popular_cdn("fonts.googleapis.com"));
        assert!(is_popular_cdn("cloudflare.com"));
        assert!(!is_popular_cdn("example.com"));
        assert!(!is_popular_cdn("notcloudfront.net"));
    }

    #[test]
    fn latency_is_deterministic_and_bounded() {
        assert_eq!(latency_ms("example.com"), latency_ms("example.com"));
        for host in ["a.com", "b.com", "c.org"] {
            let l = latency_ms(host);
            assert!((5..=80).contains(&l));
        }
    }
}
