//! The HTTP fetch model: hosted resources, requests, responses, party
//! classification, CDN detection, and fault injection.
//!
//! This is not a packet-level stack — the study needs request/response
//! semantics (who serves which script from which origin), not TCP. Pages
//! and scripts are resources registered against `(host, path)` keys;
//! fetching resolves the host through [`crate::dns::DnsZone`], applies the
//! fault plan, and returns the resource together with the DNS resolution
//! (so callers can detect CNAME cloaking).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::dns::{DnsError, DnsZone, Resolution};
use crate::domain::{is_subdomain_of, same_site};
use crate::url::Url;

/// Resource types, mirroring the blocklist `$` option vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResourceType {
    /// Top-level HTML document.
    Document,
    /// JavaScript (canvascript) resource.
    Script,
    /// Image resource.
    Image,
    /// Anything else.
    Other,
}

impl ResourceType {
    /// Canonical lowercase name (as used in filter options).
    pub fn as_str(&self) -> &'static str {
        match self {
            ResourceType::Document => "document",
            ResourceType::Script => "script",
            ResourceType::Image => "image",
            ResourceType::Other => "other",
        }
    }
}

/// How a page references one script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptRef {
    /// External script loaded from a URL (`<script src=...>`).
    External(Url),
    /// Script bundled inline into the page's own first-party JavaScript.
    /// Carries the source directly; its "URL" for instrumentation purposes
    /// is the page URL itself (this is the first-party bundling evasion).
    Inline {
        /// The bundled source text.
        source: String,
        /// Label for provenance bookkeeping (e.g. vendor name); opaque to
        /// the network layer.
        label: String,
    },
}

/// A hosted page (HTML document).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PageResource {
    /// Scripts the page loads, in order.
    pub scripts: Vec<ScriptRef>,
    /// Whether a consent banner gates script execution until accepted.
    pub consent_banner: bool,
    /// Whether the site blocks clients that fail bot detection.
    pub bot_check: bool,
}

/// A hosted script.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptResource {
    /// canvascript source text.
    pub source: String,
    /// Provenance label (vendor name or `"benign:*"`), opaque here.
    pub label: String,
}

/// Any hosted resource.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Resource {
    /// An HTML document.
    Page(PageResource),
    /// A script.
    Script(ScriptResource),
}

/// A fetch response.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The resource served.
    pub resource: Resource,
    /// DNS resolution used to reach the server.
    pub resolution: Resolution,
    /// Deterministic latency estimate in milliseconds (used for
    /// instrumentation timestamps). Includes any injected latency spike.
    pub latency_ms: u64,
    /// Whether the body was cut off mid-transfer by a [`Fault::TruncateBody`]
    /// plan entry (script sources arrive corrupted).
    pub truncated: bool,
}

/// Fetch failure.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchError {
    /// DNS failed.
    Dns(DnsError),
    /// Host resolved but nothing is registered at the path.
    NotFound(Url),
    /// The host is marked unreachable by the fault plan.
    Unreachable(String),
    /// The connection failed this attempt but a retry may succeed (the
    /// planned-transient counterpart of [`FetchError::Unreachable`]).
    Transient(String),
    /// The response body was cut off mid-transfer and the document is
    /// unusable.
    Truncated(Url),
    /// The request was blocked by a client-side extension (set by the
    /// browser layer, surfaced through the same error type for uniform
    /// handling).
    Blocked(Url),
}

impl FetchError {
    /// Whether a retry of the same request could plausibly succeed.
    pub fn is_transient(&self) -> bool {
        match self {
            FetchError::Transient(_) => true,
            FetchError::Dns(e) => e.is_transient(),
            _ => false,
        }
    }

    /// Short stable kind label (no URL/host detail), for typed error
    /// responses and metrics that must be byte-identical across runs.
    pub fn kind_label(&self) -> &'static str {
        match self {
            FetchError::Dns(_) => "dns",
            FetchError::NotFound(_) => "not-found",
            FetchError::Unreachable(_) => "unreachable",
            FetchError::Transient(_) => "transient",
            FetchError::Truncated(_) => "truncated",
            FetchError::Blocked(_) => "blocked",
        }
    }
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Dns(e) => write!(f, "dns error: {e}"),
            FetchError::NotFound(u) => write!(f, "404: {u}"),
            FetchError::Unreachable(h) => write!(f, "unreachable host: {h}"),
            FetchError::Transient(h) => write!(f, "transient connection failure: {h}"),
            FetchError::Truncated(u) => write!(f, "truncated response body: {u}"),
            FetchError::Blocked(u) => write!(f, "blocked by extension: {u}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// One planned fault kind for a host. Every kind is a pure function of the
/// plan and the attempt number — two crawls over the same plan observe the
/// same failures in the same places.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fault {
    /// Refuses every connection, forever (the classic dead host).
    Unreachable,
    /// The connection fails for the first `failures` attempts, then
    /// succeeds — models flaky peering / overloaded origins.
    TransientConnect {
        /// Number of leading attempts that fail.
        failures: u32,
    },
    /// DNS answers SERVFAIL for the first `failures` attempts, then
    /// resolves — a transient resolver-side fault, distinct from NXDOMAIN.
    DnsServFail {
        /// Number of leading attempts that fail.
        failures: u32,
    },
    /// DNS never answers (resolver timeout); permanent.
    DnsTimeout,
    /// Responses arrive `extra_ms` late — enough to blow a visit deadline
    /// when the spike exceeds it.
    LatencySpike {
        /// Extra latency added to every response from the host.
        extra_ms: u64,
    },
    /// Bodies from this host are cut off mid-transfer: documents become
    /// unusable, script sources arrive corrupted.
    TruncateBody,
    /// Chaos hook: fetching from this host panics, modeling a crashing
    /// worker. Exists so harness panic isolation can be tested end to end.
    Panic,
    /// Responses arrive `extra_ms` late for the first `attempts` attempts,
    /// then settle to normal latency — a congestion transient. Unlike
    /// [`Fault::LatencySpike`] this heals, so it exercises the
    /// retry-timeouts path (a deadline blown on attempt 0 succeeds on a
    /// retry).
    SlowStart {
        /// Extra latency added while `attempt < attempts`.
        extra_ms: u64,
        /// Number of leading slow attempts.
        attempts: u32,
    },
    /// No network effect at all: the fault fires in the *persistence*
    /// layer. A checkpoint writer consulted about a record whose site host
    /// carries this fault tears the write mid-record (a partial line with
    /// no checksum), modeling a crash between `write` and `fsync`.
    TornWrite,
}

impl Fault {
    /// Short stable name for reports and labels.
    pub fn name(&self) -> &'static str {
        match self {
            Fault::Unreachable => "unreachable",
            Fault::TransientConnect { .. } => "transient-connect",
            Fault::DnsServFail { .. } => "dns-servfail",
            Fault::DnsTimeout => "dns-timeout",
            Fault::LatencySpike { .. } => "latency-spike",
            Fault::TruncateBody => "truncate-body",
            Fault::Panic => "panic",
            Fault::SlowStart { .. } => "slow-start",
            Fault::TornWrite => "torn-write",
        }
    }
}

/// Deterministic fault injection, in the spirit of the smoltcp examples'
/// `--drop-chance`: failures are planned, not random, so crawls are
/// reproducible.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Per-host fault schedule. The single source of truth: dead hosts are
    /// ordinary [`Fault::Unreachable`] entries, so `len`, iteration, and
    /// `fault_for` can never disagree about what is planned.
    pub host_faults: BTreeMap<String, Fault>,
}

impl FaultPlan {
    /// Marks a host unreachable (shorthand for injecting
    /// [`Fault::Unreachable`]).
    pub fn take_down(&mut self, host: &str) {
        self.inject(host, Fault::Unreachable);
    }

    /// Whether a host is down (planned [`Fault::Unreachable`]).
    pub fn is_down(&self, host: &str) -> bool {
        self.fault_for(host) == Some(Fault::Unreachable)
    }

    /// Schedules a fault for a host (replacing any previous entry).
    pub fn inject(&mut self, host: &str, fault: Fault) {
        self.host_faults.insert(host.to_ascii_lowercase(), fault);
    }

    /// The fault planned for a host, if any.
    pub fn fault_for(&self, host: &str) -> Option<Fault> {
        self.host_faults.get(&host.to_ascii_lowercase()).copied()
    }

    /// Number of hosts with any planned fault.
    pub fn len(&self) -> usize {
        self.host_faults.len()
    }

    /// Whether no faults are planned.
    pub fn is_empty(&self) -> bool {
        self.host_faults.is_empty()
    }
}

/// A seeded fault matrix: assigns every host a fault kind derived from
/// `hash(seed, host)`, cycling through the whole kind inventory. Used by
/// robustness tests and the `fault_lab` example to sweep all failure modes
/// over a frontier without any randomness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMatrix {
    /// Seed mixed into every host hash.
    pub seed: u64,
}

impl FaultMatrix {
    /// A matrix over the given seed.
    pub fn new(seed: u64) -> FaultMatrix {
        FaultMatrix { seed }
    }

    /// The fault this matrix assigns to a host (pure; same seed + host →
    /// same fault).
    pub fn fault_for_host(&self, host: &str) -> Fault {
        let mut h = self.seed ^ 0xcbf29ce484222325;
        for b in host.to_ascii_lowercase().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        match h % 9 {
            0 => Fault::Unreachable,
            1 => Fault::TransientConnect {
                failures: 1 + ((h >> 8) % 3) as u32,
            },
            2 => Fault::DnsServFail {
                failures: 1 + ((h >> 8) % 2) as u32,
            },
            3 => Fault::DnsTimeout,
            4 => Fault::LatencySpike {
                extra_ms: 45_000 + (h >> 8) % 15_000,
            },
            5 => Fault::TruncateBody,
            6 => Fault::Panic,
            7 => Fault::SlowStart {
                extra_ms: 45_000 + (h >> 8) % 15_000,
                attempts: 1 + ((h >> 8) % 2) as u32,
            },
            _ => Fault::TornWrite,
        }
    }

    /// Injects a fault for every listed host into the plan.
    pub fn inject_all<'a>(&self, plan: &mut FaultPlan, hosts: impl IntoIterator<Item = &'a str>) {
        for host in hosts {
            plan.inject(host, self.fault_for_host(host));
        }
    }
}

/// The simulated network: DNS zone plus hosted resources.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Network {
    /// The global DNS zone.
    pub dns: DnsZone,
    /// Hosted resources keyed by `(host, path)`.
    resources: BTreeMap<(String, String), Resource>,
    /// Planned faults.
    pub faults: FaultPlan,
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network::default()
    }

    /// Number of hosted resources.
    pub fn resource_count(&self) -> usize {
        self.resources.len()
    }

    /// Hosts a resource, auto-registering an A record for the host if the
    /// DNS zone doesn't know it yet.
    pub fn host(&mut self, url: &Url, resource: Resource) {
        if self.dns.lookup(&url.host).is_none() {
            self.dns.insert_auto(&url.host);
        }
        self.resources
            .insert((url.host.clone(), url.path.clone()), resource);
    }

    /// Looks up a hosted resource without going through fetch semantics.
    pub fn peek(&self, url: &Url) -> Option<&Resource> {
        // The canonical host may differ from the URL host under CNAME
        // cloaking: content is registered under the canonical name.
        if let Some(r) = self.resources.get(&(url.host.clone(), url.path.clone())) {
            return Some(r);
        }
        let resolution = self.dns.resolve(&url.host).ok()?;
        self.resources
            .get(&(resolution.canonical, url.path.clone()))
    }

    /// Fetches a URL: resolves DNS, applies the fault plan, and returns
    /// the resource. Content registered under a CNAME target is reachable
    /// through the aliasing name (that's the point of cloaking).
    ///
    /// Equivalent to [`Network::fetch_attempt`] with `attempt = 0`, so
    /// attempt-counted transient faults fire on a plain `fetch`.
    pub fn fetch(&self, url: &Url) -> Result<Response, FetchError> {
        self.fetch_attempt(url, 0)
    }

    /// Fetches a URL on a given (zero-based) retry attempt. The attempt
    /// number is threaded explicitly instead of being tracked in interior
    /// state so the network stays pure: a crawl record is a function of
    /// `(url, config, network)` regardless of worker interleaving.
    pub fn fetch_attempt(&self, url: &Url, attempt: u32) -> Result<Response, FetchError> {
        let fault = self.faults.fault_for(&url.host);
        match fault {
            Some(Fault::Unreachable) => {
                return Err(FetchError::Unreachable(url.host.clone()));
            }
            Some(Fault::TransientConnect { failures }) if attempt < failures => {
                return Err(FetchError::Transient(url.host.clone()));
            }
            Some(Fault::DnsServFail { failures }) if attempt < failures => {
                return Err(FetchError::Dns(DnsError::ServFail(url.host.clone())));
            }
            Some(Fault::DnsTimeout) => {
                return Err(FetchError::Dns(DnsError::Timeout(url.host.clone())));
            }
            Some(Fault::Panic) => {
                panic!("injected fault: panic fetching {url}");
            }
            _ => {}
        }
        let resolution = self.dns.resolve(&url.host).map_err(FetchError::Dns)?;
        if resolution.canonical != url.host {
            match self.faults.fault_for(&resolution.canonical) {
                Some(Fault::Unreachable) => {
                    return Err(FetchError::Unreachable(resolution.canonical.clone()));
                }
                Some(Fault::TransientConnect { failures }) if attempt < failures => {
                    return Err(FetchError::Transient(resolution.canonical.clone()));
                }
                _ => {}
            }
        }
        let resource = self
            .resources
            .get(&(url.host.clone(), url.path.clone()))
            .or_else(|| {
                self.resources
                    .get(&(resolution.canonical.clone(), url.path.clone()))
            })
            .ok_or_else(|| FetchError::NotFound(url.clone()))?;
        let mut latency = latency_ms(&url.host);
        let mut truncated = false;
        match fault {
            Some(Fault::LatencySpike { extra_ms }) => latency += extra_ms,
            Some(Fault::SlowStart { extra_ms, attempts }) if attempt < attempts => {
                latency += extra_ms;
            }
            Some(Fault::TruncateBody) => match resource {
                // A cut-off document is unusable; a cut-off script arrives,
                // but corrupted (the interpreter sees a parse error).
                Resource::Page(_) => return Err(FetchError::Truncated(url.clone())),
                Resource::Script(_) => truncated = true,
            },
            _ => {}
        }
        let mut resource = resource.clone();
        if truncated {
            if let Resource::Script(s) = &mut resource {
                let mut cut = s.source.len() / 2;
                while cut > 0 && !s.source.is_char_boundary(cut) {
                    cut -= 1;
                }
                s.source.truncate(cut);
            }
        }
        Ok(Response {
            resource,
            latency_ms: latency,
            resolution,
            truncated,
        })
    }

    /// Answers "what would [`Network::fetch_attempt`] do?" without doing
    /// it: no resource clone, no body work, and — crucially — no panic
    /// ([`Fault::Panic`] surfaces as an [`FetchError::Unreachable`]-shaped
    /// failure, since a probe only cares that the host kills visits).
    ///
    /// Returns the simulated response latency on success. Used by the
    /// breaker planner to walk the frontier and charge per-host failures
    /// in frontier order, so breaker state is a pure function of
    /// `(network, frontier, policy)` rather than of the worker schedule.
    pub fn probe(&self, url: &Url, attempt: u32) -> Result<u64, FetchError> {
        let fault = self.faults.fault_for(&url.host);
        match fault {
            Some(Fault::Unreachable) => {
                return Err(FetchError::Unreachable(url.host.clone()));
            }
            Some(Fault::TransientConnect { failures }) if attempt < failures => {
                return Err(FetchError::Transient(url.host.clone()));
            }
            Some(Fault::DnsServFail { failures }) if attempt < failures => {
                return Err(FetchError::Dns(DnsError::ServFail(url.host.clone())));
            }
            Some(Fault::DnsTimeout) => {
                return Err(FetchError::Dns(DnsError::Timeout(url.host.clone())));
            }
            Some(Fault::Panic) => {
                // The real fetch panics; for planning purposes the host is
                // simply lethal.
                return Err(FetchError::Unreachable(url.host.clone()));
            }
            _ => {}
        }
        let resolution = self.dns.resolve(&url.host).map_err(FetchError::Dns)?;
        if resolution.canonical != url.host {
            match self.faults.fault_for(&resolution.canonical) {
                Some(Fault::Unreachable) => {
                    return Err(FetchError::Unreachable(resolution.canonical.clone()));
                }
                Some(Fault::TransientConnect { failures }) if attempt < failures => {
                    return Err(FetchError::Transient(resolution.canonical.clone()));
                }
                _ => {}
            }
        }
        let resource = self
            .resources
            .get(&(url.host.clone(), url.path.clone()))
            .or_else(|| {
                self.resources
                    .get(&(resolution.canonical.clone(), url.path.clone()))
            })
            .ok_or_else(|| FetchError::NotFound(url.clone()))?;
        let mut latency = latency_ms(&url.host);
        match fault {
            Some(Fault::LatencySpike { extra_ms }) => latency += extra_ms,
            Some(Fault::SlowStart { extra_ms, attempts }) if attempt < attempts => {
                latency += extra_ms;
            }
            Some(Fault::TruncateBody) => {
                // A cut-off document kills the visit; a cut-off script
                // still arrives.
                if matches!(resource, Resource::Page(_)) {
                    return Err(FetchError::Truncated(url.clone()));
                }
            }
            _ => {}
        }
        Ok(latency)
    }

    /// [`Network::fetch_attempt`] wrapped in a `"fetch"` trace span.
    ///
    /// The span's duration is the response's simulated latency (zero on
    /// failure — a refused connection costs no modeled transfer time);
    /// any planned fault for the host surfaces as a `net.fault` instant
    /// and failures as a `net.error` instant, so a visit timeline shows
    /// *why* a fetch failed, not just that it did. Crawl-wide tallies
    /// (`net.fetches`, `net.errors`, the `net.latency_ms` histogram) go
    /// to the recorder's metrics registry, keeping per-visit streams
    /// schedule-independent.
    pub fn fetch_traced(
        &self,
        url: &Url,
        attempt: u32,
        rec: &canvassing_trace::VisitRecorder,
    ) -> Result<Response, FetchError> {
        if !rec.enabled() {
            return self.fetch_attempt(url, attempt);
        }
        let span = rec.span("fetch");
        rec.instant("net.request", || format!("{url} (attempt {attempt})"));
        if let Some(fault) = self.faults.fault_for(&url.host) {
            rec.instant("net.fault", || fault.name().to_string());
        }
        rec.bump("net.fetches");
        let result = self.fetch_attempt(url, attempt);
        match &result {
            Ok(resp) => {
                rec.observe("net.latency_ms", resp.latency_ms);
                if resp.truncated {
                    rec.instant("net.truncated", String::new);
                }
                span.end(resp.latency_ms);
            }
            Err(err) => {
                rec.bump("net.errors");
                rec.instant("net.error", || err.to_string());
                span.end(0);
            }
        }
        result
    }

    /// Iterates over all hosted `(host, path)` keys (deterministic order).
    pub fn resource_keys(&self) -> impl Iterator<Item = (&str, &str)> {
        self.resources
            .iter()
            .map(|((h, p), _)| (h.as_str(), p.as_str()))
    }
}

/// Party classification of a resource URL relative to a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Party {
    /// Same registrable domain as the page.
    FirstParty,
    /// Same registrable domain, but served from a subdomain of the page
    /// host (the "subdomain routing" evasion is a special case of
    /// first-party serving that the paper reports separately).
    FirstPartySubdomain,
    /// Different registrable domain.
    ThirdParty,
}

/// Classifies `resource` relative to a page at `page`.
pub fn classify_party(page: &Url, resource: &Url) -> Party {
    if same_site(&page.host, &resource.host) {
        if resource.host != page.host && is_subdomain_of(&resource.host, &page.host) {
            Party::FirstPartySubdomain
        } else {
            Party::FirstParty
        }
    } else {
        Party::ThirdParty
    }
}

/// The popular-CDN domains from Appendix A.5 of the paper. Scripts served
/// from these are rarely blocked because the domains host vast amounts of
/// legitimate content.
pub const POPULAR_CDNS: &[&str] = &[
    "cloudflare.com",
    "cloudfront.net",
    "fastly.net",
    "gstatic.com",
    "googleusercontent.com",
    "googleapis.com",
    "akamai.net",
    "azureedge.net",
    "b-cdn.net",
    "bootstrapcdn.com",
    "cdn.jsdelivr.net",
    "cdnjs.cloudflare.com",
];

/// Whether a host is (a subdomain of) a popular CDN from Appendix A.5.
pub fn is_popular_cdn(host: &str) -> bool {
    POPULAR_CDNS.iter().any(|cdn| is_subdomain_of(host, cdn))
}

/// Deterministic per-host latency in milliseconds (5–80 ms), derived from
/// a hash of the host name. Gives instrumentation realistic-looking,
/// reproducible timestamps.
pub fn latency_ms(host: &str) -> u64 {
    let mut h: u64 = 0x9e3779b97f4a7c15;
    for b in host.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    5 + h % 76
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::*;

    fn page_at(host: &str) -> Url {
        Url::https(host, "/")
    }

    #[test]
    fn host_and_fetch_roundtrip() {
        let mut net = Network::new();
        let url = Url::https("example.com", "/app.js");
        net.host(
            &url,
            Resource::Script(ScriptResource {
                source: "let x = 1;".into(),
                label: "test".into(),
            }),
        );
        let resp = net.fetch(&url).unwrap();
        match resp.resource {
            Resource::Script(s) => assert_eq!(s.label, "test"),
            _ => panic!("wrong resource type"),
        }
        assert!(resp.latency_ms >= 5);
    }

    #[test]
    fn fetch_missing_path_is_404() {
        let mut net = Network::new();
        net.host(
            &Url::https("example.com", "/"),
            Resource::Page(PageResource::default()),
        );
        let err = net
            .fetch(&Url::https("example.com", "/nope.js"))
            .unwrap_err();
        assert!(matches!(err, FetchError::NotFound(_)));
    }

    #[test]
    fn fetch_unknown_host_is_dns_error() {
        let net = Network::new();
        let err = net.fetch(&Url::https("ghost.example", "/")).unwrap_err();
        assert!(matches!(err, FetchError::Dns(DnsError::NxDomain(_))));
    }

    #[test]
    fn fault_plan_takes_host_down() {
        let mut net = Network::new();
        let url = Url::https("example.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        net.faults.take_down("example.com");
        assert!(matches!(
            net.fetch(&url).unwrap_err(),
            FetchError::Unreachable(_)
        ));
    }

    #[test]
    fn transient_connect_fails_then_succeeds() {
        let mut net = Network::new();
        let url = Url::https("flaky.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        net.faults
            .inject("flaky.com", Fault::TransientConnect { failures: 2 });
        for attempt in 0..2 {
            let err = net.fetch_attempt(&url, attempt).unwrap_err();
            assert!(matches!(err, FetchError::Transient(_)));
            assert!(err.is_transient());
        }
        assert!(net.fetch_attempt(&url, 2).is_ok());
        // A plain fetch is attempt 0 and observes the fault.
        assert!(net.fetch(&url).is_err());
    }

    #[test]
    fn dns_servfail_is_transient_and_distinct_from_nxdomain() {
        let mut net = Network::new();
        let url = Url::https("lame.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        net.faults
            .inject("lame.com", Fault::DnsServFail { failures: 1 });
        let err = net.fetch_attempt(&url, 0).unwrap_err();
        assert!(matches!(err, FetchError::Dns(DnsError::ServFail(_))));
        assert!(err.is_transient());
        assert!(net.fetch_attempt(&url, 1).is_ok());
    }

    #[test]
    fn dns_timeout_is_permanent() {
        let mut net = Network::new();
        let url = Url::https("tarpit.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        net.faults.inject("tarpit.com", Fault::DnsTimeout);
        for attempt in 0..4 {
            let err = net.fetch_attempt(&url, attempt).unwrap_err();
            assert!(matches!(err, FetchError::Dns(DnsError::Timeout(_))));
        }
    }

    #[test]
    fn latency_spike_inflates_response_latency() {
        let mut net = Network::new();
        let url = Url::https("slow.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        let base = net.fetch(&url).unwrap().latency_ms;
        net.faults
            .inject("slow.com", Fault::LatencySpike { extra_ms: 60_000 });
        let spiked = net.fetch(&url).unwrap().latency_ms;
        assert_eq!(spiked, base + 60_000);
    }

    #[test]
    fn truncate_body_corrupts_scripts_and_kills_pages() {
        let mut net = Network::new();
        let page = Url::https("cut.com", "/");
        let script = Url::https("cut.com", "/fp.js");
        net.host(&page, Resource::Page(PageResource::default()));
        net.host(
            &script,
            Resource::Script(ScriptResource {
                source: "let canvas = make_canvas();".into(),
                label: "t".into(),
            }),
        );
        net.faults.inject("cut.com", Fault::TruncateBody);
        assert!(matches!(
            net.fetch(&page).unwrap_err(),
            FetchError::Truncated(_)
        ));
        let resp = net.fetch(&script).unwrap();
        assert!(resp.truncated);
        match resp.resource {
            Resource::Script(s) => assert!(s.source.len() < "let canvas = make_canvas();".len()),
            _ => panic!("wrong resource type"),
        }
    }

    #[test]
    #[should_panic(expected = "injected fault")]
    fn panic_fault_panics() {
        let mut net = Network::new();
        let url = Url::https("boom.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        net.faults.inject("boom.com", Fault::Panic);
        let _ = net.fetch(&url);
    }

    #[test]
    fn fault_matrix_is_deterministic_and_covers_all_kinds() {
        let m = FaultMatrix::new(7);
        let hosts: Vec<String> = (0..200).map(|i| format!("site{i}.com")).collect();
        let mut seen = BTreeSet::new();
        for h in &hosts {
            assert_eq!(m.fault_for_host(h), m.fault_for_host(h));
            seen.insert(m.fault_for_host(h).name());
        }
        assert_eq!(seen.len(), 9, "200 hosts must hit every fault kind");
        // Different seed shuffles the assignment.
        let other = FaultMatrix::new(8);
        assert!(hosts
            .iter()
            .any(|h| m.fault_for_host(h) != other.fault_for_host(h)));
        // inject_all wires the plan.
        let mut plan = FaultPlan::default();
        m.inject_all(&mut plan, hosts.iter().map(|h| h.as_str()));
        assert_eq!(plan.len(), hosts.len());
        assert_eq!(
            plan.fault_for("site0.com"),
            Some(m.fault_for_host("site0.com"))
        );
    }

    #[test]
    fn fault_plan_roundtrips_through_json() {
        let mut plan = FaultPlan::default();
        plan.take_down("dead.com");
        plan.inject("flaky.com", Fault::TransientConnect { failures: 2 });
        plan.inject("slow.com", Fault::LatencySpike { extra_ms: 50_000 });
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back.fault_for("dead.com"), Some(Fault::Unreachable));
        assert_eq!(
            back.fault_for("flaky.com"),
            Some(Fault::TransientConnect { failures: 2 })
        );
        assert_eq!(back.len(), 3);
        assert!(!back.is_empty());
    }

    #[test]
    fn fault_plan_has_one_source_of_truth() {
        // take_down and inject land in the same map: len can never drift
        // from what fault_for answers, and re-planning a dead host as
        // something else fully replaces the entry.
        let mut plan = FaultPlan::default();
        plan.take_down("host.com");
        assert!(plan.is_down("host.com"));
        assert_eq!(plan.len(), 1);
        plan.inject("host.com", Fault::TruncateBody);
        assert!(!plan.is_down("host.com"));
        assert_eq!(plan.fault_for("HOST.com"), Some(Fault::TruncateBody));
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn slow_start_heals_after_planned_attempts() {
        let mut net = Network::new();
        let url = Url::https("congested.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        let base = net.fetch(&url).unwrap().latency_ms;
        net.faults.inject(
            "congested.com",
            Fault::SlowStart {
                extra_ms: 60_000,
                attempts: 2,
            },
        );
        assert_eq!(
            net.fetch_attempt(&url, 0).unwrap().latency_ms,
            base + 60_000
        );
        assert_eq!(
            net.fetch_attempt(&url, 1).unwrap().latency_ms,
            base + 60_000
        );
        assert_eq!(net.fetch_attempt(&url, 2).unwrap().latency_ms, base);
    }

    #[test]
    fn torn_write_has_no_network_effect() {
        let mut net = Network::new();
        let url = Url::https("torn.com", "/");
        net.host(&url, Resource::Page(PageResource::default()));
        net.faults.inject("torn.com", Fault::TornWrite);
        assert!(net.fetch(&url).is_ok(), "torn-write is a persistence fault");
    }

    #[test]
    fn probe_agrees_with_fetch_without_side_effects() {
        let mut net = Network::new();
        let ok = Url::https("up.com", "/");
        let dead = Url::https("down.com", "/");
        let boom = Url::https("boom.com", "/");
        let cut_page = Url::https("cut.com", "/");
        let cut_script = Url::https("cut.com", "/a.js");
        for u in [&ok, &dead, &boom, &cut_page] {
            net.host(u, Resource::Page(PageResource::default()));
        }
        net.host(
            &cut_script,
            Resource::Script(ScriptResource {
                source: "let x = 1;".into(),
                label: "t".into(),
            }),
        );
        net.faults.take_down("down.com");
        net.faults.inject("boom.com", Fault::Panic);
        net.faults.inject("cut.com", Fault::TruncateBody);

        let latency = net.probe(&ok, 0).unwrap();
        assert_eq!(latency, net.fetch(&ok).unwrap().latency_ms);
        assert!(matches!(
            net.probe(&dead, 0).unwrap_err(),
            FetchError::Unreachable(_)
        ));
        // Panic hosts probe as plain failures — planning must not crash.
        assert!(net.probe(&boom, 0).is_err());
        assert!(matches!(
            net.probe(&cut_page, 0).unwrap_err(),
            FetchError::Truncated(_)
        ));
        assert!(net.probe(&cut_script, 0).is_ok());
        assert!(matches!(
            net.probe(&Url::https("up.com", "/nope"), 0).unwrap_err(),
            FetchError::NotFound(_)
        ));
    }

    #[test]
    fn cname_cloaked_content_is_reachable_via_alias() {
        let mut net = Network::new();
        // Tracker hosts the script under its canonical name.
        let canonical = Url::https("edge.tracker.net", "/fp.js");
        net.host(
            &canonical,
            Resource::Script(ScriptResource {
                source: "fp()".into(),
                label: "tracker".into(),
            }),
        );
        // Site aliases metrics.example.com -> edge.tracker.net.
        net.dns
            .insert_cname("metrics.example.com", "edge.tracker.net");
        let via_alias = Url::https("metrics.example.com", "/fp.js");
        let resp = net.fetch(&via_alias).unwrap();
        assert!(resp.resolution.is_cloaked());
        assert!(matches!(resp.resource, Resource::Script(_)));
    }

    #[test]
    fn party_classification() {
        let page = page_at("www.example.com");
        assert_eq!(
            classify_party(&page, &Url::https("www.example.com", "/a.js")),
            Party::FirstParty
        );
        assert_eq!(
            classify_party(&page, &Url::https("fp.www.example.com", "/a.js")),
            Party::FirstPartySubdomain
        );
        // Same registrable domain but not a subdomain of the page host:
        // still first-party for blocklist purposes.
        assert_eq!(
            classify_party(&page, &Url::https("cdn.example.com", "/a.js")),
            Party::FirstParty
        );
        assert_eq!(
            classify_party(&page, &Url::https("tracker.net", "/a.js")),
            Party::ThirdParty
        );
    }

    #[test]
    fn cdn_detection() {
        assert!(is_popular_cdn("d123.cloudfront.net"));
        assert!(is_popular_cdn("fonts.googleapis.com"));
        assert!(is_popular_cdn("cloudflare.com"));
        assert!(!is_popular_cdn("example.com"));
        assert!(!is_popular_cdn("notcloudfront.net"));
    }

    #[test]
    fn fetch_traced_records_span_fault_and_error() {
        use canvassing_trace::{EventKind, MetricsRegistry, VisitRecorder};
        let mut net = Network::new();
        let ok = Url::https("up.com", "/");
        let down = Url::https("down.com", "/");
        net.host(&ok, Resource::Page(PageResource::default()));
        net.host(&down, Resource::Page(PageResource::default()));
        net.faults.take_down("down.com");

        let reg = std::sync::Arc::new(MetricsRegistry::new());
        let rec = VisitRecorder::new("https://up.com/", Some(std::sync::Arc::clone(&reg)));
        let resp = net.fetch_traced(&ok, 0, &rec).unwrap();
        net.fetch_traced(&down, 0, &rec).unwrap_err();
        let trace = rec.finish().unwrap();

        let names = canvassing_trace::span_names(&trace);
        assert!(names.contains("fetch"));
        let instants: Vec<&str> = trace
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Instant { name, .. } => Some(*name),
                _ => None,
            })
            .collect();
        assert!(instants.contains(&"net.request"));
        assert!(instants.contains(&"net.fault"));
        assert!(instants.contains(&"net.error"));
        // The success span carries the simulated latency.
        assert!(trace.events.iter().any(|e| matches!(
            e.kind,
            EventKind::SpanEnd { dur_ms, .. } if dur_ms == resp.latency_ms
        )));

        let snap = reg.snapshot();
        assert_eq!(snap.counters["net.fetches"], 2);
        assert_eq!(snap.counters["net.errors"], 1);
        assert_eq!(snap.histograms["net.latency_ms"].count, 1);

        // Disabled recorders fall straight through to fetch_attempt.
        let off = VisitRecorder::disabled();
        assert!(net.fetch_traced(&ok, 0, &off).is_ok());
    }

    #[test]
    fn latency_is_deterministic_and_bounded() {
        assert_eq!(latency_ms("example.com"), latency_ms("example.com"));
        for host in ["a.com", "b.com", "c.org"] {
            let l = latency_ms(host);
            assert!((5..=80).contains(&l));
        }
    }
}
