//! Once-per-unique-script analysis cache.
//!
//! The crawler triages every script *before* execution, but a crawl sees
//! the same dozen vendor bodies on thousands of sites. Like
//! [`ScriptCache`], the [`AnalysisCache`] keys results by the FNV-1a
//! content hash, verifies the full source on lookup (a 64-bit collision
//! degrades to a second entry, never to the wrong verdict), and computes
//! under the shard lock so concurrent requests for the same body block
//! rather than analyzing twice — which is what makes
//! [`AnalysisStats::analyses`] equal the number of unique script bodies,
//! deterministically, across worker counts and schedules.
//!
//! When a shared [`ScriptCache`] is available the analysis reuses its
//! compiled [`Program`](canvassing_script::Program) handle instead of
//! parsing a second time, so triage costs zero extra parses (the one
//! counted parse is the same one execution later hits on).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use canvassing_script::{source_hash, ScriptCache};

use crate::{classify, classify_source, Finding, RuleId, ScriptAnalysis, Verdict};

/// Shard count; mirrors `ScriptCache`'s sizing rationale.
const SHARDS: usize = 16;

/// One cached analysis: verified source plus the shared result.
struct CacheEntry {
    source: String,
    analysis: Arc<ScriptAnalysis>,
}

/// Cumulative analysis counters (deterministic; see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Full analyses run (== unique script bodies seen).
    pub analyses: u64,
}

impl AnalysisStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.analyses
    }
}

/// A sharded, `Arc`-shareable static-analysis cache.
pub struct AnalysisCache {
    shards: Vec<Mutex<HashMap<u64, Vec<CacheEntry>>>>,
    hits: AtomicU64,
    analyses: AtomicU64,
}

impl Default for AnalysisCache {
    fn default() -> AnalysisCache {
        AnalysisCache::new()
    }
}

impl AnalysisCache {
    /// Creates an empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            analyses: AtomicU64::new(0),
        }
    }

    /// Returns `(content_hash, analysis)` for `src`, running the analysis
    /// only if this exact body has never been seen by this cache.
    ///
    /// `programs` is the crawl's shared compile cache, when one is
    /// enabled: the AST is taken from it by shared handle (parsing it
    /// there on first sight, where the parse is counted once for both
    /// triage and execution). Without one, the body is parsed privately —
    /// the analysis stays available even when script caching is disabled,
    /// so enabling caches never changes what the crawler records.
    pub fn analyze(&self, src: &str, programs: Option<&ScriptCache>) -> (u64, Arc<ScriptAnalysis>) {
        self.lookup(src, programs).0
    }

    /// [`AnalysisCache::analyze`] wrapped in a `"triage"` trace span with a
    /// `"parse"` child (the program-resolution stage) and a `"verdict"`
    /// instant carrying the verdict label.
    ///
    /// The span structure is identical whether the lookup hits or
    /// analyzes: a verdict is a pure function of the source, but *which*
    /// visit pays the analysis is a scheduling accident, so hit/analyze
    /// attribution goes only to the crawl-wide `analysis.cache.hit` /
    /// `analysis.analyses` counters and per-visit streams stay
    /// schedule-independent.
    pub fn analyze_traced(
        &self,
        src: &str,
        programs: Option<&ScriptCache>,
        rec: &canvassing_trace::VisitRecorder,
    ) -> (u64, Arc<ScriptAnalysis>) {
        if !rec.enabled() {
            return self.analyze(src, programs);
        }
        let span = rec.span("triage");
        let parse = rec.span("parse");
        let ((hash, analysis), was_analysis) = self.lookup(src, programs);
        parse.end(0);
        rec.bump(if was_analysis {
            "analysis.analyses"
        } else {
            "analysis.cache.hit"
        });
        rec.instant("verdict", || analysis.verdict.label().to_string());
        span.end(0);
        (hash, analysis)
    }

    /// The shared lookup path: `(result, was_analysis)`.
    fn lookup(
        &self,
        src: &str,
        programs: Option<&ScriptCache>,
    ) -> ((u64, Arc<ScriptAnalysis>), bool) {
        let hash = source_hash(src);
        let shard = &self.shards[(hash as usize) % SHARDS];
        let mut map = shard.lock().unwrap_or_else(|poison| poison.into_inner());
        let bucket = map.entry(hash).or_default();
        if let Some(entry) = bucket.iter().find(|e| e.source == src) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return ((hash, Arc::clone(&entry.analysis)), false);
        }
        self.analyses.fetch_add(1, Ordering::Relaxed);
        let analysis = Arc::new(match programs {
            Some(cache) => match cache.get_or_parse(src) {
                Ok(program) => classify(&program),
                Err(e) => ScriptAnalysis {
                    verdict: Verdict::Inconclusive,
                    features: crate::CanvasFeatures::default(),
                    findings: vec![Finding {
                        rule: RuleId::IncParse,
                        detail: format!("parse failed: {e}"),
                    }],
                },
            },
            None => classify_source(src),
        });
        bucket.push(CacheEntry {
            source: src.to_string(),
            analysis: Arc::clone(&analysis),
        });
        ((hash, analysis), true)
    }

    /// Number of distinct script bodies currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            hits: self.hits.load(Ordering::Relaxed),
            analyses: self.analyses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: &str = r#"
        let c = document.createElement("canvas");
        let x = c.getContext("2d");
        x.fillText("cache me", 2, 2);
        c.toDataURL();
    "#;

    #[test]
    fn identical_bodies_analyze_once() {
        let cache = AnalysisCache::new();
        let (h1, a) = cache.analyze(FP, None);
        let (h2, b) = cache.analyze(FP, None);
        assert_eq!(h1, h2);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        let stats = cache.stats();
        assert_eq!(stats.analyses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(cache.len(), 1);
        assert!(a.verdict.is_fingerprinting());
    }

    #[test]
    fn reuses_compiled_ast_from_script_cache() {
        let programs = ScriptCache::new();
        let cache = AnalysisCache::new();
        cache.analyze(FP, Some(&programs));
        let parses_after_analysis = programs.stats().parses;
        assert_eq!(parses_after_analysis, 1, "analysis performs the one parse");
        // Execution-path lookup now hits the same entry: no second parse.
        programs.get_or_parse(FP).unwrap();
        assert_eq!(programs.stats().parses, 1);
        assert_eq!(programs.stats().hits, 1);
        // And a second analysis of the same body touches neither cache's
        // slow path.
        cache.analyze(FP, Some(&programs));
        assert_eq!(cache.stats().analyses, 1);
        assert_eq!(programs.stats().parses, 1);
    }

    #[test]
    fn parse_failures_are_inconclusive_and_cached() {
        let cache = AnalysisCache::new();
        let bad = "let = ;";
        let (_, a) = cache.analyze(bad, None);
        assert_eq!(a.verdict, Verdict::Inconclusive);
        assert!(a.findings.iter().any(|f| f.rule == RuleId::IncParse));
        let (_, b) = cache.analyze(bad, None);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().analyses, 1);
    }

    #[test]
    fn traced_analysis_spans_are_hit_miss_invariant() {
        use canvassing_trace::{span_names, EventKind, MetricsRegistry, VisitRecorder};
        let cache = AnalysisCache::new();
        let reg = Arc::new(MetricsRegistry::new());

        let trace_of = |rec: VisitRecorder| {
            cache.analyze_traced(FP, None, &rec);
            rec.finish()
                .unwrap_or_else(|| unreachable!("enabled recorder"))
        };
        let cold = trace_of(VisitRecorder::new("v", Some(Arc::clone(&reg))));
        let warm = trace_of(VisitRecorder::new("v", Some(Arc::clone(&reg))));
        // The event stream is identical whether the analysis ran or hit.
        assert_eq!(cold.events, warm.events);
        let names = span_names(&cold);
        assert!(names.contains("triage"));
        assert!(names.contains("parse"));
        let verdicts: Vec<&String> = cold
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Instant { name, detail, .. } if *name == "verdict" => Some(detail),
                _ => None,
            })
            .collect();
        assert_eq!(verdicts, vec!["fingerprinting+exfil"]);
        // Attribution lives in the shared counters.
        let snap = reg.snapshot();
        assert_eq!(snap.counters["analysis.analyses"], 1);
        assert_eq!(snap.counters["analysis.cache.hit"], 1);
    }

    #[test]
    fn concurrent_lookups_of_one_body_analyze_once() {
        let cache = Arc::new(AnalysisCache::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for _ in 0..25 {
                        cache.analyze(FP, None);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.analyses, 1);
        assert_eq!(stats.hits, 8 * 25 - 1);
    }
}
