//! Once-per-unique-script analysis cache.
//!
//! The crawler triages every script *before* execution, but a crawl sees
//! the same dozen vendor bodies on thousands of sites. Like
//! [`ScriptCache`], the [`AnalysisCache`] keys results by the FNV-1a
//! content hash, verifies the full source on lookup (a 64-bit collision
//! degrades to a second entry, never to the wrong verdict), and computes
//! under the shard lock so concurrent requests for the same body block
//! rather than analyzing twice — which is what makes
//! [`AnalysisStats::analyses`] equal the number of unique script bodies,
//! deterministically, across worker counts and schedules.
//!
//! When a shared [`ScriptCache`] is available the analysis reuses its
//! compiled [`Program`](canvassing_script::Program) handle instead of
//! parsing a second time, so triage costs zero extra parses (the one
//! counted parse is the same one execution later hits on).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use canvassing_script::{source_hash, ScriptCache};

use crate::{classify_merged, classify_source_merged, Finding, RuleId, ScriptAnalysis, Verdict};

/// Shard count; mirrors `ScriptCache`'s sizing rationale. Public because
/// epoch-based invalidation (the serving daemon's hot blocklist reload)
/// targets individual shards and needs to compute shard membership
/// externally via [`shard_of`].
pub const SHARD_COUNT: usize = 16;

/// The shard a content hash lives in.
pub fn shard_of(hash: u64) -> usize {
    (hash as usize) % SHARD_COUNT
}

/// One cached analysis: verified source plus the shared result, tagged
/// with the rule epoch it was computed under. An entry is *valid* only
/// while its epoch is at or above its shard's invalidation floor; stale
/// entries are recomputed in place on the next full lookup (lazy,
/// Durey-style incremental re-classification) and invisible to
/// [`AnalysisCache::peek`].
struct CacheEntry {
    source: String,
    epoch: u64,
    analysis: Arc<ScriptAnalysis>,
}

/// Cumulative analysis counters (deterministic; see module docs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Full analyses run (== unique script bodies seen).
    pub analyses: u64,
}

impl AnalysisStats {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.analyses
    }
}

/// Epoch/invalidation counters, separate from [`AnalysisStats`] so the
/// crawl-facing counters keep their "analyses == unique bodies" contract
/// untouched when no reloads happen.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochCacheStats {
    /// Shard floors raised by [`AnalysisCache::invalidate_shards`]
    /// (counted per shard whose floor actually rose).
    pub invalidated_shards: u64,
    /// Stale entries recomputed in place by a full lookup.
    pub stale_refreshes: u64,
    /// [`AnalysisCache::peek`] calls.
    pub peeks: u64,
    /// Peeks answered with a valid entry.
    pub peek_hits: u64,
}

/// A sharded, `Arc`-shareable static-analysis cache.
pub struct AnalysisCache {
    shards: Vec<Mutex<HashMap<u64, Vec<CacheEntry>>>>,
    /// Per-shard epoch floors: entries below the floor are stale.
    floors: Vec<AtomicU64>,
    hits: AtomicU64,
    analyses: AtomicU64,
    invalidated_shards: AtomicU64,
    stale_refreshes: AtomicU64,
    peeks: AtomicU64,
    peek_hits: AtomicU64,
}

impl Default for AnalysisCache {
    fn default() -> AnalysisCache {
        AnalysisCache::new()
    }
}

impl AnalysisCache {
    /// Creates an empty cache.
    pub fn new() -> AnalysisCache {
        AnalysisCache {
            shards: (0..SHARD_COUNT)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            floors: (0..SHARD_COUNT).map(|_| AtomicU64::new(0)).collect(),
            hits: AtomicU64::new(0),
            analyses: AtomicU64::new(0),
            invalidated_shards: AtomicU64::new(0),
            stale_refreshes: AtomicU64::new(0),
            peeks: AtomicU64::new(0),
            peek_hits: AtomicU64::new(0),
        }
    }

    /// Returns `(content_hash, analysis)` for `src`, running the analysis
    /// only if this exact body has never been seen by this cache.
    ///
    /// `programs` is the crawl's shared compile cache, when one is
    /// enabled: the AST is taken from it by shared handle (parsing it
    /// there on first sight, where the parse is counted once for both
    /// triage and execution). Without one, the body is parsed privately —
    /// the analysis stays available even when script caching is disabled,
    /// so enabling caches never changes what the crawler records.
    pub fn analyze(&self, src: &str, programs: Option<&ScriptCache>) -> (u64, Arc<ScriptAnalysis>) {
        self.lookup(src, programs, 0).0
    }

    /// [`AnalysisCache::analyze`] under an explicit rule epoch. A cached
    /// entry answers only while its epoch is at or above its shard's
    /// invalidation floor; a stale entry is recomputed under `epoch` in
    /// place (counted as both an analysis and a stale refresh). With no
    /// invalidations (all floors zero) this is exactly `analyze`.
    pub fn analyze_at(
        &self,
        src: &str,
        programs: Option<&ScriptCache>,
        epoch: u64,
    ) -> (u64, Arc<ScriptAnalysis>) {
        self.lookup(src, programs, epoch).0
    }

    /// A pure cache probe: the analysis for `src` if a *valid* (source
    /// verified, epoch at or above the shard floor) entry exists. Never
    /// analyzes, never mutates entries, never touches the hit/analysis
    /// counters — this is the cache-only serving tier's lookup, counted
    /// separately in [`EpochCacheStats`].
    pub fn peek(&self, src: &str) -> Option<Arc<ScriptAnalysis>> {
        self.peeks.fetch_add(1, Ordering::Relaxed);
        let hash = source_hash(src);
        let shard = shard_of(hash);
        let floor = self.floors[shard].load(Ordering::Relaxed);
        let map = self.shards[shard]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let found = map.get(&hash).and_then(|bucket| {
            bucket
                .iter()
                .find(|e| e.source == src && e.epoch >= floor)
                .map(|e| Arc::clone(&e.analysis))
        });
        if found.is_some() {
            self.peek_hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Raises the invalidation floor of the given shards to `floor`
    /// (floors only rise — a lower value than the current floor is a
    /// no-op). Entries below the floor become invisible to lookups and
    /// are recomputed on next [`AnalysisCache::analyze_at`]. This is the
    /// hot-reload entry point: a rule-diff maps changed domains to the
    /// shards holding their scripts, and only those shards pay
    /// re-classification.
    pub fn invalidate_shards(&self, shards: impl IntoIterator<Item = usize>, floor: u64) {
        for shard in shards {
            let slot = &self.floors[shard % SHARD_COUNT];
            let previous = slot.fetch_max(floor, Ordering::Relaxed);
            if previous < floor {
                self.invalidated_shards.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// [`AnalysisCache::analyze`] wrapped in a `"triage"` trace span with a
    /// `"parse"` child (the program-resolution stage) and a `"verdict"`
    /// instant carrying the verdict label.
    ///
    /// The span structure is identical whether the lookup hits or
    /// analyzes: a verdict is a pure function of the source, but *which*
    /// visit pays the analysis is a scheduling accident, so hit/analyze
    /// attribution goes only to the crawl-wide `analysis.cache.hit` /
    /// `analysis.analyses` counters and per-visit streams stay
    /// schedule-independent.
    pub fn analyze_traced(
        &self,
        src: &str,
        programs: Option<&ScriptCache>,
        rec: &canvassing_trace::VisitRecorder,
    ) -> (u64, Arc<ScriptAnalysis>) {
        if !rec.enabled() {
            return self.analyze(src, programs);
        }
        let span = rec.span("triage");
        let parse = rec.span("parse");
        let ((hash, analysis), was_analysis) = self.lookup(src, programs, 0);
        parse.end(0);
        rec.bump(if was_analysis {
            "analysis.analyses"
        } else {
            "analysis.cache.hit"
        });
        rec.instant("verdict", || analysis.verdict.label().to_string());
        span.end(0);
        (hash, analysis)
    }

    /// The shared lookup path: `(result, was_analysis)`. Stale entries
    /// (epoch below the shard floor) are treated as misses and replaced
    /// in place, still under the shard lock — concurrent requests for a
    /// stale body block and share the one re-analysis, exactly like cold
    /// bodies.
    fn lookup(
        &self,
        src: &str,
        programs: Option<&ScriptCache>,
        epoch: u64,
    ) -> ((u64, Arc<ScriptAnalysis>), bool) {
        let hash = source_hash(src);
        let shard = shard_of(hash);
        let floor = self.floors[shard].load(Ordering::Relaxed);
        let mut map = self.shards[shard]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let bucket = map.entry(hash).or_default();
        let existing = bucket.iter().position(|e| e.source == src);
        if let Some(i) = existing {
            if bucket[i].epoch >= floor {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return ((hash, Arc::clone(&bucket[i].analysis)), false);
            }
            self.stale_refreshes.fetch_add(1, Ordering::Relaxed);
        }
        self.analyses.fetch_add(1, Ordering::Relaxed);
        let analysis = Arc::new(match programs {
            Some(cache) => match cache.get_or_parse(src) {
                Ok(program) => classify_merged(&program),
                Err(e) => ScriptAnalysis {
                    verdict: Verdict::Inconclusive,
                    features: crate::CanvasFeatures::default(),
                    findings: vec![Finding {
                        rule: RuleId::IncParse,
                        detail: format!("parse failed: {e}"),
                    }],
                },
            },
            None => classify_source_merged(src),
        });
        let entry = CacheEntry {
            source: src.to_string(),
            epoch,
            analysis: Arc::clone(&analysis),
        };
        match existing {
            Some(i) => bucket[i] = entry,
            None => bucket.push(entry),
        }
        ((hash, analysis), true)
    }

    /// Number of distinct script bodies currently cached.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|poison| poison.into_inner())
                    .values()
                    .map(Vec::len)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the cumulative counters.
    pub fn stats(&self) -> AnalysisStats {
        AnalysisStats {
            hits: self.hits.load(Ordering::Relaxed),
            analyses: self.analyses.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the epoch/invalidation counters.
    pub fn epoch_stats(&self) -> EpochCacheStats {
        EpochCacheStats {
            invalidated_shards: self.invalidated_shards.load(Ordering::Relaxed),
            stale_refreshes: self.stale_refreshes.load(Ordering::Relaxed),
            peeks: self.peeks.load(Ordering::Relaxed),
            peek_hits: self.peek_hits.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FP: &str = r#"
        let c = document.createElement("canvas");
        let x = c.getContext("2d");
        x.fillText("cache me", 2, 2);
        c.toDataURL();
    "#;

    #[test]
    fn identical_bodies_analyze_once() {
        let cache = AnalysisCache::new();
        let (h1, a) = cache.analyze(FP, None);
        let (h2, b) = cache.analyze(FP, None);
        assert_eq!(h1, h2);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must share the Arc");
        let stats = cache.stats();
        assert_eq!(stats.analyses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(cache.len(), 1);
        assert!(a.verdict.is_fingerprinting());
    }

    #[test]
    fn reuses_compiled_ast_from_script_cache() {
        let programs = ScriptCache::new();
        let cache = AnalysisCache::new();
        cache.analyze(FP, Some(&programs));
        let parses_after_analysis = programs.stats().parses;
        assert_eq!(parses_after_analysis, 1, "analysis performs the one parse");
        // Execution-path lookup now hits the same entry: no second parse.
        programs.get_or_parse(FP).unwrap();
        assert_eq!(programs.stats().parses, 1);
        assert_eq!(programs.stats().hits, 1);
        // And a second analysis of the same body touches neither cache's
        // slow path.
        cache.analyze(FP, Some(&programs));
        assert_eq!(cache.stats().analyses, 1);
        assert_eq!(programs.stats().parses, 1);
    }

    #[test]
    fn parse_failures_are_inconclusive_and_cached() {
        let cache = AnalysisCache::new();
        let bad = "let = ;";
        let (_, a) = cache.analyze(bad, None);
        assert_eq!(a.verdict, Verdict::Inconclusive);
        assert!(a.findings.iter().any(|f| f.rule == RuleId::IncParse));
        let (_, b) = cache.analyze(bad, None);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.stats().analyses, 1);
    }

    #[test]
    fn traced_analysis_spans_are_hit_miss_invariant() {
        use canvassing_trace::{span_names, EventKind, MetricsRegistry, VisitRecorder};
        let cache = AnalysisCache::new();
        let reg = Arc::new(MetricsRegistry::new());

        let trace_of = |rec: VisitRecorder| {
            cache.analyze_traced(FP, None, &rec);
            rec.finish()
                .unwrap_or_else(|| unreachable!("enabled recorder"))
        };
        let cold = trace_of(VisitRecorder::new("v", Some(Arc::clone(&reg))));
        let warm = trace_of(VisitRecorder::new("v", Some(Arc::clone(&reg))));
        // The event stream is identical whether the analysis ran or hit.
        assert_eq!(cold.events, warm.events);
        let names = span_names(&cold);
        assert!(names.contains("triage"));
        assert!(names.contains("parse"));
        let verdicts: Vec<&String> = cold
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Instant { name, detail, .. } if *name == "verdict" => Some(detail),
                _ => None,
            })
            .collect();
        assert_eq!(verdicts, vec!["fingerprinting+exfil"]);
        // Attribution lives in the shared counters.
        let snap = reg.snapshot();
        assert_eq!(snap.counters["analysis.analyses"], 1);
        assert_eq!(snap.counters["analysis.cache.hit"], 1);
    }

    #[test]
    fn concurrent_lookups_of_one_body_analyze_once() {
        let cache = Arc::new(AnalysisCache::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for _ in 0..25 {
                        cache.analyze(FP, None);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert_eq!(stats.analyses, 1);
        assert_eq!(stats.hits, 8 * 25 - 1);
    }
}
