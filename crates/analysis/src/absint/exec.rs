//! The worklist fixed-point interpreter for one bytecode chunk.
//!
//! Each basic block is re-processed whenever its entry state grows;
//! entry states only ever move up the (finite-height) lattice in
//! [`super::domain`], so the fixpoint terminates — a per-block visit
//! cap backstops the proof for malformed input. Transfer rules mirror
//! [`crate::taint`]'s AST rules decision-for-decision, with added
//! constant precision: dimensions and MIME strings assembled through
//! variables, concatenation, `fromCharCode`, or `slice` stay known.

use std::collections::{BTreeMap, BTreeSet};

use canvassing_script::bytecode::{Const, Insn, Op};
use canvassing_script::interp::builtin_name;
use canvassing_script::{BinOp, CompiledProgram, UnOp};

use crate::features::ANIMATION_METHODS;
use crate::taint::{CanvasRead, DimClass, MimeClass, SINK_METHODS};

use super::cfg::Cfg;
use super::domain::{AbsState, BVal, Dims, Origin, Slot, DEFAULT_DIMS};
use super::summaries::BcSummary;

/// Safety cap on block re-processing; the monotone join makes real
/// fixpoints converge in a handful of visits.
const VISIT_CAP: u32 = 64;

/// Everything learned about one chunk.
#[derive(Debug, Clone, Default, PartialEq)]
pub(crate) struct ChunkFacts {
    /// Reachable canvas reads (deduplicated).
    pub reads: Vec<CanvasRead>,
    /// §5.3 equality comparison of two tainted values.
    pub double_render: bool,
    /// Taint reached an explicit sink.
    pub exfil_sink: bool,
    /// An animation method was called.
    pub animation: bool,
    /// Some return value may be tainted.
    pub ret_tainted: bool,
    /// All seen return values were the same-site canvas: its dims.
    pub ret_dims: Option<Dims>,
    /// All seen return values were one known constant.
    pub ret_const: Option<BVal>,
    /// At least one `Return` was reachable.
    pub ret_seen: bool,
    /// The program-result register was tainted at `Halt` (main only).
    pub last_tainted: bool,
}

impl ChunkFacts {
    fn add_read(&mut self, read: CanvasRead) {
        if !self.reads.contains(&read) {
            self.reads.push(read);
        }
    }

    fn absorb_summary(&mut self, s: &BcSummary) {
        for read in &s.reads {
            self.add_read(*read);
        }
        self.double_render |= s.double_render;
        self.exfil_sink |= s.exfil_sink;
        self.animation |= s.animation;
    }

    fn record_return(&mut self, st: &AbsState, val: &BVal) {
        self.ret_tainted |= val.is_tainted();
        let dims = match val {
            BVal::Canvas(_) | BVal::Context(_) => Some(st.dims_of(val)),
            _ => None,
        };
        let konst = match val {
            BVal::Str(_) | BVal::Num(_) => Some(val.clone()),
            _ => None,
        };
        if !self.ret_seen {
            self.ret_seen = true;
            self.ret_dims = dims;
            self.ret_const = konst;
        } else {
            self.ret_dims = match (self.ret_dims, dims) {
                (Some((w1, h1)), Some((w2, h2))) => {
                    let join =
                        |a: DimClass, b: DimClass| if a == b { a } else { DimClass::Dynamic };
                    Some((join(w1, w2), join(h1, h2)))
                }
                _ => None,
            };
            self.ret_const = match (&self.ret_const, &konst) {
                (Some(a), Some(b)) if a == b => self.ret_const.clone(),
                _ => None,
            };
        }
    }
}

/// Runs the dataflow over one chunk to its fixpoint.
pub(crate) fn analyze_chunk(
    prog: &CompiledProgram,
    code: &[Insn],
    slots: u32,
    params: usize,
    param_val: BVal,
    cfg: &Cfg,
    summaries: &BTreeMap<u32, BcSummary>,
) -> ChunkFacts {
    let mut facts = ChunkFacts::default();
    if cfg.blocks.is_empty() {
        return facts;
    }
    let mut entry: Vec<Option<AbsState>> = vec![None; cfg.blocks.len()];
    entry[0] = Some(AbsState::entry(slots, params, param_val));
    let mut visits = vec![0u32; cfg.blocks.len()];
    let mut work: BTreeSet<usize> = BTreeSet::new();
    work.insert(0);

    while let Some(&b) = work.iter().next() {
        work.remove(&b);
        let Some(mut st) = entry[b].clone() else {
            continue;
        };
        if visits[b] >= VISIT_CAP {
            continue;
        }
        visits[b] += 1;
        let block = cfg.blocks[b];
        let mut ctx = Ctx {
            prog,
            summaries,
            facts: &mut facts,
        };
        let mut succs: Vec<(usize, AbsState)> = Vec::new();
        let mut fell_through = true;
        // `pc` feeds fall-through successor offsets (`pc + 1`), not just
        // the `code[pc]` lookup, so an enumerate rewrite obscures it.
        #[allow(clippy::needless_range_loop)]
        for pc in block.start..block.end {
            let insn = &code[pc];
            match insn.op {
                Op::Jump(t) => {
                    succs.push((t as usize, st.clone()));
                    fell_through = false;
                }
                Op::JumpIfFalse(t) => {
                    st.stack.pop();
                    succs.push((t as usize, st.clone()));
                    succs.push((pc + 1, st.clone()));
                    fell_through = false;
                }
                Op::JumpIfFalsyPeek(t) | Op::JumpIfTruthyPeek(t) => {
                    // Taken: the peeked value stays as the expression
                    // result. Fall-through: it is popped before the rhs.
                    succs.push((t as usize, st.clone()));
                    st.stack.pop();
                    succs.push((pc + 1, st.clone()));
                    fell_through = false;
                }
                Op::Return => {
                    let val = st.stack.pop().map(|s| s.val).unwrap_or(BVal::Untainted);
                    ctx.facts.record_return(&st, &val);
                    fell_through = false;
                }
                Op::Halt => {
                    ctx.facts.last_tainted |= st.last.is_tainted();
                    fell_through = false;
                }
                Op::RaiseLoopCtl => {
                    fell_through = false;
                }
                _ => ctx.step(pc, &insn.op, &mut st),
            }
        }
        if fell_through && block.end < code.len() {
            succs.push((block.end, st));
        }
        for (pc, out) in succs {
            if pc >= code.len() {
                continue;
            }
            let sb = cfg.block_at(pc);
            let changed = match &mut entry[sb] {
                Some(existing) => existing.join_from(&out),
                slot => {
                    *slot = Some(out);
                    true
                }
            };
            if changed {
                work.insert(sb);
            }
        }
    }
    facts
}

/// Transfer-function context for straight-line ops.
struct Ctx<'a> {
    prog: &'a CompiledProgram,
    summaries: &'a BTreeMap<u32, BcSummary>,
    facts: &'a mut ChunkFacts,
}

impl Ctx<'_> {
    fn sym(&self, s: u32) -> &str {
        self.prog
            .symbols
            .get(s as usize)
            .map(String::as_str)
            .unwrap_or("")
    }

    fn konst(&self, c: u32) -> BVal {
        match self.prog.consts.get(c as usize) {
            Some(Const::Num(n)) => BVal::Num(*n),
            Some(Const::Str(s)) => BVal::Str(s.clone()),
            _ => BVal::Untainted,
        }
    }

    fn step(&mut self, pc: usize, op: &Op, st: &mut AbsState) {
        match *op {
            Op::Const(c) => st.stack.push(Slot::anon(self.konst(c))),
            Op::LoadLocal(i) => {
                let val = st
                    .locals
                    .get(i as usize)
                    .cloned()
                    .unwrap_or(BVal::Untainted);
                st.stack.push(Slot {
                    val,
                    origin: Some(Origin::Local(i)),
                });
            }
            Op::StoreLocal(i) => {
                if let Some(top) = st.stack.last_mut() {
                    let val = top.val.clone();
                    top.origin = Some(Origin::Local(i));
                    if let Some(slot) = st.locals.get_mut(i as usize) {
                        *slot = val;
                    }
                }
            }
            Op::DeclareLocal(i) => {
                let val = st.stack.pop().map(|s| s.val).unwrap_or(BVal::Untainted);
                if let Some(slot) = st.locals.get_mut(i as usize) {
                    *slot = val;
                }
            }
            Op::LoadGlobal(s) => {
                let val = match st.globals.get(&s) {
                    Some(v) => v.clone(),
                    None => match self.sym(s) {
                        "document" | "window" | "navigator" => BVal::HostGlobal(s),
                        _ => BVal::Untainted,
                    },
                };
                st.stack.push(Slot {
                    val,
                    origin: Some(Origin::Global(s)),
                });
            }
            Op::StoreGlobal(s) => {
                if let Some(top) = st.stack.last_mut() {
                    let val = top.val.clone();
                    top.origin = Some(Origin::Global(s));
                    st.globals.insert(s, val);
                }
            }
            Op::DeclareGlobal(s) => {
                let val = st.stack.pop().map(|v| v.val).unwrap_or(BVal::Untainted);
                st.globals.insert(s, val);
            }
            Op::Pop => {
                st.stack.pop();
            }
            Op::Dup => {
                if let Some(top) = st.stack.last().cloned() {
                    st.stack.push(top);
                }
            }
            Op::Unary(u) => {
                let v = st.stack.pop().map(|s| s.val).unwrap_or(BVal::Untainted);
                let out = if v.is_tainted() {
                    BVal::Tainted
                } else if let (UnOp::Neg, BVal::Num(n)) = (u, &v) {
                    BVal::Num(-n)
                } else {
                    BVal::Untainted
                };
                st.stack.push(Slot::anon(out));
            }
            Op::Binary(b) => {
                let r = st.stack.pop().map(|s| s.val).unwrap_or(BVal::Untainted);
                let l = st.stack.pop().map(|s| s.val).unwrap_or(BVal::Untainted);
                let out = match b {
                    BinOp::Eq | BinOp::Ne => {
                        // §5.3: two tainted reads compared for equality;
                        // the one-bit result itself is clean.
                        if l.is_tainted() && r.is_tainted() {
                            self.facts.double_render = true;
                        }
                        BVal::Untainted
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => BVal::Untainted,
                    _ => {
                        if l.is_tainted() || r.is_tainted() {
                            BVal::Tainted
                        } else {
                            const_binary(b, &l, &r)
                        }
                    }
                };
                st.stack.push(Slot::anon(out));
            }
            Op::MakeArray(n) => {
                let mut tainted = false;
                for _ in 0..n {
                    tainted |= st.stack.pop().map(|s| s.val.is_tainted()).unwrap_or(false);
                }
                st.stack.push(Slot::anon(if tainted {
                    BVal::Tainted
                } else {
                    BVal::Untainted
                }));
            }
            Op::GetMember(_) => {
                let obj = st.stack.pop().map(|s| s.val).unwrap_or(BVal::Untainted);
                st.stack.push(Slot::anon(if obj.is_tainted() {
                    BVal::Tainted
                } else {
                    BVal::Untainted
                }));
            }
            Op::GetIndex => {
                st.stack.pop();
                let obj = st.stack.pop().map(|s| s.val).unwrap_or(BVal::Untainted);
                st.stack.push(Slot::anon(if obj.is_tainted() {
                    BVal::Tainted
                } else {
                    BVal::Untainted
                }));
            }
            Op::SetMember(s) => {
                let obj = st.stack.pop().map(|v| v.val).unwrap_or(BVal::Untainted);
                let val = st.stack.pop().map(|v| v.val).unwrap_or(BVal::Untainted);
                let name = self.sym(s).to_string();
                if let BVal::Canvas(site) = obj {
                    if name == "width" || name == "height" {
                        let dim = match val {
                            BVal::Num(n) => DimClass::Literal(n.max(0.0) as u32),
                            _ => DimClass::Dynamic,
                        };
                        let dims = st.canvases.entry(site).or_insert(DEFAULT_DIMS);
                        if name == "width" {
                            dims.0 = dim;
                        } else {
                            dims.1 = dim;
                        }
                    }
                }
                // Beacon pattern: img.src = "...?fp=" + data.
                if name == "src" && val.is_tainted() {
                    self.facts.exfil_sink = true;
                }
            }
            Op::SetIndex => {
                st.stack.pop();
                let obj = st.stack.pop();
                let val = st.stack.pop().map(|v| v.val).unwrap_or(BVal::Untainted);
                if val.is_tainted() {
                    if let Some(obj) = obj {
                        self.taint_receiver(st, &obj);
                    }
                }
            }
            Op::CallBuiltin { builtin, argc } => {
                let args = pop_args(st, argc as usize);
                let any_tainted = args.iter().any(|a| a.val.is_tainted());
                let out = if any_tainted {
                    BVal::Tainted
                } else {
                    const_builtin(builtin_name(builtin), &args)
                };
                st.stack.push(Slot::anon(out));
            }
            Op::CallFn { name, argc } => {
                let args = pop_args(st, argc as usize);
                let any_tainted = args.iter().any(|a| a.val.is_tainted());
                let out = match self.summaries.get(&name) {
                    Some(s) => {
                        let s = s.clone();
                        self.facts.absorb_summary(&s);
                        if any_tainted && s.param_to_sink {
                            self.facts.exfil_sink = true;
                        }
                        if s.returns_tainted || (s.param_to_return && any_tainted) {
                            BVal::Tainted
                        } else if let Some(dims) = s.returns_canvas {
                            // Allocation-site abstraction: the call site
                            // is the canvas identity.
                            let site = pc as u32;
                            st.canvases.insert(site, dims);
                            BVal::Canvas(site)
                        } else if let Some(c) = s.returns_const {
                            c
                        } else {
                            BVal::Untainted
                        }
                    }
                    // Unknown function: the result derives from the
                    // arguments (same rule as the AST pass).
                    None => {
                        if any_tainted {
                            BVal::Tainted
                        } else {
                            BVal::Untainted
                        }
                    }
                };
                st.stack.push(Slot::anon(out));
            }
            Op::CallMethod { method, argc } => {
                let args = pop_args(st, argc as usize);
                let recv = st.stack.pop().unwrap_or(Slot::anon(BVal::Untainted));
                let out = self.method_call(pc, method, &recv, &args, st);
                st.stack.push(Slot::anon(out));
            }
            Op::StoreLast => {
                st.last = st.stack.pop().map(|s| s.val).unwrap_or(BVal::Untainted);
            }
            Op::SetLastNull => st.last = BVal::Untainted,
            Op::DeclareFn(_) | Op::Fuel => {}
            // Control-flow ops are handled by the block driver.
            Op::Jump(_)
            | Op::JumpIfFalse(_)
            | Op::JumpIfFalsyPeek(_)
            | Op::JumpIfTruthyPeek(_)
            | Op::Return
            | Op::RaiseLoopCtl
            | Op::Halt => {}
        }
    }

    fn method_call(
        &mut self,
        pc: usize,
        method: u32,
        recv: &Slot,
        args: &[Slot],
        st: &mut AbsState,
    ) -> BVal {
        let mname = self.sym(method).to_string();
        let any_arg_tainted = args.iter().any(|a| a.val.is_tainted());

        // document.createElement("canvas") births a tracked canvas.
        if mname == "createElement" {
            if let BVal::HostGlobal(s) = recv.val {
                if self.sym(s) == "document"
                    && matches!(args.first(), Some(a) if a.val == BVal::Str("canvas".into()))
                {
                    let site = pc as u32;
                    st.canvases.insert(site, DEFAULT_DIMS);
                    return BVal::Canvas(site);
                }
            }
        }

        match mname.as_str() {
            "getContext" => {
                if let BVal::Canvas(site) = recv.val {
                    return BVal::Context(site);
                }
                BVal::Untainted
            }
            "toDataURL" => {
                let (width, height) = st.dims_of(&recv.val);
                let mime = match args.first().map(|a| &a.val) {
                    None => MimeClass::Png,
                    Some(BVal::Str(m)) if m == "image/png" => MimeClass::Png,
                    Some(BVal::Str(_)) => MimeClass::Lossy,
                    Some(_) => MimeClass::Dynamic,
                };
                self.facts.add_read(CanvasRead {
                    mime,
                    width,
                    height,
                });
                BVal::Tainted
            }
            "getImageData" => {
                let lit = |slot: Option<&Slot>| match slot.map(|s| &s.val) {
                    Some(BVal::Num(n)) => DimClass::Literal(n.max(0.0) as u32),
                    _ => DimClass::Dynamic,
                };
                self.facts.add_read(CanvasRead {
                    mime: MimeClass::Png,
                    width: lit(args.get(2)),
                    height: lit(args.get(3)),
                });
                BVal::Tainted
            }
            m if ANIMATION_METHODS.contains(&m) => {
                self.facts.animation = true;
                BVal::Untainted
            }
            m if SINK_METHODS.contains(&m) => {
                if any_arg_tainted || recv.val.is_tainted() {
                    self.facts.exfil_sink = true;
                }
                BVal::Untainted
            }
            _ => {
                // Constant string methods: the VM's exact semantics, so
                // sliced/cased MIME and URL fragments stay known.
                if !any_arg_tainted {
                    if let BVal::Str(s) = &recv.val {
                        if let Some(out) = const_string_method(s, &mname, args) {
                            return out;
                        }
                    }
                }
                // Mutating call with tainted payload (`arr.push(fp)`)
                // taints the variable behind the receiver.
                if any_arg_tainted {
                    self.taint_receiver(st, recv);
                }
                if recv.val.is_tainted() || any_arg_tainted {
                    BVal::Tainted
                } else {
                    BVal::Untainted
                }
            }
        }
    }

    /// Taints the local/global a receiver value was loaded from, unless
    /// the receiver is a tracked canvas shape (same carve-out as the
    /// AST rule).
    fn taint_receiver(&mut self, st: &mut AbsState, recv: &Slot) {
        if matches!(recv.val, BVal::Canvas(_) | BVal::Context(_)) {
            return;
        }
        match recv.origin {
            Some(Origin::Local(i)) => {
                if let Some(slot) = st.locals.get_mut(i as usize) {
                    *slot = BVal::Tainted;
                }
            }
            Some(Origin::Global(s)) => {
                st.globals.insert(s, BVal::Tainted);
            }
            None => {}
        }
    }
}

/// Pops `argc` arguments in declaration order.
fn pop_args(st: &mut AbsState, argc: usize) -> Vec<Slot> {
    let mut args = Vec::with_capacity(argc);
    for _ in 0..argc {
        args.push(st.stack.pop().unwrap_or(Slot::anon(BVal::Untainted)));
    }
    args.reverse();
    args
}

/// Constant folding for binary arithmetic, replaying `apply_binary`:
/// `Add` concatenates display strings when either side is a string,
/// numeric ops apply to two numbers; anything else stays unknown.
fn const_binary(op: BinOp, l: &BVal, r: &BVal) -> BVal {
    let both_num = match (l, r) {
        (BVal::Num(a), BVal::Num(b)) => Some((*a, *b)),
        _ => None,
    };
    match op {
        BinOp::Add => {
            if matches!(l, BVal::Str(_)) || matches!(r, BVal::Str(_)) {
                match (l.display(), r.display()) {
                    (Some(a), Some(b)) => BVal::Str(format!("{a}{b}")),
                    _ => BVal::Untainted,
                }
            } else if let Some((a, b)) = both_num {
                BVal::Num(a + b)
            } else {
                BVal::Untainted
            }
        }
        BinOp::Sub => both_num
            .map(|(a, b)| BVal::Num(a - b))
            .unwrap_or(BVal::Untainted),
        BinOp::Mul => both_num
            .map(|(a, b)| BVal::Num(a * b))
            .unwrap_or(BVal::Untainted),
        BinOp::Div => both_num
            .map(|(a, b)| BVal::Num(a / b))
            .unwrap_or(BVal::Untainted),
        BinOp::Rem => both_num
            .map(|(a, b)| BVal::Num(a % b))
            .unwrap_or(BVal::Untainted),
        _ => BVal::Untainted,
    }
}

/// Constant folding for the laundering-relevant builtins.
fn const_builtin(name: &str, args: &[Slot]) -> BVal {
    match name {
        "str" => match args.first() {
            None => BVal::Str(String::new()),
            Some(a) => a.val.display().map(BVal::Str).unwrap_or(BVal::Untainted),
        },
        "fromCharCode" => match args.first().map(|a| &a.val) {
            Some(BVal::Num(n)) => char::from_u32(*n as u32)
                .map(|c| BVal::Str(c.to_string()))
                .unwrap_or(BVal::Untainted),
            _ => BVal::Untainted,
        },
        "len" => match args.first().map(|a| &a.val) {
            Some(BVal::Str(s)) => BVal::Num(s.chars().count() as f64),
            _ => BVal::Untainted,
        },
        _ => BVal::Untainted,
    }
}

/// Constant string methods with the interpreter's exact char-index
/// semantics; `None` falls back to the generic taint rule.
fn const_string_method(s: &str, method: &str, args: &[Slot]) -> Option<BVal> {
    let num_arg = |i: usize| -> Option<Option<f64>> {
        // Outer None: a provided arg is not a known number → bail.
        // Inner None: the arg is absent → the method's default applies.
        match args.get(i).map(|a| &a.val) {
            None => Some(None),
            Some(BVal::Num(n)) => Some(Some(*n)),
            Some(_) => None,
        }
    };
    match method {
        "substring" | "slice" => {
            let chars: Vec<char> = s.chars().collect();
            let a = num_arg(0)?.unwrap_or(0.0).max(0.0) as usize;
            let b = num_arg(1)?
                .map(|n| n.max(0.0) as usize)
                .unwrap_or(chars.len())
                .min(chars.len());
            let a = a.min(b);
            Some(BVal::Str(chars[a..b].iter().collect()))
        }
        "toLowerCase" => Some(BVal::Str(s.to_lowercase())),
        "toUpperCase" => Some(BVal::Str(s.to_uppercase())),
        "charCodeAt" => {
            let i = num_arg(0)?.unwrap_or(0.0) as usize;
            Some(
                s.chars()
                    .nth(i)
                    .map(|c| BVal::Num(c as u32 as f64))
                    .unwrap_or(BVal::Untainted),
            )
        }
        _ => None,
    }
}
