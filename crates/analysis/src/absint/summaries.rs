//! Bottom-up interprocedural function summaries.
//!
//! Each declared function is analyzed twice per round — once with clean
//! parameters and once with tainted parameters — and the pair is
//! condensed into a [`BcSummary`] the call-site transfer rule consults.
//! Rounds repeat until the summary map reaches a fixpoint, with a small
//! round cap acting as the widening bound for (mutual) recursion: a
//! call to a not-yet-summarized function falls back to the
//! arguments-taint-the-result rule, which is sound for taint and merely
//! imprecise for constants.

use std::collections::BTreeMap;

use canvassing_script::CompiledProgram;

use crate::taint::CanvasRead;

use super::cfg::Cfg;
use super::domain::{BVal, Dims};
use super::exec;

/// Widening bound: summary refinement rounds before we stop, covering
/// helper chains up to this depth exactly and recursion conservatively.
const MAX_ROUNDS: usize = 4;

/// Condensed behavior of one declared function.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct BcSummary {
    /// The return value may be tainted even with clean arguments.
    pub returns_tainted: bool,
    /// Tainted arguments may flow to the return value.
    pub param_to_return: bool,
    /// Tainted arguments may reach an exfiltration sink in the body.
    pub param_to_sink: bool,
    /// Every return site yields the same canvas: its dimensions.
    pub returns_canvas: Option<Dims>,
    /// Every return site yields this known constant.
    pub returns_const: Option<BVal>,
    /// Canvas reads performed unconditionally by the body.
    pub reads: Vec<CanvasRead>,
    /// §5.3 double-render comparison inside the body.
    pub double_render: bool,
    /// The body reaches a sink with tainted data regardless of args.
    pub exfil_sink: bool,
    /// The body calls an animation method.
    pub animation: bool,
}

/// Computes summaries for every declared function, keyed by the
/// function's name symbol (later declarations shadow earlier ones,
/// matching runtime binding order).
pub(crate) fn compute(prog: &CompiledProgram) -> BTreeMap<u32, BcSummary> {
    if prog.fns.is_empty() {
        return BTreeMap::new();
    }
    let cfgs: Vec<Cfg> = prog.fns.iter().map(|f| Cfg::build(&f.code)).collect();
    let mut summaries: BTreeMap<u32, BcSummary> = BTreeMap::new();
    for _ in 0..MAX_ROUNDS {
        let mut next: BTreeMap<u32, BcSummary> = BTreeMap::new();
        for (i, f) in prog.fns.iter().enumerate() {
            let clean = exec::analyze_chunk(
                prog,
                &f.code,
                f.max_slots,
                f.params.len(),
                BVal::Untainted,
                &cfgs[i],
                &summaries,
            );
            let dirty = exec::analyze_chunk(
                prog,
                &f.code,
                f.max_slots,
                f.params.len(),
                BVal::Tainted,
                &cfgs[i],
                &summaries,
            );
            next.insert(
                f.name,
                BcSummary {
                    returns_tainted: clean.ret_tainted,
                    param_to_return: dirty.ret_tainted,
                    param_to_sink: dirty.exfil_sink,
                    returns_canvas: clean.ret_dims,
                    returns_const: clean.ret_const.clone(),
                    reads: clean.reads.clone(),
                    double_render: clean.double_render,
                    exfil_sink: clean.exfil_sink,
                    animation: clean.animation,
                },
            );
        }
        if next == summaries {
            break;
        }
        summaries = next;
    }
    summaries
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_script::{compile, parse};

    fn summaries_of(src: &str) -> (CompiledProgram, BTreeMap<u32, BcSummary>) {
        let prog = compile(&parse(src).expect("parse"));
        let s = compute(&prog);
        (prog, s)
    }

    fn by_name<'a>(
        prog: &CompiledProgram,
        s: &'a BTreeMap<u32, BcSummary>,
        name: &str,
    ) -> &'a BcSummary {
        let sym = prog
            .symbols
            .iter()
            .position(|n| n == name)
            .expect("symbol interned") as u32;
        s.get(&sym).expect("summary computed")
    }

    #[test]
    fn identity_fn_is_param_to_return_only() {
        let (prog, s) = summaries_of("fn id(x) { return x; } id(1);");
        let id = by_name(&prog, &s, "id");
        assert!(id.param_to_return);
        assert!(!id.returns_tainted);
        assert!(!id.param_to_sink);
    }

    #[test]
    fn sink_helper_is_param_to_sink() {
        let (prog, s) = summaries_of("fn relay(p) { navigator.sendBeacon(\"/x\", p); } relay(1);");
        let relay = by_name(&prog, &s, "relay");
        assert!(relay.param_to_sink);
        assert!(!relay.exfil_sink, "clean args must not trip the sink");
    }

    #[test]
    fn canvas_factory_summarizes_dims() {
        let src = r#"
            fn make() {
                let c = document.createElement("canvas");
                c.width = 16;
                return c;
            }
            make();
        "#;
        let (prog, s) = summaries_of(src);
        let make = by_name(&prog, &s, "make");
        let dims = make.returns_canvas.expect("returns a canvas");
        assert_eq!(dims.0, crate::taint::DimClass::Literal(16));
        assert_eq!(dims.1, crate::taint::DimClass::Literal(150));
    }

    #[test]
    fn const_returning_helper_chains_through_rounds() {
        // mime() is only precise once part() has a summary — needs
        // round two of the bottom-up iteration.
        let src = r#"
            fn part() { return "image/"; }
            fn mime() { return part() + "png"; }
            mime();
        "#;
        let (prog, s) = summaries_of(src);
        let mime = by_name(&prog, &s, "mime");
        assert_eq!(mime.returns_const, Some(BVal::Str("image/png".into())));
    }

    #[test]
    fn recursion_terminates_within_round_cap() {
        let (prog, s) = summaries_of("fn loopy(n) { return loopy(n - 1); } loopy(3);");
        let loopy = by_name(&prog, &s, "loopy");
        // Sound but imprecise: unknown-callee fallback marks the result
        // arg-dependent, so param_to_return holds.
        assert!(loopy.param_to_return);
        assert!(!loopy.returns_tainted);
    }

    #[test]
    fn reader_helper_carries_reads_into_summary() {
        let src = r#"
            fn snap(c) { return c.toDataURL(); }
            let c = document.createElement("canvas");
            snap(c);
        "#;
        let (prog, s) = summaries_of(src);
        let snap = by_name(&prog, &s, "snap");
        assert_eq!(snap.reads.len(), 1);
        assert!(snap.returns_tainted);
    }
}
