//! Bytecode-level abstract interpretation: an interprocedural taint
//! analysis over the compiled [`CompiledProgram`] instruction stream.
//!
//! The AST taint pass ([`crate::taint`]) is deliberately syntactic:
//! dimensions must be literal `Number` nodes, MIME arguments literal
//! `Str` nodes, and helper functions are summarized only as
//! taint-in/taint-out. That is exactly the surface the evasion
//! literature attacks — FP-Inspector-style string-op laundering
//! (`"image/" + "pn" + "g"`, `fromCharCode`, `slice`) and helper-call
//! indirection make every interesting operand *non-literal* without
//! changing runtime behavior. This module re-runs the same detection
//! logic on the flat PR-7 bytecode, where those tricks are transparent:
//!
//! * [`cfg`] — per-chunk control-flow graphs: basic blocks split at the
//!   pre-resolved jump targets of the [`Insn`](canvassing_script::bytecode::Insn)
//!   stream.
//! * [`domain`] — the abstract domain: `{Untainted, Tainted,
//!   Canvas/Context(site), Const(str/num), HostGlobal}` over stack
//!   slots, frame-relative locals, and global symbols, with a
//!   constant lattice whose join collapses disagreeing constants (so
//!   ascending chains are finite and the fixpoint terminates without a
//!   separate widening operator).
//! * [`exec`] — the worklist fixed-point interpreter for one chunk:
//!   block entry states join monotonically; constant folding replays
//!   the VM's exact `Add`-concat / `fromCharCode` / `slice` semantics
//!   so reassembled strings stay `Const` instead of degrading to
//!   unknown.
//! * [`summaries`] — bottom-up per-function summaries (param-to-return,
//!   param-to-sink, constant/canvas returns) iterated to a fixpoint
//!   with a bounded round count as the recursion widening bound.
//!
//! The result is the same [`TaintFacts`] shape the AST pass produces,
//! so verdict synthesis ([`crate::classify_bytecode`]) shares the §3.2
//! exclusion logic — the two engines differ only in how much they can
//! prove about each read, never in the decision rule.

pub(crate) mod cfg;
pub(crate) mod domain;
pub(crate) mod exec;
pub(crate) mod summaries;

use canvassing_script::CompiledProgram;

use crate::taint::TaintFacts;
use domain::BVal;

/// Runs the bytecode abstract interpreter over a compiled program,
/// producing the same fact shape as [`crate::taint::analyze`].
pub fn analyze_compiled(prog: &CompiledProgram) -> TaintFacts {
    let summaries = summaries::compute(prog);
    let main = cfg::Cfg::build(&prog.main);
    let facts = exec::analyze_chunk(
        prog,
        &prog.main,
        prog.main_slots,
        0,
        BVal::Untainted,
        &main,
        &summaries,
    );
    TaintFacts {
        reads: facts.reads,
        double_render: facts.double_render,
        exfil: facts.exfil_sink || facts.last_tainted,
        animation: facts.animation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taint::{DimClass, MimeClass};
    use canvassing_script::{compile, parse};

    fn facts(src: &str) -> TaintFacts {
        analyze_compiled(&compile(&parse(src).expect("parse")))
    }

    #[test]
    fn straight_line_fingerprinter_matches_ast_facts() {
        let src = r#"
            let c = document.createElement("canvas");
            let ctx = c.getContext("2d");
            ctx.fillText("hi", 2, 2);
            let fp = c.toDataURL();
            fp;
        "#;
        let f = facts(src);
        assert_eq!(f.reads.len(), 1);
        assert_eq!(f.reads[0].mime, MimeClass::Png);
        assert_eq!(f.reads[0].width, DimClass::Literal(300));
        assert_eq!(f.reads[0].height, DimClass::Literal(150));
        assert!(f.exfil, "final-expression value is tainted");
        assert!(!f.double_render);
        assert!(!f.animation);
    }

    #[test]
    fn constant_dims_through_variables_are_literal() {
        // The AST pass sees `c.width = w` as non-literal; the bytecode
        // pass tracks `w` as Const.
        let src = r#"
            let w = 240;
            let h = 60;
            let c = document.createElement("canvas");
            c.width = w;
            c.height = h;
            c.toDataURL();
        "#;
        let f = facts(src);
        assert_eq!(f.reads.len(), 1);
        assert_eq!(f.reads[0].width, DimClass::Literal(240));
        assert_eq!(f.reads[0].height, DimClass::Literal(60));
    }

    #[test]
    fn reassembled_mime_string_is_recognized() {
        let src = r#"
            let c = document.createElement("canvas");
            let m = "image/" + "pn" + "g";
            c.toDataURL(m);
        "#;
        let f = facts(src);
        assert_eq!(f.reads.len(), 1);
        assert_eq!(f.reads[0].mime, MimeClass::Png);
    }

    #[test]
    fn charcode_laundered_mime_is_recognized() {
        let src = r#"
            let c = document.createElement("canvas");
            let m = "image/p" + fromCharCode(110) + "g";
            c.toDataURL(m);
        "#;
        let f = facts(src);
        assert_eq!(f.reads[0].mime, MimeClass::Png);
    }

    #[test]
    fn helper_returning_canvas_keeps_dims() {
        let src = r#"
            fn make() {
                let c = document.createElement("canvas");
                c.width = 200;
                c.height = 40;
                return c;
            }
            let k = make();
            k.toDataURL();
        "#;
        let f = facts(src);
        assert_eq!(f.reads.len(), 1);
        assert_eq!(f.reads[0].width, DimClass::Literal(200));
        assert_eq!(f.reads[0].height, DimClass::Literal(40));
    }

    #[test]
    fn helper_param_reaching_sink_is_exfil() {
        let src = r#"
            fn relay(p) { navigator.sendBeacon("/ping", p); }
            let c = document.createElement("canvas");
            relay(c.toDataURL());
        "#;
        let f = facts(src);
        assert!(f.exfil, "tainted argument reaches a sink inside the helper");
    }

    #[test]
    fn clean_helper_sink_is_not_exfil() {
        let src = r#"
            fn relay(p) { navigator.sendBeacon("/ping", p); }
            relay("benign");
            let c = document.createElement("canvas");
            let fp = c.toDataURL();
            0;
        "#;
        let f = facts(src);
        assert!(!f.exfil, "clean argument must not flag the sink");
    }

    #[test]
    fn double_render_through_helper() {
        let src = r#"
            fn read(c) { return c.toDataURL(); }
            let c = document.createElement("canvas");
            let a = read(c);
            let b = read(c);
            if (a == b) { 1; }
        "#;
        let f = facts(src);
        assert!(f.double_render);
    }

    #[test]
    fn animation_and_small_canvas_behave_like_ast() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let x = c.getContext("2d");
            x.save();
            c.toDataURL();
        "#,
        );
        assert!(f.animation);

        let f = facts(
            r#"
            let c = document.createElement("canvas");
            c.width = 8;
            c.height = 8;
            c.toDataURL();
        "#,
        );
        assert_eq!(f.reads[0].width, DimClass::Literal(8));
    }

    #[test]
    fn loop_mutated_dims_degrade_to_dynamic() {
        let src = r#"
            let c = document.createElement("canvas");
            let i = 0;
            while (i < 3) {
                c.width = 100 + i;
                i = i + 1;
            }
            c.toDataURL();
        "#;
        let f = facts(src);
        assert!(
            f.reads
                .iter()
                .any(|r| r.width == DimClass::Dynamic || matches!(r.width, DimClass::Literal(_))),
            "read recorded"
        );
        // The loop-exit state must not claim a single literal width for
        // a dimension written from a loop-varying expression.
        assert!(f.reads.iter().any(|r| r.width == DimClass::Dynamic));
    }

    #[test]
    fn split_and_join_url_assembly_taints_sink() {
        let src = r#"
            let c = document.createElement("canvas");
            let fp = c.toDataURL();
            let url = "/c" + "ol" + "lect";
            window.postMessage(url + fp);
        "#;
        let f = facts(src);
        assert!(f.exfil);
    }
}
