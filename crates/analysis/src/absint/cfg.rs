//! Per-chunk control-flow graphs over the flat [`Insn`] stream.
//!
//! Basic blocks are derived purely from the pre-resolved jump targets
//! the PR-7 compiler emits: a block starts at instruction 0, at every
//! jump target, and immediately after every jump or terminator. Edges
//! are implied by each block's final instruction and are enumerated by
//! the executor (fall-through vs. taken carry different abstract stack
//! effects for the peeking short-circuit jumps, so edge semantics live
//! with the transfer function, not here).

use canvassing_script::bytecode::Insn;

/// A half-open instruction range `[start, end)` forming one basic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Block {
    /// First instruction of the block.
    pub start: usize,
    /// One past the last instruction.
    pub end: usize,
}

/// The control-flow graph of one chunk.
#[derive(Debug, Clone)]
pub(crate) struct Cfg {
    /// Blocks in ascending instruction order.
    pub blocks: Vec<Block>,
    /// Map from instruction offset to the block containing it.
    block_of: Vec<usize>,
}

impl Cfg {
    /// Splits `code` into basic blocks. An empty chunk yields an empty
    /// graph (the compiler never emits one; the verifier rejects them).
    pub fn build(code: &[Insn]) -> Cfg {
        let len = code.len();
        if len == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        let mut is_start = vec![false; len];
        is_start[0] = true;
        for (pc, insn) in code.iter().enumerate() {
            if let Some(t) = insn.op.jump_target() {
                if (t as usize) < len {
                    is_start[t as usize] = true;
                }
            }
            let splits_after = insn.op.jump_target().is_some() || insn.op.is_terminator();
            if splits_after && pc + 1 < len {
                is_start[pc + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; len];
        let mut start = 0usize;
        // The index is the block boundary itself; iterating `is_start`
        // directly would lose the `pc == len` closing sentinel.
        #[allow(clippy::needless_range_loop)]
        for pc in 1..=len {
            if pc == len || is_start[pc] {
                let id = blocks.len();
                blocks.push(Block { start, end: pc });
                for slot in block_of.iter_mut().take(pc).skip(start) {
                    *slot = id;
                }
                start = pc;
            }
        }
        Cfg { blocks, block_of }
    }

    /// The block containing instruction `pc`.
    pub fn block_at(&self, pc: usize) -> usize {
        self.block_of.get(pc).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_script::{compile, parse};

    fn cfg_of(src: &str) -> (Cfg, usize) {
        let prog = compile(&parse(src).expect("parse"));
        let len = prog.main.len();
        (Cfg::build(&prog.main), len)
    }

    #[test]
    fn straight_line_is_one_block() {
        let (cfg, len) = cfg_of("let x = 1; x + 2;");
        assert_eq!(cfg.blocks.len(), 1);
        assert_eq!(cfg.blocks[0], Block { start: 0, end: len });
    }

    #[test]
    fn branch_splits_blocks() {
        let (cfg, len) = cfg_of("if (1 < 2) { 3; } else { 4; }");
        assert!(cfg.blocks.len() >= 3, "cond/then/else/join expected");
        // Blocks partition the chunk exactly.
        let mut covered = 0;
        for b in &cfg.blocks {
            assert_eq!(b.start, covered);
            covered = b.end;
        }
        assert_eq!(covered, len);
    }

    #[test]
    fn loop_head_starts_a_block() {
        let (cfg, _) = cfg_of("let i = 0; while (i < 3) { i = i + 1; }");
        // The back edge's target must begin a block.
        let prog = compile(&parse("let i = 0; while (i < 3) { i = i + 1; }").expect("parse"));
        let back_target = prog
            .main
            .iter()
            .enumerate()
            .filter_map(|(pc, insn)| insn.op.jump_target().map(|t| (pc, t as usize)))
            .find(|&(pc, t)| t <= pc)
            .map(|(_, t)| t)
            .expect("while loop has a back edge");
        let block = cfg.blocks[cfg.block_at(back_target)];
        assert_eq!(block.start, back_target);
    }
}
