//! The abstract domain of the bytecode taint interpreter.
//!
//! Values form a finite-height lattice ordered
//! `Const/Canvas/Context/HostGlobal ⊑ Untainted ⊑ Tainted`: the join of
//! two *different* constants collapses to `Untainted` (we only ever
//! exploit a constant when every path agrees on it), so ascending
//! chains are bounded and the block-entry fixpoint terminates without a
//! separate widening operator. Canvas dimension state travels *inside*
//! the flow state (joined pointwise, disagreements degrading to
//! [`DimClass::Dynamic`]) so loop-carried resizes converge exactly like
//! the AST pass's iterate-and-merge scheme.

use std::collections::BTreeMap;

use crate::taint::DimClass;

/// Abstract value of one stack slot, local, or global.
#[derive(Debug, Clone)]
pub(crate) enum BVal {
    /// Not derived from a canvas read; no further structure known.
    Untainted,
    /// May carry canvas-read data.
    Tainted,
    /// A canvas element created at allocation site `pc`.
    Canvas(u32),
    /// A 2D context bound to the canvas from site `pc`.
    Context(u32),
    /// A compile-time-known string (tracked through concat/slice/
    /// charcode laundering).
    Str(String),
    /// A compile-time-known number.
    Num(f64),
    /// The value of an unshadowed host global (`document`, `window`,
    /// `navigator`), identified by its interned symbol.
    HostGlobal(u32),
}

impl PartialEq for BVal {
    fn eq(&self, other: &BVal) -> bool {
        match (self, other) {
            (BVal::Untainted, BVal::Untainted) | (BVal::Tainted, BVal::Tainted) => true,
            (BVal::Canvas(a), BVal::Canvas(b)) | (BVal::Context(a), BVal::Context(b)) => a == b,
            (BVal::Str(a), BVal::Str(b)) => a == b,
            // Bit equality so NaN constants compare equal to themselves
            // and state equality is reflexive (a fixpoint requirement).
            (BVal::Num(a), BVal::Num(b)) => a.to_bits() == b.to_bits(),
            (BVal::HostGlobal(a), BVal::HostGlobal(b)) => a == b,
            _ => false,
        }
    }
}

impl BVal {
    /// Whether the value may carry canvas-read data.
    pub fn is_tainted(&self) -> bool {
        matches!(self, BVal::Tainted)
    }

    /// Least upper bound.
    pub fn join(&self, other: &BVal) -> BVal {
        if self == other {
            self.clone()
        } else if self.is_tainted() || other.is_tainted() {
            BVal::Tainted
        } else {
            BVal::Untainted
        }
    }

    /// The display string the VM would produce for this constant, when
    /// known (`Value::to_display_string` semantics).
    pub fn display(&self) -> Option<String> {
        match self {
            BVal::Str(s) => Some(s.clone()),
            BVal::Num(n) => Some(num_display(*n)),
            _ => None,
        }
    }
}

/// `Value::Num` display semantics, replicated so constant folding of
/// string concatenation matches the VM byte-for-byte.
pub(crate) fn num_display(n: f64) -> String {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Where a stack value was loaded from, when it still aliases a
/// variable. Lets mutating calls (`arr.push(tainted)`) taint the
/// variable behind the receiver, mirroring the AST pass's
/// identifier-receiver rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Origin {
    /// Frame-relative local slot.
    Local(u32),
    /// Global symbol.
    Global(u32),
}

/// One abstract operand-stack entry.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Slot {
    /// The abstract value.
    pub val: BVal,
    /// The variable this value was loaded from, if still tracked.
    pub origin: Option<Origin>,
}

impl Slot {
    /// A slot with no variable origin.
    pub fn anon(val: BVal) -> Slot {
        Slot { val, origin: None }
    }
}

/// Literal width/height of one tracked canvas.
pub(crate) type Dims = (DimClass, DimClass);

/// The DOM default canvas size (300×150).
pub(crate) const DEFAULT_DIMS: Dims = (DimClass::Literal(300), DimClass::Literal(150));

/// The full abstract state at one program point.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AbsState {
    /// Operand stack (depth is consistent across paths — verified).
    pub stack: Vec<Slot>,
    /// Frame-relative locals.
    pub locals: Vec<BVal>,
    /// Written global symbols.
    pub globals: BTreeMap<u32, BVal>,
    /// Dimensions per canvas allocation site.
    pub canvases: BTreeMap<u32, Dims>,
    /// The program-result register (`StoreLast`/`SetLastNull`).
    pub last: BVal,
}

impl AbsState {
    /// The entry state of a chunk: `slots` locals, the first `params`
    /// of them set to `param_val`.
    pub fn entry(slots: u32, params: usize, param_val: BVal) -> AbsState {
        let mut locals = vec![BVal::Untainted; slots as usize];
        for slot in locals.iter_mut().take(params) {
            *slot = param_val.clone();
        }
        AbsState {
            stack: Vec::new(),
            locals,
            globals: BTreeMap::new(),
            canvases: BTreeMap::new(),
            last: BVal::Untainted,
        }
    }

    /// Joins `other` into `self`; returns whether anything changed.
    pub fn join_from(&mut self, other: &AbsState) -> bool {
        let before = self.clone();
        // Stacks at a join have equal depth for verified code; align on
        // the top of stack to stay total on malformed input.
        if self.stack.len() > other.stack.len() {
            let excess = self.stack.len() - other.stack.len();
            self.stack.drain(0..excess);
        }
        let offset = other.stack.len().saturating_sub(self.stack.len());
        for (i, slot) in self.stack.iter_mut().enumerate() {
            let theirs = &other.stack[offset + i];
            slot.val = slot.val.join(&theirs.val);
            if slot.origin != theirs.origin {
                slot.origin = None;
            }
        }
        for (i, local) in self.locals.iter_mut().enumerate() {
            if let Some(theirs) = other.locals.get(i) {
                *local = local.join(theirs);
            }
        }
        for (&sym, theirs) in &other.globals {
            match self.globals.get_mut(&sym) {
                Some(ours) => *ours = ours.join(theirs),
                None => {
                    self.globals.insert(sym, theirs.clone());
                }
            }
        }
        for (&site, &(tw, th)) in &other.canvases {
            match self.canvases.get_mut(&site) {
                Some((w, h)) => {
                    if *w != tw {
                        *w = DimClass::Dynamic;
                    }
                    if *h != th {
                        *h = DimClass::Dynamic;
                    }
                }
                None => {
                    self.canvases.insert(site, (tw, th));
                }
            }
        }
        self.last = self.last.join(&other.last);
        *self != before
    }

    /// Dimensions behind a read receiver; unknown receivers degrade to
    /// dynamic (same rule as the AST pass).
    pub fn dims_of(&self, v: &BVal) -> Dims {
        match v {
            BVal::Canvas(site) | BVal::Context(site) => self
                .canvases
                .get(site)
                .copied()
                .unwrap_or((DimClass::Dynamic, DimClass::Dynamic)),
            _ => (DimClass::Dynamic, DimClass::Dynamic),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_collapses_disagreeing_constants() {
        let a = BVal::Str("x".into());
        let b = BVal::Str("y".into());
        assert_eq!(a.join(&b), BVal::Untainted);
        assert_eq!(a.join(&a), a);
        assert_eq!(a.join(&BVal::Tainted), BVal::Tainted);
        assert_eq!(BVal::Canvas(3).join(&BVal::Canvas(3)), BVal::Canvas(3));
        assert_eq!(BVal::Canvas(3).join(&BVal::Canvas(4)), BVal::Untainted);
    }

    #[test]
    fn nan_constants_are_self_equal() {
        let nan = BVal::Num(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(nan.join(&nan.clone()), nan);
    }

    #[test]
    fn num_display_matches_vm_rendering() {
        assert_eq!(num_display(3.0), "3");
        assert_eq!(num_display(3.5), "3.5");
        assert_eq!(num_display(-0.0), "0");
        assert_eq!(num_display(1e16), "10000000000000000");
    }

    #[test]
    fn state_join_degrades_disagreeing_dims() {
        let mut a = AbsState::entry(0, 0, BVal::Untainted);
        a.canvases
            .insert(0, (DimClass::Literal(300), DimClass::Literal(150)));
        let mut b = a.clone();
        b.canvases
            .insert(0, (DimClass::Literal(240), DimClass::Literal(150)));
        let changed = a.join_from(&b);
        assert!(changed);
        assert_eq!(
            a.canvases.get(&0),
            Some(&(DimClass::Dynamic, DimClass::Literal(150)))
        );
        assert!(!a.join_from(&b.clone()), "join is idempotent at fixpoint");
    }
}
