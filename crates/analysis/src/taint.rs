//! Intraprocedural taint / dataflow analysis.
//!
//! A may-analysis over a two-point taint lattice (`Clean ⊑ Tainted`)
//! extended with two tracked object shapes: canvas elements (with their
//! literal dimensions) and their 2D contexts. Taint **sources** are the
//! canvas read-back calls `toDataURL` and `getImageData`; taint
//! propagates through `let` bindings, assignments, arithmetic and string
//! concatenation, array literals, unknown calls (any tainted argument
//! taints the result), and method calls on tainted receivers (`indexOf`,
//! `join`, `substring`, …). Mutating method calls (`arr.push(tainted)`)
//! conservatively taint an identifier receiver.
//!
//! Function calls are resolved through **summaries** computed to a
//! fixpoint: each declared function is analyzed twice (parameters clean,
//! parameters tainted) so a call site knows whether the return value is
//! tainted intrinsically (`returns_tainted`) or only when a tainted
//! argument flows in (`param_to_return`); the reads, animation calls,
//! and sink hits a callee performs are charged to every call site.
//!
//! Three script-level facts fall out:
//!
//! * **reads** — every reachable canvas read with its statically known
//!   MIME class and canvas dimensions (the inputs to the §3.2 verdict);
//! * **double_render** — an equality comparison whose *both* operands are
//!   tainted: the §5.3 render-twice-and-compare stability check;
//! * **exfil** — taint reaching an explicit network/storage sink
//!   (`send`, `sendBeacon`, `postMessage`, `setItem`, `appendChild`, or a
//!   `.src` assignment) or the script's final expression-statement value,
//!   which the host page receives as the script's result.
//!
//! Control flow is joined, not followed: `if`/`else` branches are
//! analyzed on cloned environments and merged (taint wins, disagreeing
//! canvas dimensions degrade to dynamic), and loop bodies are iterated a
//! fixed number of passes — enough for the finite lattice to stabilize
//! through loop-carried assignments.

use std::collections::{BTreeMap, HashMap};

use canvassing_script::{AssignTarget, BinOp, Expr, FnDecl, Program, Stmt};
use serde::{Deserialize, Serialize};

use crate::features::ANIMATION_METHODS;

/// Minimum fingerprintable canvas edge — must match
/// `canvassing::detect::MIN_CANVAS_EDGE`.
const MIN_CANVAS_EDGE: u32 = 16;

/// Fixed iteration counts standing in for true fixpoints: loop bodies are
/// re-analyzed this many times, and function summaries recomputed this
/// many rounds. The taint lattice has height 2 and reads are deduplicated,
/// so realistic scripts stabilize in 2; the margin covers deeper chains.
const FIXPOINT_PASSES: usize = 4;

/// Method names treated as explicit exfiltration sinks (shared with the
/// bytecode abstract interpreter in [`crate::absint`]).
pub(crate) const SINK_METHODS: &[&str] = &[
    "send",
    "sendBeacon",
    "postMessage",
    "setItem",
    "appendChild",
];

/// Statically determined MIME class of one canvas read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MimeClass {
    /// `image/png` (or no argument — the default).
    Png,
    /// A literal non-PNG MIME (`image/webp`, `image/jpeg`, …).
    Lossy,
    /// The MIME argument is not a string literal.
    Dynamic,
}

/// Statically determined canvas dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DimClass {
    /// Known literal pixel size.
    Literal(u32),
    /// Assigned from a non-literal expression (or unknown canvas).
    Dynamic,
}

/// One reachable canvas read (`toDataURL` / `getImageData`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CanvasRead {
    /// Requested encoding.
    pub mime: MimeClass,
    /// Canvas width at the read, when statically known.
    pub width: DimClass,
    /// Canvas height at the read, when statically known.
    pub height: DimClass,
}

/// How one read fares against the §3.2 exclusion heuristics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadClass {
    /// Lossless, both edges ≥16 px: a fingerprintable read.
    Fingerprinting,
    /// Excluded by the lossy-format heuristic.
    Lossy,
    /// Excluded by the <16×16 size heuristic.
    Small,
    /// MIME not statically known.
    DynamicMime,
    /// Lossless read, but a dimension is not statically known.
    DynamicDims,
}

impl CanvasRead {
    /// Judges this read against the statically evaluable exclusions.
    pub fn classify(&self) -> ReadClass {
        match self.mime {
            MimeClass::Lossy => ReadClass::Lossy,
            MimeClass::Dynamic => ReadClass::DynamicMime,
            MimeClass::Png => match (self.width, self.height) {
                (DimClass::Literal(w), DimClass::Literal(h)) => {
                    if w < MIN_CANVAS_EDGE || h < MIN_CANVAS_EDGE {
                        ReadClass::Small
                    } else {
                        ReadClass::Fingerprinting
                    }
                }
                _ => ReadClass::DynamicDims,
            },
        }
    }

    /// `"WxH"` with `?` for dynamic components (finding details).
    pub fn dims_label(&self) -> String {
        let part = |d: DimClass| match d {
            DimClass::Literal(n) => n.to_string(),
            DimClass::Dynamic => "?".to_string(),
        };
        format!("{}x{}", part(self.width), part(self.height))
    }
}

/// Script-level dataflow facts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TaintFacts {
    /// Reachable canvas reads (deduplicated; multiplicity never affects
    /// the verdict).
    pub reads: Vec<CanvasRead>,
    /// §5.3 double-render comparison observed.
    pub double_render: bool,
    /// Taint reached a sink or the final expression-statement value.
    pub exfil: bool,
    /// A reachable animation-method call (`save`/`restore`).
    pub animation: bool,
}

/// Runs the full analysis over a compiled program.
pub fn analyze(program: &Program) -> TaintFacts {
    let decls = collect_fns(&program.stmts);
    let mut summaries: BTreeMap<String, FnSummary> = decls
        .keys()
        .map(|name| (name.clone(), FnSummary::default()))
        .collect();
    for _ in 0..FIXPOINT_PASSES {
        let mut next = BTreeMap::new();
        for (name, decl) in &decls {
            next.insert(name.clone(), summarize(decl, &summaries));
        }
        if next == summaries {
            break;
        }
        summaries = next;
    }

    let mut body = BodyAnalyzer::new(&summaries);
    let mut last_expr_tainted = false;
    for stmt in &program.stmts {
        last_expr_tainted = match stmt {
            Stmt::Expr(e) => {
                let v = body.eval(e);
                body.is_tainted(&v)
            }
            other => {
                body.exec(other);
                false
            }
        };
    }
    TaintFacts {
        reads: body.out.reads,
        double_render: body.out.double_render,
        exfil: body.out.exfil_sink || last_expr_tainted,
        animation: body.out.animation,
    }
}

/// Collects every function declaration, outermost first (a later
/// declaration with the same name wins, matching interpreter hoisting).
fn collect_fns(stmts: &[Stmt]) -> BTreeMap<String, FnDecl> {
    let mut out = BTreeMap::new();
    fn walk(stmts: &[Stmt], out: &mut BTreeMap<String, FnDecl>) {
        for stmt in stmts {
            match stmt {
                Stmt::FnDecl(decl) => {
                    out.insert(decl.name.clone(), decl.clone());
                    walk(&decl.body, out);
                }
                Stmt::If {
                    then_branch,
                    else_branch,
                    ..
                } => {
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                Stmt::While { body, .. } | Stmt::For { body, .. } => walk(body, out),
                _ => {}
            }
        }
    }
    walk(stmts, &mut out);
    out
}

/// Per-function dataflow summary.
#[derive(Debug, Clone, Default, PartialEq)]
struct FnSummary {
    /// The return value is tainted even with clean arguments (the
    /// function reads a canvas itself).
    returns_tainted: bool,
    /// Tainted arguments may reach the return value.
    param_to_return: bool,
    /// Canvas reads performed per invocation.
    reads: Vec<CanvasRead>,
    /// The body performs a §5.3 comparison.
    double_render: bool,
    /// The body hits an explicit sink.
    exfil_sink: bool,
    /// The body calls animation methods.
    animation: bool,
}

/// Analyzes one function body against the current summaries: once with
/// clean parameters (intrinsic facts) and once with tainted parameters
/// (argument propagation).
fn summarize(decl: &FnDecl, summaries: &BTreeMap<String, FnSummary>) -> FnSummary {
    let run = |params_tainted: bool| -> BodyFacts {
        let mut body = BodyAnalyzer::new(summaries);
        for p in &decl.params {
            let v = if params_tainted {
                AbsVal::Tainted
            } else {
                AbsVal::Clean
            };
            body.env.insert(p.clone(), v);
        }
        for stmt in &decl.body {
            body.exec(stmt);
        }
        body.out
    };
    let clean = run(false);
    let tainted = run(true);
    FnSummary {
        returns_tainted: clean.return_tainted,
        param_to_return: tainted.return_tainted,
        reads: clean.reads,
        double_render: clean.double_render,
        exfil_sink: clean.exfil_sink,
        animation: clean.animation,
    }
}

/// Abstract value of a variable or expression.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AbsVal {
    /// Not derived from a canvas read.
    Clean,
    /// May carry canvas-read data.
    Tainted,
    /// A canvas element (id into the canvas table).
    Canvas(usize),
    /// A 2D context bound to a canvas.
    Context(usize),
}

/// Tracked per-canvas state.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CanvasInfo {
    width: DimClass,
    height: DimClass,
}

impl Default for CanvasInfo {
    /// The DOM default canvas: 300×150.
    fn default() -> CanvasInfo {
        CanvasInfo {
            width: DimClass::Literal(300),
            height: DimClass::Literal(150),
        }
    }
}

/// Facts accumulated while analyzing one body (monotone: only grow).
#[derive(Debug, Clone, Default, PartialEq)]
struct BodyFacts {
    reads: Vec<CanvasRead>,
    double_render: bool,
    exfil_sink: bool,
    animation: bool,
    return_tainted: bool,
}

impl BodyFacts {
    fn add_read(&mut self, read: CanvasRead) {
        if !self.reads.contains(&read) {
            self.reads.push(read);
        }
    }

    fn absorb_summary(&mut self, s: &FnSummary) {
        for read in &s.reads {
            self.add_read(*read);
        }
        self.double_render |= s.double_render;
        self.exfil_sink |= s.exfil_sink;
        self.animation |= s.animation;
    }
}

/// The abstract interpreter for one body (a function, or the top level).
struct BodyAnalyzer<'a> {
    summaries: &'a BTreeMap<String, FnSummary>,
    env: HashMap<String, AbsVal>,
    canvases: HashMap<usize, CanvasInfo>,
    next_canvas: usize,
    out: BodyFacts,
}

impl<'a> BodyAnalyzer<'a> {
    fn new(summaries: &'a BTreeMap<String, FnSummary>) -> BodyAnalyzer<'a> {
        BodyAnalyzer {
            summaries,
            env: HashMap::new(),
            canvases: HashMap::new(),
            next_canvas: 0,
            out: BodyFacts::default(),
        }
    }

    fn is_tainted(&self, v: &AbsVal) -> bool {
        matches!(v, AbsVal::Tainted)
    }

    fn exec_block(&mut self, stmts: &[Stmt]) {
        for stmt in stmts {
            self.exec(stmt);
        }
    }

    fn exec(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { name, value } => {
                let v = self.eval(value);
                self.env.insert(name.clone(), v);
            }
            Stmt::Expr(e) => {
                self.eval(e);
            }
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.eval(cond);
                let pre_env = self.env.clone();
                let pre_canvases = self.canvases.clone();
                self.exec_block(then_branch);
                let then_env = std::mem::replace(&mut self.env, pre_env);
                let then_canvases = std::mem::replace(&mut self.canvases, pre_canvases);
                self.exec_block(else_branch);
                self.merge_env(then_env);
                self.merge_canvases(then_canvases);
            }
            Stmt::While { cond, body } => {
                // The loop may run zero times: iterate the body on the
                // live state and union with the pre-loop state, so facts
                // from skipped iterations never disappear.
                let pre_env = self.env.clone();
                let pre_canvases = self.canvases.clone();
                for _ in 0..FIXPOINT_PASSES {
                    self.eval(cond);
                    self.exec_block(body);
                }
                self.eval(cond);
                self.merge_env(pre_env);
                self.merge_canvases(pre_canvases);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(init) = init {
                    self.exec(init);
                }
                let pre_env = self.env.clone();
                let pre_canvases = self.canvases.clone();
                for _ in 0..FIXPOINT_PASSES {
                    if let Some(cond) = cond {
                        self.eval(cond);
                    }
                    self.exec_block(body);
                    if let Some(step) = step {
                        self.eval(step);
                    }
                }
                self.merge_env(pre_env);
                self.merge_canvases(pre_canvases);
            }
            Stmt::Return(expr) => {
                if let Some(e) = expr {
                    let v = self.eval(e);
                    self.out.return_tainted |= self.is_tainted(&v);
                }
            }
            Stmt::Break | Stmt::Continue => {}
            // Declarations were collected up front; executing one binds
            // nothing in the abstract environment.
            Stmt::FnDecl(_) => {}
        }
    }

    /// Union-merge: taint wins, shape disagreements degrade to `Clean`,
    /// variables live in only one branch keep their value (may-analysis).
    fn merge_env(&mut self, other: HashMap<String, AbsVal>) {
        for (name, theirs) in other {
            match self.env.get(&name) {
                None => {
                    self.env.insert(name, theirs);
                }
                Some(ours) if *ours == theirs => {}
                Some(ours) => {
                    let merged = if self.is_tainted(ours) || matches!(theirs, AbsVal::Tainted) {
                        AbsVal::Tainted
                    } else {
                        AbsVal::Clean
                    };
                    self.env.insert(name, merged);
                }
            }
        }
    }

    /// Canvas ids are globally unique per body, so a plain union suffices;
    /// an id mutated differently on the two paths degrades to dynamic.
    fn merge_canvases(&mut self, other: HashMap<usize, CanvasInfo>) {
        for (id, theirs) in other {
            match self.canvases.get_mut(&id) {
                None => {
                    self.canvases.insert(id, theirs);
                }
                Some(ours) => {
                    if ours.width != theirs.width {
                        ours.width = DimClass::Dynamic;
                    }
                    if ours.height != theirs.height {
                        ours.height = DimClass::Dynamic;
                    }
                }
            }
        }
    }

    fn eval(&mut self, expr: &Expr) -> AbsVal {
        match expr {
            Expr::Number(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null => AbsVal::Clean,
            Expr::Ident(name) => self.env.get(name).copied().unwrap_or(AbsVal::Clean),
            Expr::Array(items) => {
                let mut tainted = false;
                for item in items {
                    let v = self.eval(item);
                    tainted |= self.is_tainted(&v);
                }
                if tainted {
                    AbsVal::Tainted
                } else {
                    AbsVal::Clean
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs);
                let r = self.eval(rhs);
                let lt = self.is_tainted(&l);
                let rt = self.is_tainted(&r);
                match op {
                    BinOp::Eq | BinOp::Ne => {
                        // §5.3: two canvas reads compared for equality.
                        // The comparison result itself is a single bit —
                        // not usable as a fingerprint — so it is clean.
                        if lt && rt {
                            self.out.double_render = true;
                        }
                        AbsVal::Clean
                    }
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => AbsVal::Clean,
                    BinOp::Add
                    | BinOp::Sub
                    | BinOp::Mul
                    | BinOp::Div
                    | BinOp::Rem
                    | BinOp::And
                    | BinOp::Or => {
                        if lt || rt {
                            AbsVal::Tainted
                        } else {
                            AbsVal::Clean
                        }
                    }
                }
            }
            Expr::Unary { expr, .. } => {
                let v = self.eval(expr);
                if self.is_tainted(&v) {
                    AbsVal::Tainted
                } else {
                    AbsVal::Clean
                }
            }
            Expr::Member { object, .. } => {
                let v = self.eval(object);
                if self.is_tainted(&v) {
                    AbsVal::Tainted
                } else {
                    AbsVal::Clean
                }
            }
            Expr::Index { object, index } => {
                let o = self.eval(object);
                self.eval(index);
                if self.is_tainted(&o) {
                    AbsVal::Tainted
                } else {
                    AbsVal::Clean
                }
            }
            Expr::Call { name, args } => {
                let mut any_tainted = false;
                for arg in args {
                    let v = self.eval(arg);
                    any_tainted |= self.is_tainted(&v);
                }
                match self.summaries.get(name) {
                    Some(summary) => {
                        let summary = summary.clone();
                        self.out.absorb_summary(&summary);
                        if summary.returns_tainted || (summary.param_to_return && any_tainted) {
                            AbsVal::Tainted
                        } else {
                            AbsVal::Clean
                        }
                    }
                    // Unknown / builtin function (`len`, `str`, …): the
                    // result derives from the arguments.
                    None => {
                        if any_tainted {
                            AbsVal::Tainted
                        } else {
                            AbsVal::Clean
                        }
                    }
                }
            }
            Expr::MethodCall {
                object,
                method,
                args,
            } => self.eval_method(object, method, args),
            Expr::Assign { target, value } => self.eval_assign(target, value),
        }
    }

    fn eval_method(&mut self, object: &Expr, method: &str, args: &[Expr]) -> AbsVal {
        // document.createElement("canvas") births a tracked canvas.
        if method == "createElement"
            && matches!(object, Expr::Ident(name) if name == "document")
            && matches!(args.first(), Some(Expr::Str(tag)) if tag == "canvas")
        {
            let id = self.next_canvas;
            self.next_canvas += 1;
            self.canvases.insert(id, CanvasInfo::default());
            return AbsVal::Canvas(id);
        }

        let objv = self.eval(object);
        let mut any_arg_tainted = false;
        for arg in args {
            let v = self.eval(arg);
            any_arg_tainted |= self.is_tainted(&v);
        }

        match method {
            "getContext" => {
                if let AbsVal::Canvas(id) = objv {
                    return AbsVal::Context(id);
                }
                AbsVal::Clean
            }
            "toDataURL" => {
                let (width, height) = self.dims_of(objv);
                let mime = match args.first() {
                    None => MimeClass::Png,
                    Some(Expr::Str(m)) if m == "image/png" => MimeClass::Png,
                    Some(Expr::Str(_)) => MimeClass::Lossy,
                    Some(_) => MimeClass::Dynamic,
                };
                self.out.add_read(CanvasRead {
                    mime,
                    width,
                    height,
                });
                AbsVal::Tainted
            }
            "getImageData" => {
                // Raw pixels are lossless; the read region is the
                // (w, h) arguments.
                let lit = |e: Option<&Expr>| match e {
                    Some(Expr::Number(n)) => DimClass::Literal(n.max(0.0) as u32),
                    _ => DimClass::Dynamic,
                };
                self.out.add_read(CanvasRead {
                    mime: MimeClass::Png,
                    width: lit(args.get(2)),
                    height: lit(args.get(3)),
                });
                AbsVal::Tainted
            }
            m if ANIMATION_METHODS.contains(&m) => {
                self.out.animation = true;
                AbsVal::Clean
            }
            m if SINK_METHODS.contains(&m) => {
                if any_arg_tainted || self.is_tainted(&objv) {
                    self.out.exfil_sink = true;
                }
                AbsVal::Clean
            }
            _ => {
                // Mutating call with tainted payload (`arr.push(fp)`)
                // taints an identifier receiver for later reads.
                if any_arg_tainted {
                    if let Expr::Ident(name) = object {
                        if !matches!(objv, AbsVal::Canvas(_) | AbsVal::Context(_)) {
                            self.env.insert(name.clone(), AbsVal::Tainted);
                        }
                    }
                }
                // String/array ops on a tainted receiver derive from it.
                if self.is_tainted(&objv) || any_arg_tainted {
                    AbsVal::Tainted
                } else {
                    AbsVal::Clean
                }
            }
        }
    }

    fn eval_assign(&mut self, target: &AssignTarget, value: &Expr) -> AbsVal {
        let v = self.eval(value);
        match target {
            AssignTarget::Ident(name) => {
                self.env.insert(name.clone(), v);
            }
            AssignTarget::Member { object, name } => {
                let objv = self.eval(object);
                if let AbsVal::Canvas(id) = objv {
                    if name == "width" || name == "height" {
                        let dim = match value {
                            Expr::Number(n) => DimClass::Literal(n.max(0.0) as u32),
                            _ => DimClass::Dynamic,
                        };
                        if let Some(info) = self.canvases.get_mut(&id) {
                            if name == "width" {
                                info.width = dim;
                            } else {
                                info.height = dim;
                            }
                        }
                    }
                }
                // Beacon pattern: img.src = "...?fp=" + data.
                if name == "src" && self.is_tainted(&v) {
                    self.out.exfil_sink = true;
                }
            }
            AssignTarget::Index { object, index } => {
                let objv = self.eval(object);
                self.eval(index);
                if self.is_tainted(&v) {
                    if let Expr::Ident(name) = object {
                        if !matches!(objv, AbsVal::Canvas(_) | AbsVal::Context(_)) {
                            self.env.insert(name.clone(), AbsVal::Tainted);
                        }
                    }
                }
            }
        }
        v
    }

    /// Dimensions of the canvas behind a read receiver; unknown receivers
    /// (a value returned from elsewhere) degrade to dynamic.
    fn dims_of(&self, objv: AbsVal) -> (DimClass, DimClass) {
        match objv {
            AbsVal::Canvas(id) | AbsVal::Context(id) => match self.canvases.get(&id) {
                Some(info) => (info.width, info.height),
                None => (DimClass::Dynamic, DimClass::Dynamic),
            },
            _ => (DimClass::Dynamic, DimClass::Dynamic),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_script::parse;

    fn facts(src: &str) -> TaintFacts {
        analyze(&parse(src).unwrap())
    }

    #[test]
    fn read_taints_through_assignment_chain() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let a = c.toDataURL();
            let b = a;
            let d = null;
            d = b;
            d;
            "#,
        );
        assert_eq!(f.reads.len(), 1);
        assert!(f.exfil, "final expression carries the read");
        assert!(!f.double_render);
    }

    #[test]
    fn taint_propagates_through_string_concat() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let fp = "prefix:" + c.toDataURL();
            fp;
            "#,
        );
        assert!(f.exfil);
    }

    #[test]
    fn taint_propagates_through_function_calls() {
        // Through a returning function...
        let f = facts(
            r#"
            fn grab() {
                let c = document.createElement("canvas");
                return c.toDataURL();
            }
            let v = grab();
            v;
            "#,
        );
        assert_eq!(f.reads.len(), 1);
        assert!(f.exfil);

        // ...and through a parameter-passing one.
        let f = facts(
            r#"
            fn wrap(s) { return "v=" + s; }
            let c = document.createElement("canvas");
            let v = wrap(c.toDataURL());
            v;
            "#,
        );
        assert!(f.exfil);
    }

    #[test]
    fn clean_function_results_stay_clean() {
        let f = facts(
            r#"
            fn shout(s) { return s + "!"; }
            let c = document.createElement("canvas");
            let fp = c.toDataURL();
            let v = shout("hello");
            v;
            "#,
        );
        assert_eq!(f.reads.len(), 1);
        assert!(!f.exfil, "final value derives only from a literal");
    }

    #[test]
    fn double_render_requires_both_operands_tainted() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let a = c.toDataURL();
            let b = c.toDataURL();
            let same = a == b;
            "#,
        );
        assert!(f.double_render);

        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let probe = c.toDataURL("image/webp");
            probe.indexOf("data:image/webp") == 0;
            "#,
        );
        assert!(!f.double_render, "literal comparand is not a second render");
    }

    #[test]
    fn explicit_sinks_mark_exfil() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let fp = c.toDataURL();
            beacon.sendBeacon("/collect", fp);
            let done = true;
            "#,
        );
        assert!(f.exfil);

        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let fp = c.toDataURL();
            img.src = "https://t.example/p?d=" + fp;
            let done = true;
            "#,
        );
        assert!(f.exfil);
    }

    #[test]
    fn tainted_array_push_then_join_is_exfil() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let parts = [];
            parts.push(c.toDataURL());
            parts.join("|");
            "#,
        );
        assert!(f.exfil);
    }

    #[test]
    fn dims_track_literal_assignments() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            c.width = 12; c.height = 12;
            c.toDataURL();
            "#,
        );
        assert_eq!(
            f.reads,
            vec![CanvasRead {
                mime: MimeClass::Png,
                width: DimClass::Literal(12),
                height: DimClass::Literal(12),
            }]
        );
    }

    #[test]
    fn default_canvas_is_300_by_150() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            c.toDataURL();
            "#,
        );
        assert_eq!(f.reads[0].width, DimClass::Literal(300));
        assert_eq!(f.reads[0].height, DimClass::Literal(150));
    }

    #[test]
    fn branch_taint_joins() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let v = "clean";
            if (cond) {
                v = c.toDataURL();
            } else {
                v = "still clean";
            }
            v;
            "#,
        );
        assert!(f.exfil, "taint from either branch survives the join");
    }

    #[test]
    fn branch_dim_disagreement_degrades_to_dynamic() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            if (cond) { c.width = 10; } else { c.width = 100; }
            c.toDataURL();
            "#,
        );
        assert_eq!(f.reads[0].width, DimClass::Dynamic);
        assert_eq!(f.reads[0].height, DimClass::Literal(150));
    }

    #[test]
    fn loop_carried_taint_converges() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let a = c.toDataURL();
            let b = "x";
            let d = "y";
            for (let i = 0; i < 3; i = i + 1) {
                d = b;
                b = a;
            }
            d;
            "#,
        );
        assert!(f.exfil, "two-step loop-carried propagation");
    }

    #[test]
    fn animation_methods_are_reachable_facts() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let x = c.getContext("2d");
            x.save();
            x.restore();
            c.toDataURL();
            "#,
        );
        assert!(f.animation);
        // Declared-but-never-called animation does not fire.
        let f = facts(
            r#"
            fn unused() { ctx.save(); }
            let c = document.createElement("canvas");
            c.toDataURL();
            "#,
        );
        assert!(!f.animation);
    }

    #[test]
    fn uncalled_function_reads_are_unreachable() {
        let f = facts(
            r#"
            fn never() {
                let c = document.createElement("canvas");
                return c.toDataURL();
            }
            let x = 1;
            x;
            "#,
        );
        assert!(f.reads.is_empty());
    }

    #[test]
    fn getimagedata_region_uses_literal_args() {
        let f = facts(
            r#"
            let c = document.createElement("canvas");
            let x = c.getContext("2d");
            let px = x.getImageData(0, 0, 64, 32);
            px;
            "#,
        );
        assert_eq!(
            f.reads,
            vec![CanvasRead {
                mime: MimeClass::Png,
                width: DimClass::Literal(64),
                height: DimClass::Literal(32),
            }]
        );
        assert!(f.exfil);
    }
}
