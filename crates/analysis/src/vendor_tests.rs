//! Ground-truth tests: the static classifier against every modeled
//! vendor script and every benign canvas user in `canvassing-vendors`.

use crate::{classify_source, Verdict};
use canvassing_vendors::benign::{self, BenignKind};
use canvassing_vendors::{all_vendors, scripts, VendorId};

fn verdict(id: VendorId, commercial: bool) -> Verdict {
    let src = scripts::source(id, "site-token-1234", commercial);
    classify_source(&src).verdict
}

#[test]
fn every_vendor_script_is_statically_fingerprinting() {
    for vendor in all_vendors() {
        for commercial in [false, true] {
            let v = verdict(vendor.id, commercial);
            assert!(
                v.is_fingerprinting(),
                "{:?} (commercial={commercial}) classified {v:?}",
                vendor.id
            );
        }
    }
}

#[test]
fn no_vendor_script_is_inconclusive() {
    for vendor in all_vendors() {
        for commercial in [false, true] {
            assert_ne!(
                verdict(vendor.id, commercial),
                Verdict::Inconclusive,
                "{:?} (commercial={commercial})",
                vendor.id
            );
        }
    }
}

#[test]
fn static_double_render_matches_vendor_ground_truth() {
    for vendor in all_vendors() {
        let v = verdict(vendor.id, false);
        let Verdict::Fingerprinting { double_render, .. } = v else {
            panic!("{:?} classified {v:?}", vendor.id);
        };
        assert_eq!(
            double_render, vendor.double_render,
            "{:?}: static §5.3 flag disagrees with Table-3 ground truth",
            vendor.id
        );
    }
}

#[test]
fn exact_vendor_verdicts() {
    use VendorId::*;
    let expect = |id: VendorId, exfil: bool, double_render: bool| {
        assert_eq!(
            verdict(id, false),
            Verdict::Fingerprinting {
                exfil,
                double_render
            },
            "{id:?}"
        );
    };
    // Vendors that hand the fingerprint back to the page (or beacon it).
    expect(Akamai, true, false);
    expect(Imperva, true, false);
    expect(AwsWaf, true, false);
    expect(Signifyd, true, false);
    expect(SiftScience, true, false);
    expect(Shopify, true, false);
    expect(GeeTest, true, false);
    // FingerprintJS: exfiltrates *and* runs the §5.3 stability check.
    expect(FingerprintJs, true, true);
    // Double-render checkers whose scripts keep the result local.
    expect(MailRu, false, true);
    expect(FingerprintJsLegacy, false, true);
    expect(Adscore, false, true);
    // Fingerprinters with neither statically visible exfil nor §5.3.
    expect(InsurAds, false, false);
    expect(PerimeterX, false, false);
}

#[test]
fn every_benign_kind_is_statically_benign() {
    for kind in BenignKind::all() {
        for variant in 0..8 {
            let src = benign::source(*kind, variant);
            let analysis = classify_source(&src);
            assert_eq!(
                analysis.verdict,
                Verdict::Benign,
                "{kind:?} variant {variant}: {:?}",
                analysis.findings
            );
        }
    }
}

#[test]
fn generic_fingerprinters_are_fingerprinting_with_exfil() {
    // Deterministic sweep standing in for the proptest below (the vendored
    // proptest stub compiles but does not execute closure bodies).
    for n in 0..64u64 {
        let src = scripts::generic_fingerprinter(n);
        let v = classify_source(&src).verdict;
        assert_eq!(
            v,
            Verdict::Fingerprinting {
                exfil: true,
                double_render: false
            },
            "generic_fingerprinter({n})"
        );
    }
}

#[test]
fn imperva_verdict_is_stable_across_site_tokens() {
    for host in ["a.example", "shop.example", "news.example.co.uk"] {
        let token = scripts::site_token(host);
        let src = scripts::source(VendorId::Imperva, &token, false);
        assert!(classify_source(&src).verdict.is_fingerprinting(), "{host}");
    }
}

mod proptests {
    // The vendored proptest stub compiles `proptest!` bodies away, so the
    // imports below are only "used" against the real crate.
    #[allow(unused_imports)]
    use super::*;
    #[allow(unused_imports)]
    use proptest::prelude::*;

    proptest! {
        // No static false positives / false negatives across the generated
        // corpus: every generic fingerprinter is Fingerprinting, every
        // benign variant is Benign, and nothing is Inconclusive.
        #[test]
        fn generated_corpus_classifies_cleanly(n in 0u64..10_000, variant in 0u64..10_000) {
            let fp = scripts::generic_fingerprinter(n);
            prop_assert!(classify_source(&fp).verdict.is_fingerprinting());
            for kind in BenignKind::all() {
                let src = benign::source(*kind, variant);
                prop_assert_eq!(classify_source(&src).verdict, Verdict::Benign);
            }
        }
    }
}
