//! Property tests for the analysis cache: the cache and the trace
//! instrumentation must both be transparent — cached, uncached, and traced
//! lookups agree on the verdict, and the crawl-wide counters partition the
//! lookups exactly.

#![cfg(test)]
// The proptest stub expands test bodies to nothing, so strategy
// helpers and imports look unused to rustc.
#![allow(unused_imports, dead_code)]

use std::sync::Arc;

use proptest::prelude::*;

use canvassing_script::ScriptCache;
use canvassing_trace::{MetricsRegistry, VisitRecorder};

use crate::{classify_source, shard_of, AnalysisCache, SHARD_COUNT};
use canvassing_script::source_hash;

/// A small pool of script bodies spanning all three verdicts.
fn body(i: usize) -> String {
    match i % 4 {
        0 => format!(
            r#"let c{i} = document.createElement("canvas");
               let x = c{i}.getContext("2d");
               x.fillText("p{i}", 2, 2);
               c{i}.toDataURL();"#
        ),
        1 => format!("let a = {i}; a + 1;"),
        2 => format!("let broken{i} = ;"),
        _ => format!(
            r#"let c = document.createElement("canvas");
               c.width = {i};
               let x = c.getContext("2d");
               x.fillText("x", 1, 1);"#
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cached (with and without a shared compile cache) and uncached
    /// analysis agree on the verdict for any body in the pool.
    #[test]
    fn cache_paths_agree_on_verdict(picks in proptest::collection::vec(0usize..8, 1..32)) {
        let programs = ScriptCache::new();
        let with_programs = AnalysisCache::new();
        let without = AnalysisCache::new();
        for &p in &picks {
            let src = body(p);
            let direct = classify_source(&src).verdict;
            let (_, a) = with_programs.analyze(&src, Some(&programs));
            let (_, b) = without.analyze(&src, None);
            prop_assert_eq!(a.verdict, direct);
            prop_assert_eq!(b.verdict, direct);
        }
    }

    /// Shard invalidation property (hot-reload correctness): after any
    /// interleaving of lookups and shard invalidations, a lookup never
    /// answers from an entry computed under a stale epoch. The cache is
    /// checked against a shadow model tracking each body's last analysis
    /// epoch and each shard's floor: `peek` hits exactly when the model
    /// says the entry is valid, and `analyze_at` re-analyzes exactly when
    /// it says the entry is stale or missing.
    #[test]
    fn invalidation_never_serves_stale_epochs(
        ops in proptest::collection::vec((0usize..3, 0usize..8, 0usize..4), 1..64)
    ) {
        let cache = AnalysisCache::new();
        let mut model_epoch: std::collections::HashMap<usize, u64> = Default::default();
        let mut floors = [0u64; SHARD_COUNT];
        let mut epoch = 0u64;
        for &(op, pick, shard_step) in &ops {
            let src = body(pick);
            let shard = shard_of(source_hash(&src));
            match op {
                0 => {
                    // Full lookup at the current epoch: must re-analyze
                    // iff the model says the entry is stale or missing.
                    let before = cache.stats().analyses;
                    cache.analyze_at(&src, None, epoch);
                    let analyzed = cache.stats().analyses > before;
                    let model_valid =
                        model_epoch.get(&pick).is_some_and(|e| *e >= floors[shard]);
                    prop_assert_eq!(analyzed, !model_valid);
                    model_epoch.insert(pick, epoch);
                }
                1 => {
                    // Reload: raise some shard's floor to a new epoch.
                    epoch += 1;
                    let target = (shard + shard_step) % SHARD_COUNT;
                    cache.invalidate_shards([target], epoch);
                    floors[target] = floors[target].max(epoch);
                }
                _ => {
                    // Peek: hits exactly the model-valid entries.
                    let hit = cache.peek(&src).is_some();
                    let model_valid =
                        model_epoch.get(&pick).is_some_and(|e| *e >= floors[shard]);
                    prop_assert_eq!(hit, model_valid);
                }
            }
        }
    }

    /// Traced analysis returns the same verdicts and its hit/analyze
    /// counters partition the lookups.
    #[test]
    fn traced_counters_partition_lookups(picks in proptest::collection::vec(0usize..8, 1..32)) {
        let cache = AnalysisCache::new();
        let reg = Arc::new(MetricsRegistry::new());
        let rec = VisitRecorder::new("prop", Some(Arc::clone(&reg)));
        let mut distinct = std::collections::BTreeSet::new();
        for &p in &picks {
            let src = body(p);
            let (_, traced) = cache.analyze_traced(&src, None, &rec);
            prop_assert_eq!(traced.verdict, classify_source(&src).verdict);
            distinct.insert(p);
        }
        let snap = reg.snapshot();
        let hits = snap.counters.get("analysis.cache.hit").copied().unwrap_or(0);
        let analyses = snap.counters.get("analysis.analyses").copied().unwrap_or(0);
        prop_assert_eq!(hits + analyses, picks.len() as u64);
        prop_assert_eq!(analyses, distinct.len() as u64);
    }
}

/// Seeded exhaustive form of the properties above (the offline proptest
/// stub compiles but does not sample, so this pins the invariants with a
/// deterministic LCG-driven sequence).
#[test]
fn cache_transparency_and_counters_seeded() {
    let mut lcg: u64 = 0x9e3779b97f4a7c15;
    for round in 0..3 {
        let programs = ScriptCache::new();
        let cache = AnalysisCache::new();
        let reg = Arc::new(MetricsRegistry::new());
        let rec = VisitRecorder::new("seeded", Some(Arc::clone(&reg)));
        let mut distinct = std::collections::BTreeSet::new();
        let lookups = 12 + round * 10;
        for _ in 0..lookups {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let pick = (lcg >> 33) as usize % 8;
            let src = body(pick);
            let direct = classify_source(&src).verdict;
            let (_, traced) = cache.analyze_traced(&src, Some(&programs), &rec);
            assert_eq!(traced.verdict, direct, "traced cache must be transparent");
            distinct.insert(pick);
        }
        let snap = reg.snapshot();
        let hits = snap
            .counters
            .get("analysis.cache.hit")
            .copied()
            .unwrap_or(0);
        let analyses = snap.counters.get("analysis.analyses").copied().unwrap_or(0);
        assert_eq!(hits + analyses, lookups as u64);
        assert_eq!(analyses, distinct.len() as u64);
        assert_eq!(cache.stats().lookups(), lookups as u64);
    }
}

/// Seeded exhaustive twin of `invalidation_never_serves_stale_epochs`
/// (the offline proptest stub does not sample): drives a long LCG-chosen
/// interleaving of lookups, shard invalidations, and peeks against the
/// same shadow model, so post-reload lookups provably never answer from
/// a verdict computed under a stale blocklist epoch.
#[test]
fn invalidation_never_serves_stale_epochs_seeded() {
    let cache = AnalysisCache::new();
    let mut model_epoch: std::collections::HashMap<usize, u64> = Default::default();
    let mut floors = [0u64; SHARD_COUNT];
    let mut epoch = 0u64;
    let mut lcg: u64 = 0x5deece66d;
    let mut stale_refreshes_expected = 0u64;
    for _ in 0..600 {
        lcg = lcg
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let roll = (lcg >> 33) as usize;
        let pick = roll % 8;
        let src = body(pick);
        let shard = shard_of(source_hash(&src));
        match roll % 5 {
            0 | 1 => {
                let before = cache.stats().analyses;
                let (_, analysis) = cache.analyze_at(&src, None, epoch);
                assert_eq!(
                    analysis.verdict,
                    classify_source(&src).verdict,
                    "re-analysis stays verdict-transparent"
                );
                let analyzed = cache.stats().analyses > before;
                let entry = model_epoch.get(&pick).copied();
                let model_valid = entry.is_some_and(|e| e >= floors[shard]);
                assert_eq!(analyzed, !model_valid, "analyze iff stale or missing");
                if entry.is_some() && !model_valid {
                    stale_refreshes_expected += 1;
                }
                model_epoch.insert(pick, epoch);
            }
            2 => {
                epoch += 1;
                let target = roll % SHARD_COUNT;
                cache.invalidate_shards([target], epoch);
                floors[target] = floors[target].max(epoch);
            }
            _ => {
                let hit = cache.peek(&src).is_some();
                let model_valid = model_epoch.get(&pick).is_some_and(|e| *e >= floors[shard]);
                assert_eq!(hit, model_valid, "peek hits exactly the valid entries");
            }
        }
    }
    assert!(epoch > 0, "the schedule must exercise reloads");
    assert!(
        stale_refreshes_expected > 0,
        "the schedule must exercise stale refreshes"
    );
    let epochs = cache.epoch_stats();
    assert_eq!(epochs.stale_refreshes, stale_refreshes_expected);
    assert!(epochs.peeks >= epochs.peek_hits);
}
