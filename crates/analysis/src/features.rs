//! Syntactic canvas-API feature extraction.
//!
//! A single recursive walk over every statement and expression —
//! including function bodies, whether or not they are ever called —
//! counting the canvas calls the paper's heuristics care about. The walk
//! is purely syntactic: reachability and dataflow live in [`crate::taint`];
//! this vector is what the lint tool prints and what downstream feature
//! consumers (e.g. a learned classifier) would train on.

use canvassing_script::{AssignTarget, Expr, Program, Stmt};
use serde::{Deserialize, Serialize};

/// Methods whose use marks a script as animating rather than
/// fingerprinting — must match `canvassing::detect::ANIMATION_METHODS`.
pub(crate) const ANIMATION_METHODS: &[&str] = &["save", "restore"];

/// Per-script canvas-API feature vector.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CanvasFeatures {
    /// `document.createElement("canvas")` calls.
    pub canvases_created: u32,
    /// `fillText` calls.
    pub fill_text_calls: u32,
    /// `fillRect` calls.
    pub fill_rect_calls: u32,
    /// `arc` calls.
    pub arc_calls: u32,
    /// `toDataURL` calls.
    pub to_data_url_calls: u32,
    /// `getImageData` calls.
    pub get_image_data_calls: u32,
    /// `measureText` calls.
    pub measure_text_calls: u32,
    /// Animation-associated calls (`save`, `restore`) — the paper's third
    /// filter heuristic.
    pub animation_calls: u32,
    /// Literal strings drawn with `fillText` (the test-canvas pangrams).
    pub drawn_text: Vec<String>,
    /// Literal canvas dimension assignments (`c.width = 260`), in
    /// assignment order as `(property, value)` pairs.
    pub literal_dims: Vec<(String, f64)>,
    /// `toDataURL` calls whose first argument is a non-`image/png`
    /// string literal (lossy-format reads).
    pub lossy_reads: u32,
    /// `toDataURL` calls whose MIME argument is not a string literal.
    pub dynamic_mime_reads: u32,
}

/// Extracts the feature vector from a compiled program.
pub fn extract(program: &Program) -> CanvasFeatures {
    let mut f = CanvasFeatures::default();
    walk_stmts(&program.stmts, &mut f);
    f
}

fn walk_stmts(stmts: &[Stmt], f: &mut CanvasFeatures) {
    for stmt in stmts {
        walk_stmt(stmt, f);
    }
}

fn walk_stmt(stmt: &Stmt, f: &mut CanvasFeatures) {
    match stmt {
        Stmt::Let { value, .. } => walk_expr(value, f),
        Stmt::Expr(e) => walk_expr(e, f),
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            walk_expr(cond, f);
            walk_stmts(then_branch, f);
            walk_stmts(else_branch, f);
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, f);
            walk_stmts(body, f);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(init) = init {
                walk_stmt(init, f);
            }
            if let Some(cond) = cond {
                walk_expr(cond, f);
            }
            if let Some(step) = step {
                walk_expr(step, f);
            }
            walk_stmts(body, f);
        }
        Stmt::Return(Some(e)) => walk_expr(e, f),
        Stmt::Return(None) | Stmt::Break | Stmt::Continue => {}
        Stmt::FnDecl(decl) => walk_stmts(&decl.body, f),
    }
}

fn walk_expr(expr: &Expr, f: &mut CanvasFeatures) {
    match expr {
        Expr::Number(_) | Expr::Str(_) | Expr::Bool(_) | Expr::Null | Expr::Ident(_) => {}
        Expr::Array(items) => {
            for item in items {
                walk_expr(item, f);
            }
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, f);
            walk_expr(rhs, f);
        }
        Expr::Unary { expr, .. } => walk_expr(expr, f),
        Expr::Member { object, .. } => walk_expr(object, f),
        Expr::Index { object, index } => {
            walk_expr(object, f);
            walk_expr(index, f);
        }
        Expr::Call { args, .. } => {
            for arg in args {
                walk_expr(arg, f);
            }
        }
        Expr::MethodCall {
            object,
            method,
            args,
        } => {
            record_method(object, method, args, f);
            walk_expr(object, f);
            for arg in args {
                walk_expr(arg, f);
            }
        }
        Expr::Assign { target, value } => {
            match target.as_ref() {
                AssignTarget::Ident(_) => {}
                AssignTarget::Member { object, name } => {
                    if name == "width" || name == "height" {
                        if let Expr::Number(n) = value.as_ref() {
                            f.literal_dims.push((name.clone(), *n));
                        }
                    }
                    walk_expr(object, f);
                }
                AssignTarget::Index { object, index } => {
                    walk_expr(object, f);
                    walk_expr(index, f);
                }
            }
            walk_expr(value, f);
        }
    }
}

fn record_method(object: &Expr, method: &str, args: &[Expr], f: &mut CanvasFeatures) {
    match method {
        "createElement"
            if matches!(object, Expr::Ident(name) if name == "document")
                && matches!(args.first(), Some(Expr::Str(tag)) if tag == "canvas") =>
        {
            f.canvases_created += 1;
        }
        "fillText" => {
            f.fill_text_calls += 1;
            if let Some(Expr::Str(text)) = args.first() {
                f.drawn_text.push(text.clone());
            }
        }
        "fillRect" => f.fill_rect_calls += 1,
        "arc" => f.arc_calls += 1,
        "measureText" => f.measure_text_calls += 1,
        "toDataURL" => {
            f.to_data_url_calls += 1;
            match args.first() {
                None => {}
                Some(Expr::Str(mime)) if mime != "image/png" => f.lossy_reads += 1,
                Some(Expr::Str(_)) => {}
                Some(_) => f.dynamic_mime_reads += 1,
            }
        }
        "getImageData" => f.get_image_data_calls += 1,
        m if ANIMATION_METHODS.contains(&m) => f.animation_calls += 1,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_script::parse;

    fn features(src: &str) -> CanvasFeatures {
        extract(&parse(src).unwrap())
    }

    #[test]
    fn counts_canvas_api_usage() {
        let f = features(
            r##"
            let c = document.createElement("canvas");
            c.width = 260; c.height = 48;
            let x = c.getContext("2d");
            x.fillRect(2, 2, 180, 18);
            x.fillText("Sphinx of black quartz", 3, 22);
            x.arc(60, 60, 40, 0, 6.28, true);
            c.toDataURL();
            "##,
        );
        assert_eq!(f.canvases_created, 1);
        assert_eq!(f.fill_rect_calls, 1);
        assert_eq!(f.fill_text_calls, 1);
        assert_eq!(f.arc_calls, 1);
        assert_eq!(f.to_data_url_calls, 1);
        assert_eq!(f.drawn_text, vec!["Sphinx of black quartz".to_string()]);
        assert_eq!(
            f.literal_dims,
            vec![("width".to_string(), 260.0), ("height".to_string(), 48.0)]
        );
        assert_eq!(f.lossy_reads, 0);
        assert_eq!(f.dynamic_mime_reads, 0);
    }

    #[test]
    fn walks_function_bodies_and_loops() {
        let f = features(
            r##"
            fn draw() {
                let c = document.createElement("canvas");
                let x = c.getContext("2d");
                for (let i = 0; i < 3; i = i + 1) {
                    x.save();
                    x.fillRect(i, 0, 4, 4);
                    x.restore();
                }
                return c.toDataURL("image/webp");
            }
            "##,
        );
        assert_eq!(f.canvases_created, 1);
        assert_eq!(f.animation_calls, 2);
        assert_eq!(f.fill_rect_calls, 1);
        assert_eq!(f.lossy_reads, 1);
    }

    #[test]
    fn dynamic_mime_is_flagged() {
        let f = features(
            r#"
            let fmt = "image/png";
            let c = document.createElement("canvas");
            c.toDataURL(fmt);
            "#,
        );
        assert_eq!(f.dynamic_mime_reads, 1);
        assert_eq!(f.lossy_reads, 0);
    }
}
