//! # canvassing-analysis
//!
//! A *static* fingerprinting classifier over compiled canvascript
//! [`Program`](canvassing_script::Program) ASTs — the pre-execution
//! counterpart to the paper's dynamic §3.2 interception heuristics.
//!
//! The pass has three layers:
//!
//! 1. **Feature extraction** ([`features`]) — a syntactic walk counting
//!    canvas-API usage (`fillText`, `arc`, `toDataURL`, `getImageData`,
//!    …), the literal text drawn, and animation-method usage (the paper's
//!    third filter heuristic);
//! 2. **Taint / dataflow analysis** ([`taint`]) — an intraprocedural
//!    may-taint analysis from canvas-read sources (`toDataURL`,
//!    `getImageData`) through variables, function calls (via summaries),
//!    and string operations to network/storage sinks, also tracking each
//!    canvas's literal dimensions and each read's requested MIME type;
//! 3. **Verdict synthesis** — the feature vector and dataflow facts are
//!    folded into a per-script [`Verdict`] mirroring the §3.2 exclusion
//!    heuristics exactly, plus rule-ID'd [`Finding`]s for the lint tool.
//!
//! The classifier is deliberately *decision-compatible* with the dynamic
//! detector: a script is `Fingerprinting` iff its reachable canvas reads
//! include at least one lossless read of a ≥16×16 canvas by a
//! non-animating script — the same predicate `canvassing::detect` applies
//! to the recorded extractions. `Inconclusive` is reserved for scripts
//! whose reads cannot be classified statically (dynamic MIME argument,
//! non-literal dimensions, or a parse failure).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod absint;
pub mod cache;
pub mod features;
mod proptests;
pub mod taint;

use serde::{Deserialize, Serialize};

use canvassing_script::Program;

pub use cache::{shard_of, AnalysisCache, AnalysisStats, EpochCacheStats, SHARD_COUNT};
pub use features::CanvasFeatures;
pub use taint::{CanvasRead, DimClass, MimeClass, TaintFacts};

/// The static per-script verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The script fingerprints: it performs at least one canvas read the
    /// §3.2 heuristics would accept.
    Fingerprinting {
        /// Canvas-derived data reaches an exfiltration channel (an
        /// explicit network/storage sink, or the script's final
        /// expression value — the value handed back to the host page).
        exfil: bool,
        /// The §5.3 double-render signature: two canvas reads compared
        /// for equality (the randomization-evasion stability check).
        double_render: bool,
    },
    /// Every canvas read is excluded by the §3.2 heuristics (lossy
    /// format, too-small canvas, animation script), or the script never
    /// reads a canvas.
    Benign,
    /// The script could not be classified statically (dynamic MIME or
    /// dimensions, unresolvable read receiver, or a parse failure).
    Inconclusive,
}

impl Verdict {
    /// Whether the verdict is `Fingerprinting { .. }`.
    pub fn is_fingerprinting(&self) -> bool {
        matches!(self, Verdict::Fingerprinting { .. })
    }

    /// Short stable label for trace events and reports, encoding the
    /// fingerprinting sub-flags (e.g. `"fingerprinting+exfil"`).
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Fingerprinting {
                exfil: false,
                double_render: false,
            } => "fingerprinting",
            Verdict::Fingerprinting {
                exfil: true,
                double_render: false,
            } => "fingerprinting+exfil",
            Verdict::Fingerprinting {
                exfil: false,
                double_render: true,
            } => "fingerprinting+double-render",
            Verdict::Fingerprinting {
                exfil: true,
                double_render: true,
            } => "fingerprinting+exfil+double-render",
            Verdict::Benign => "benign",
            Verdict::Inconclusive => "inconclusive",
        }
    }
}

/// Stable identifiers for lint findings, printed by the `lint` binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuleId {
    /// `CF-READ`: a lossless, large-canvas read by a non-animating script.
    CfRead,
    /// `CF-DOUBLE-RENDER`: two canvas reads compared for equality (§5.3).
    CfDoubleRender,
    /// `CF-EXFIL`: canvas-derived data reaches an exfiltration channel.
    CfExfil,
    /// `BN-NO-READ`: the script never reads a canvas.
    BnNoRead,
    /// `BN-LOSSY`: a read excluded by the lossy-format heuristic.
    BnLossy,
    /// `BN-SMALL`: a read excluded by the <16×16 size heuristic.
    BnSmall,
    /// `BN-ANIM`: the script trips the animation heuristic.
    BnAnim,
    /// `INC-DYN-MIME`: a read whose MIME argument is not a literal.
    IncDynMime,
    /// `INC-DYN-DIMS`: a read of a canvas with non-literal dimensions.
    IncDynDims,
    /// `INC-PARSE`: the script failed to parse.
    IncParse,
    /// `CFB-READ`: the bytecode engine proved a fingerprintable read.
    CfbRead,
    /// `CFB-DOUBLE-RENDER`: the bytecode engine proved a §5.3 compare.
    CfbDoubleRender,
    /// `CFB-EXFIL`: the bytecode engine proved an exfiltration flow.
    CfbExfil,
    /// `CFB-RECOVERED`: the bytecode engine resolved a script the AST
    /// engine left `Inconclusive`.
    CfbRecovered,
}

impl RuleId {
    /// The rule's stable textual ID (what the lint binary prints).
    pub fn code(&self) -> &'static str {
        match self {
            RuleId::CfRead => "CF-READ",
            RuleId::CfDoubleRender => "CF-DOUBLE-RENDER",
            RuleId::CfExfil => "CF-EXFIL",
            RuleId::BnNoRead => "BN-NO-READ",
            RuleId::BnLossy => "BN-LOSSY",
            RuleId::BnSmall => "BN-SMALL",
            RuleId::BnAnim => "BN-ANIM",
            RuleId::IncDynMime => "INC-DYN-MIME",
            RuleId::IncDynDims => "INC-DYN-DIMS",
            RuleId::IncParse => "INC-PARSE",
            RuleId::CfbRead => "CFB-READ",
            RuleId::CfbDoubleRender => "CFB-DOUBLE-RENDER",
            RuleId::CfbExfil => "CFB-EXFIL",
            RuleId::CfbRecovered => "CFB-RECOVERED",
        }
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// One lint finding: a rule plus a human-readable detail line.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// What it saw (counts, dims, method names).
    pub detail: String,
}

/// Full static-analysis output for one script body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScriptAnalysis {
    /// The verdict.
    pub verdict: Verdict,
    /// Syntactic canvas-API feature vector.
    pub features: CanvasFeatures,
    /// Rule-ID'd findings supporting the verdict.
    pub findings: Vec<Finding>,
}

/// The positive-rule vocabulary of one analysis engine. The `BN-*` /
/// `INC-*` exclusion rules are engine-independent; only the positive
/// findings carry an engine prefix so merged verdicts stay attributable.
struct RuleSet {
    read: RuleId,
    double_render: RuleId,
    exfil: RuleId,
}

const AST_RULES: RuleSet = RuleSet {
    read: RuleId::CfRead,
    double_render: RuleId::CfDoubleRender,
    exfil: RuleId::CfExfil,
};

const BYTECODE_RULES: RuleSet = RuleSet {
    read: RuleId::CfbRead,
    double_render: RuleId::CfbDoubleRender,
    exfil: RuleId::CfbExfil,
};

/// Classifies a compiled program with the AST taint engine. This is the
/// pure core the [`AnalysisCache`] memoizes; callers inside a crawl
/// should go through the cache so each unique body is analyzed once.
pub fn classify(program: &Program) -> ScriptAnalysis {
    let features = features::extract(program);
    let facts = taint::analyze(program);
    synthesize(features, &facts, &AST_RULES)
}

/// Classifies a compiled program with the bytecode abstract interpreter
/// ([`absint`]): same §3.2 decision rule, applied to facts proven over
/// the compiled instruction stream (where constant laundering and
/// helper-call indirection are transparent). Findings use `CFB-*` rules.
pub fn classify_bytecode(program: &Program) -> ScriptAnalysis {
    let bytecode = canvassing_script::compile(program);
    let features = features::extract(program);
    let facts = absint::analyze_compiled(&bytecode);
    synthesize(features, &facts, &BYTECODE_RULES)
}

/// The two-engine cascade the crawl pipeline uses: the AST verdict
/// stands whenever it is decisive (so the bytecode engine can never
/// introduce a new false positive on scripts the AST pass already
/// excludes), and the bytecode engine adjudicates only the
/// `Inconclusive` remainder. A recovered verdict keeps both engines'
/// findings plus a `CFB-RECOVERED` marker.
pub fn classify_merged(program: &Program) -> ScriptAnalysis {
    let ast = classify(program);
    if ast.verdict != Verdict::Inconclusive {
        return ast;
    }
    let bytecode = classify_bytecode(program);
    if bytecode.verdict == Verdict::Inconclusive {
        return ast;
    }
    let mut findings = ast.findings;
    findings.push(Finding {
        rule: RuleId::CfbRecovered,
        detail: format!(
            "bytecode engine resolved an AST-inconclusive script as {}",
            bytecode.verdict.label()
        ),
    });
    findings.extend(bytecode.findings);
    ScriptAnalysis {
        verdict: bytecode.verdict,
        features: ast.features,
        findings,
    }
}

/// Folds one engine's taint facts and the shared feature vector into a
/// verdict, mirroring the dynamic detector's §3.2 exclusion order.
fn synthesize(
    features: CanvasFeatures,
    facts: &taint::TaintFacts,
    rules: &RuleSet,
) -> ScriptAnalysis {
    let mut findings = Vec::new();

    if facts.reads.is_empty() {
        findings.push(Finding {
            rule: RuleId::BnNoRead,
            detail: "no reachable canvas read".into(),
        });
        return ScriptAnalysis {
            verdict: Verdict::Benign,
            features,
            findings,
        };
    }

    if facts.animation {
        findings.push(Finding {
            rule: RuleId::BnAnim,
            detail: "script calls animation methods (save/restore)".into(),
        });
        return ScriptAnalysis {
            verdict: Verdict::Benign,
            features,
            findings,
        };
    }

    // Mirror the dynamic per-extraction exclusion: a read fingerprints
    // iff it is lossless and both canvas edges are ≥16 px. A read whose
    // MIME or dimensions are not statically known is *undecidable*; it
    // only forces `Inconclusive` when no other read already decides the
    // script positively.
    let mut positive = 0usize;
    let mut undecidable = 0usize;
    for read in &facts.reads {
        match read.classify() {
            taint::ReadClass::Fingerprinting => positive += 1,
            taint::ReadClass::Lossy => findings.push(Finding {
                rule: RuleId::BnLossy,
                detail: "read excluded by the lossy-format heuristic".into(),
            }),
            taint::ReadClass::Small => findings.push(Finding {
                rule: RuleId::BnSmall,
                detail: format!("read excluded as too small ({})", read.dims_label()),
            }),
            taint::ReadClass::DynamicMime => {
                undecidable += 1;
                findings.push(Finding {
                    rule: RuleId::IncDynMime,
                    detail: "read with a non-literal MIME argument".into(),
                });
            }
            taint::ReadClass::DynamicDims => {
                undecidable += 1;
                findings.push(Finding {
                    rule: RuleId::IncDynDims,
                    detail: "lossless read of a canvas with non-literal dimensions".into(),
                });
            }
        }
    }

    if positive == 0 {
        let verdict = if undecidable > 0 {
            Verdict::Inconclusive
        } else {
            Verdict::Benign
        };
        return ScriptAnalysis {
            verdict,
            features,
            findings,
        };
    }

    findings.push(Finding {
        rule: rules.read,
        detail: format!("{positive} fingerprintable canvas read(s)"),
    });
    if facts.double_render {
        findings.push(Finding {
            rule: rules.double_render,
            detail: "two canvas reads compared for equality (§5.3 stability check)".into(),
        });
    }
    if facts.exfil {
        findings.push(Finding {
            rule: rules.exfil,
            detail: "canvas-derived value reaches an exfiltration channel".into(),
        });
    }
    ScriptAnalysis {
        verdict: Verdict::Fingerprinting {
            exfil: facts.exfil,
            double_render: facts.double_render,
        },
        features,
        findings,
    }
}

/// [`classify`] from source text; parse failures yield `Inconclusive`
/// with an `INC-PARSE` finding. Prefer [`AnalysisCache::analyze`] inside
/// crawls.
pub fn classify_source(source: &str) -> ScriptAnalysis {
    match canvassing_script::parse(source) {
        Ok(program) => classify(&program),
        Err(e) => ScriptAnalysis {
            verdict: Verdict::Inconclusive,
            features: CanvasFeatures::default(),
            findings: vec![Finding {
                rule: RuleId::IncParse,
                detail: format!("parse failed: {e}"),
            }],
        },
    }
}

/// [`classify_merged`] from source text; parse failures yield
/// `Inconclusive` with an `INC-PARSE` finding.
pub fn classify_source_merged(source: &str) -> ScriptAnalysis {
    match canvassing_script::parse(source) {
        Ok(program) => classify_merged(&program),
        Err(e) => ScriptAnalysis {
            verdict: Verdict::Inconclusive,
            features: CanvasFeatures::default(),
            findings: vec![Finding {
                rule: RuleId::IncParse,
                detail: format!("parse failed: {e}"),
            }],
        },
    }
}

#[cfg(test)]
mod vendor_tests;
