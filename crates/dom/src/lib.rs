//! # canvassing-dom
//!
//! A minimal DOM exposing instrumented `HTMLCanvasElement` and
//! `CanvasRenderingContext2D` objects to canvascript, mirroring the
//! paper's modified Tracker Radar Collector (§3.1): every method call and
//! property access on the two canvas interfaces is recorded with its
//! arguments, return value, script source URL, and timestamp.
//!
//! The crate also hosts the read-back defense hook
//! ([`document::ReadbackDefense`]) that browser anti-fingerprinting modes
//! plug into: canvas blocking (Tor-style) and pixel-noise filters
//! (per-render or per-session randomization, §5.3).

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod document;
pub mod record;

pub use document::{Document, PixelFilter, ReadbackDefense, BLOCKED_DATA_URL};
pub use record::{ApiCall, ApiInterface, CallKind, Extraction};
