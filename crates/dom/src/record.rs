//! Instrumentation records.
//!
//! The paper's crawler is DuckDuckGo's Tracker Radar Collector modified to
//! intercept "the arguments, return value, script source URL, and
//! timestamp of API calls and property accesses to the interfaces
//! `CanvasRenderingContext2D` and `HTMLCanvasElement`" (§3.1). These types
//! are that log.

use serde::{Deserialize, Serialize};

/// Which instrumented interface an event belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApiInterface {
    /// `HTMLCanvasElement`.
    Canvas,
    /// `CanvasRenderingContext2D`.
    Context2D,
}

/// Kind of interaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CallKind {
    /// Method invocation.
    Method,
    /// Property read.
    Get,
    /// Property write.
    Set,
}

/// One recorded API event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApiCall {
    /// Monotonic sequence number within the page load.
    pub seq: u64,
    /// Timestamp in (simulated) milliseconds since navigation start.
    pub timestamp_ms: u64,
    /// Interface the member belongs to.
    pub interface: ApiInterface,
    /// Method/property interaction kind.
    pub kind: CallKind,
    /// Member name (`fillText`, `toDataURL`, `fillStyle`, …).
    pub name: String,
    /// Stringified arguments (for `Set`, the assigned value).
    pub args: Vec<String>,
    /// Stringified return value when interesting (notably `toDataURL`).
    pub return_value: Option<String>,
    /// URL of the script that performed the call (the page URL for inline
    /// first-party-bundled code).
    pub script_url: String,
    /// Which canvas element (per-document index) the call targets.
    pub canvas_index: usize,
}

/// A canvas extraction event — one `toDataURL` call, the unit of analysis
/// for the whole study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Extraction {
    /// Sequence number of the corresponding [`ApiCall`].
    pub seq: u64,
    /// Timestamp in simulated milliseconds.
    pub timestamp_ms: u64,
    /// Per-document canvas index.
    pub canvas_index: usize,
    /// The full data URL returned to the script.
    pub data_url: String,
    /// MIME type actually used (`image/png`, `image/jpeg`, `image/webp`).
    pub mime: String,
    /// Canvas width at extraction time.
    pub width: u32,
    /// Canvas height at extraction time.
    pub height: u32,
    /// URL of the extracting script.
    pub script_url: String,
}

impl Extraction {
    /// Stable content hash of the data URL (used for clustering).
    pub fn content_hash(&self) -> u64 {
        canvassing_raster::content_hash(self.data_url.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extraction_hash_depends_on_data_url() {
        let mk = |url: &str| Extraction {
            seq: 0,
            timestamp_ms: 0,
            canvas_index: 0,
            data_url: url.into(),
            mime: "image/png".into(),
            width: 300,
            height: 150,
            script_url: "https://a.com/x.js".into(),
        };
        assert_eq!(mk("data:x").content_hash(), mk("data:x").content_hash());
        assert_ne!(mk("data:x").content_hash(), mk("data:y").content_hash());
    }

    #[test]
    fn api_call_serializes_to_json() {
        let call = ApiCall {
            seq: 1,
            timestamp_ms: 5,
            interface: ApiInterface::Context2D,
            kind: CallKind::Method,
            name: "fillText".into(),
            args: vec!["Cwm".into(), "2".into(), "15".into()],
            return_value: None,
            script_url: "https://cdn.example/fp.js".into(),
            canvas_index: 0,
        };
        let json = serde_json::to_string(&call).unwrap();
        let back: ApiCall = serde_json::from_str(&json).unwrap();
        assert_eq!(back, call);
    }
}
