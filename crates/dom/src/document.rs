//! The instrumented document: canvas elements, 2D contexts, and the
//! [`Host`] implementation that exposes them to canvascript.

use std::collections::HashMap;
use std::sync::Arc;

use canvassing_raster::canvas::ImageFormat;
use canvassing_raster::{Canvas2D, DeviceProfile, Surface, SurfacePool};
use canvassing_script::{Host, HostRef, RuntimeError, Value};

use crate::record::{ApiCall, ApiInterface, CallKind, Extraction};

/// A hook applied to pixels at extraction time (`toDataURL`,
/// `getImageData`). Browser anti-fingerprinting defenses (canvas
/// randomization) are implemented as pixel filters by the browser crate.
pub trait PixelFilter {
    /// Mutates the about-to-be-extracted pixels. `invocation` counts
    /// extractions within the page load: per-render noise uses it, while
    /// per-session noise ignores it (Firefox-style persistent noise —
    /// see §5.3 footnote 7).
    fn filter(&mut self, canvas_index: usize, surface: &mut Surface, invocation: u64);
}

/// Canvas-blocking defense result marker: `toDataURL` returns this fixed
/// string when the browser blocks canvas reads outright (Tor-style).
pub const BLOCKED_DATA_URL: &str = "data:,";

/// What kind of read-back defense the document applies.
#[derive(Default)]
pub enum ReadbackDefense {
    /// No defense (default browser).
    #[default]
    None,
    /// All canvas extractions return a constant (Tor-style blocking).
    Block,
    /// Pixels are filtered through the hook before extraction.
    Filter(Box<dyn PixelFilter>),
}

/// Fixed handles for singletons.
const H_DOCUMENT: HostRef = 1;
const H_WINDOW: HostRef = 2;
const H_NAVIGATOR: HostRef = 3;

/// Host-object table entry.
enum Obj {
    Canvas(usize),
    Context(usize),
    Gradient(usize),
    TextMetrics(f64),
    ImageData { w: u32, h: u32, data: Vec<u8> },
}

/// An instrumented web document with canvas support.
///
/// The document owns every canvas created via
/// `document.createElement("canvas")`, records all Canvas API activity,
/// and exposes the DOM to scripts through the [`Host`] trait.
pub struct Document {
    device: DeviceProfile,
    canvases: Vec<Canvas2D>,
    /// Reported canvas index for each live canvas in `canvases`. Live
    /// canvases and absorbed memoized renders (see [`Document::absorb_render`])
    /// draw from one shared index sequence, so `canvas_alias[vec_pos]`
    /// maps a storage position to the index recorded in API calls.
    canvas_alias: Vec<usize>,
    /// Next canvas index to hand out (counts live + absorbed canvases).
    next_canvas_index: usize,
    gradients: Vec<canvassing_raster::Gradient>,
    objects: HashMap<HostRef, Obj>,
    next_handle: HostRef,
    calls: Vec<ApiCall>,
    extractions: Vec<Extraction>,
    defense: ReadbackDefense,
    /// URL attributed to the currently executing script; the browser sets
    /// this before each script run.
    current_script_url: String,
    /// Simulated clock (ms since navigation start).
    clock_ms: u64,
    extraction_count: u64,
    /// User-agent string surfaced through `navigator.userAgent`.
    user_agent: String,
    /// Optional recycling pool for canvas pixel buffers.
    pool: Option<Arc<SurfacePool>>,
}

impl Document {
    /// Creates an empty document rendering with the given device profile.
    pub fn new(device: DeviceProfile) -> Document {
        Document {
            device,
            canvases: Vec::new(),
            canvas_alias: Vec::new(),
            next_canvas_index: 0,
            gradients: Vec::new(),
            objects: HashMap::new(),
            next_handle: 16,
            calls: Vec::new(),
            extractions: Vec::new(),
            defense: ReadbackDefense::None,
            current_script_url: String::new(),
            clock_ms: 0,
            extraction_count: 0,
            user_agent: "Mozilla/5.0 (X11; Linux x86_64) Chrome-like/125.0".into(),
            pool: None,
        }
    }

    /// Like [`Document::new`], but canvas pixel buffers are taken from and
    /// returned to `pool` (see `canvassing-raster`'s `SurfacePool`).
    /// Recycled buffers are zeroed, so rendering is byte-identical to the
    /// unpooled path.
    pub fn with_pool(device: DeviceProfile, pool: Arc<SurfacePool>) -> Document {
        let mut doc = Document::new(device);
        doc.pool = Some(pool);
        doc
    }

    /// Installs a read-back defense (used by the browser's
    /// anti-fingerprinting modes).
    pub fn set_defense(&mut self, defense: ReadbackDefense) {
        self.defense = defense;
    }

    /// Sets the script URL attributed to subsequent API calls, starting a
    /// fresh host-handle namespace for the script about to run.
    ///
    /// Handle numbers appear in recorded call args and return values
    /// (`[object #N]`), and scripts are fully isolated — no host API hands
    /// one script an object another script created — so restarting the
    /// numbering per script is invisible to script behavior while making a
    /// script's instrumentation record independent of what ran before it
    /// (the property the render memoization layer relies on). Stale
    /// entries for reused handles are simply overwritten; dead scripts
    /// cannot reach them.
    pub fn set_current_script(&mut self, url: &str) {
        self.current_script_url = url.to_string();
        self.next_handle = 16;
    }

    /// Advances the simulated clock (the browser adds network latency and
    /// think-time here).
    pub fn advance_clock(&mut self, ms: u64) {
        self.clock_ms += ms;
    }

    /// All recorded API calls, in order.
    pub fn calls(&self) -> &[ApiCall] {
        &self.calls
    }

    /// All canvas extractions, in order.
    pub fn extractions(&self) -> &[Extraction] {
        &self.extractions
    }

    /// Consumes the document, returning its records. Live canvas buffers
    /// are recycled into the pool, if one is attached.
    pub fn into_records(mut self) -> (Vec<ApiCall>, Vec<Extraction>) {
        if let Some(pool) = self.pool.take() {
            for canvas in self.canvases.drain(..) {
                pool.recycle_buffer(canvas.into_buffer());
            }
        }
        (self.calls, self.extractions)
    }

    /// Number of canvas elements created (live plus absorbed memoized
    /// renders).
    pub fn canvas_count(&self) -> usize {
        self.next_canvas_index
    }

    /// Replays a memoized script render into this document.
    ///
    /// `calls` / `extractions` must be *normalized* records: produced by
    /// running the script on a fresh scratch document (clock 0, no prior
    /// calls, no defense), so every `seq`, `timestamp_ms`, and
    /// `canvas_index` is relative to zero. Relocation is a pure affine
    /// offset because scripts are isolated — a script cannot observe other
    /// scripts' canvases, the clock, or record counters through any host
    /// API, so its behavior is independent of the document state it runs
    /// in. `record()` advances the clock by exactly 1ms per call and
    /// extractions advance nothing, which is why the clock advances by
    /// `calls.len()` here.
    pub fn absorb_render(
        &mut self,
        calls: &[ApiCall],
        extractions: &[Extraction],
        canvases_created: usize,
        script_url: &str,
    ) {
        let seq_base = self.calls.len() as u64;
        let clock_base = self.clock_ms;
        let canvas_base = self.next_canvas_index;
        for c in calls {
            self.calls.push(ApiCall {
                seq: c.seq + seq_base,
                timestamp_ms: c.timestamp_ms + clock_base,
                interface: c.interface,
                kind: c.kind,
                name: c.name.clone(),
                args: c.args.clone(),
                return_value: c.return_value.clone(),
                script_url: script_url.to_string(),
                canvas_index: c.canvas_index + canvas_base,
            });
        }
        for e in extractions {
            self.extractions.push(Extraction {
                seq: e.seq + seq_base,
                timestamp_ms: e.timestamp_ms + clock_base,
                canvas_index: e.canvas_index + canvas_base,
                data_url: e.data_url.clone(),
                mime: e.mime.clone(),
                width: e.width,
                height: e.height,
                script_url: script_url.to_string(),
            });
        }
        self.clock_ms += calls.len() as u64;
        self.extraction_count += extractions.len() as u64;
        self.next_canvas_index += canvases_created;
    }

    /// Read access to a canvas's backing surface (tests / drawImage).
    pub fn canvas_surface(&self, index: usize) -> Option<&Surface> {
        self.canvases.get(index).map(|c| c.surface())
    }

    fn alloc(&mut self, obj: Obj) -> HostRef {
        let h = self.next_handle;
        self.next_handle += 1;
        self.objects.insert(h, obj);
        h
    }

    /// Maps a canvas storage position to its reported index (they diverge
    /// once memoized renders have been absorbed).
    fn reported_index(&self, vec_pos: usize) -> usize {
        self.canvas_alias.get(vec_pos).copied().unwrap_or(vec_pos)
    }

    fn record(
        &mut self,
        interface: ApiInterface,
        kind: CallKind,
        name: &str,
        args: Vec<String>,
        return_value: Option<String>,
        canvas_index: usize,
    ) {
        self.clock_ms += 1;
        self.calls.push(ApiCall {
            seq: self.calls.len() as u64,
            timestamp_ms: self.clock_ms,
            interface,
            kind,
            name: name.to_string(),
            args,
            return_value,
            script_url: self.current_script_url.clone(),
            canvas_index: self.reported_index(canvas_index),
        });
    }

    fn canvas_index(&self, h: HostRef) -> Result<usize, RuntimeError> {
        match self.objects.get(&h) {
            Some(Obj::Canvas(i)) | Some(Obj::Context(i)) => Ok(*i),
            _ => Err(RuntimeError::new("not a canvas object")),
        }
    }

    fn extract_data_url(&mut self, index: usize, mime: &str, quality: Option<f64>) -> String {
        self.extraction_count += 1;
        let canvas = &self.canvases[index];
        let url = match &mut self.defense {
            ReadbackDefense::None => canvas.to_data_url(mime, quality),
            ReadbackDefense::Block => BLOCKED_DATA_URL.to_string(),
            ReadbackDefense::Filter(filter) => {
                let mut surface = canvas.surface().clone();
                filter.filter(index, &mut surface, self.extraction_count);
                let format = ImageFormat::from_mime(mime);
                let q = quality.unwrap_or(0.92).clamp(0.0, 1.0);
                let bytes = match format {
                    ImageFormat::Png => canvassing_raster::png::encode(&surface),
                    ImageFormat::Jpeg => canvassing_raster::lossy::encode_jpeg(&surface, q),
                    ImageFormat::Webp => canvassing_raster::lossy::encode_webp(&surface, q),
                };
                format!(
                    "data:{};base64,{}",
                    format.mime(),
                    canvassing_raster::base64::encode(&bytes)
                )
            }
        };
        let canvas = &self.canvases[index];
        self.extractions.push(Extraction {
            seq: self.calls.len() as u64, // the call is recorded right after
            timestamp_ms: self.clock_ms + 1,
            canvas_index: self.reported_index(index),
            data_url: url.clone(),
            mime: ImageFormat::from_mime(mime).mime().to_string(),
            width: canvas.width(),
            height: canvas.height(),
            script_url: self.current_script_url.clone(),
        });
        url
    }
}

fn f(v: Option<&Value>) -> f64 {
    v.and_then(Value::as_num).unwrap_or(0.0)
}

fn s(v: Option<&Value>) -> String {
    v.map(Value::to_display_string).unwrap_or_default()
}

fn fmt_args(args: &[Value]) -> Vec<String> {
    args.iter()
        .map(|a| {
            let text = a.to_display_string();
            // Large data blobs (putImageData arrays) are truncated in the
            // log, like real crawler instrumentation does.
            if text.len() > 256 {
                format!("{}…[{} bytes]", &text[..64], text.len())
            } else {
                text
            }
        })
        .collect()
}

impl Host for Document {
    fn global(&mut self, name: &str) -> Option<Value> {
        match name {
            "document" => Some(Value::Host(H_DOCUMENT)),
            "window" => Some(Value::Host(H_WINDOW)),
            "navigator" => Some(Value::Host(H_NAVIGATOR)),
            _ => None,
        }
    }

    fn get_prop(&mut self, obj: HostRef, name: &str) -> Result<Value, RuntimeError> {
        if obj == H_NAVIGATOR {
            return match name {
                "userAgent" => Ok(Value::Str(self.user_agent.clone())),
                "webdriver" => Ok(Value::Bool(false)),
                _ => Ok(Value::Null),
            };
        }
        if obj == H_DOCUMENT || obj == H_WINDOW {
            return Ok(Value::Null);
        }
        match self.objects.get(&obj) {
            Some(Obj::Canvas(i)) => {
                let i = *i;
                let canvas = &self.canvases[i];
                let v = match name {
                    "width" => Value::Num(canvas.width() as f64),
                    "height" => Value::Num(canvas.height() as f64),
                    _ => Value::Null,
                };
                self.record(
                    ApiInterface::Canvas,
                    CallKind::Get,
                    name,
                    vec![],
                    Some(v.to_display_string()),
                    i,
                );
                Ok(v)
            }
            Some(Obj::Context(i)) => {
                let i = *i;
                let canvas = &self.canvases[i];
                let v = match name {
                    "fillStyle" | "strokeStyle" => Value::Str("#000000".into()),
                    "globalAlpha" => Value::Num(canvas.global_alpha()),
                    "globalCompositeOperation" => Value::Str(canvas.composite_op().into()),
                    "canvas" => {
                        // Find the canvas handle that shares this index.
                        let handle = self
                            .objects
                            .iter()
                            .find_map(|(h, o)| match o {
                                Obj::Canvas(ci) if *ci == i => Some(*h),
                                _ => None,
                            })
                            .ok_or_else(|| RuntimeError::new("orphan context"))?;
                        Value::Host(handle)
                    }
                    _ => Value::Null,
                };
                self.record(
                    ApiInterface::Context2D,
                    CallKind::Get,
                    name,
                    vec![],
                    Some(v.to_display_string()),
                    i,
                );
                Ok(v)
            }
            Some(Obj::TextMetrics(w)) => match name {
                "width" => Ok(Value::Num(*w)),
                _ => Ok(Value::Null),
            },
            Some(Obj::ImageData { w, h, data }) => match name {
                "width" => Ok(Value::Num(*w as f64)),
                "height" => Ok(Value::Num(*h as f64)),
                "data" => Ok(Value::array(
                    data.iter().map(|&b| Value::Num(b as f64)).collect(),
                )),
                _ => Ok(Value::Null),
            },
            Some(Obj::Gradient(_)) => Ok(Value::Null),
            None => Err(RuntimeError::new("unknown host object")),
        }
    }

    fn set_prop(&mut self, obj: HostRef, name: &str, value: Value) -> Result<(), RuntimeError> {
        match self.objects.get(&obj) {
            Some(Obj::Canvas(i)) => {
                let i = *i;
                self.record(
                    ApiInterface::Canvas,
                    CallKind::Set,
                    name,
                    vec![value.to_display_string()],
                    None,
                    i,
                );
                let canvas = &mut self.canvases[i];
                match name {
                    "width" => {
                        let w = value.as_num().unwrap_or(300.0).max(0.0) as u32;
                        let h = canvas.height();
                        canvas.resize(w, h);
                    }
                    "height" => {
                        let h = value.as_num().unwrap_or(150.0).max(0.0) as u32;
                        let w = canvas.width();
                        canvas.resize(w, h);
                    }
                    // style, id, className etc. are accepted and ignored.
                    _ => {}
                }
                Ok(())
            }
            Some(Obj::Context(i)) => {
                let i = *i;
                self.record(
                    ApiInterface::Context2D,
                    CallKind::Set,
                    name,
                    vec![value.to_display_string()],
                    None,
                    i,
                );
                let canvas = &mut self.canvases[i];
                match name {
                    "fillStyle" => match value {
                        Value::Host(h) => {
                            if let Some(Obj::Gradient(gi)) = self.objects.get(&h) {
                                let g = self.gradients[*gi].clone();
                                self.canvases[i].set_fill_gradient(g);
                            }
                        }
                        other => canvas.set_fill_style(&other.to_display_string()),
                    },
                    "strokeStyle" => match value {
                        Value::Host(h) => {
                            if let Some(Obj::Gradient(gi)) = self.objects.get(&h) {
                                let g = self.gradients[*gi].clone();
                                self.canvases[i].set_stroke_gradient(g);
                            }
                        }
                        other => canvas.set_stroke_style(&other.to_display_string()),
                    },
                    "font" => canvas.set_font(&value.to_display_string()),
                    "textBaseline" => canvas.set_text_baseline(&value.to_display_string()),
                    "globalAlpha" => {
                        if let Some(a) = value.as_num() {
                            canvas.set_global_alpha(a);
                        }
                    }
                    "globalCompositeOperation" => {
                        canvas.set_composite_op(&value.to_display_string())
                    }
                    "lineWidth" => {
                        if let Some(w) = value.as_num() {
                            canvas.set_line_width(w);
                        }
                    }
                    "lineCap" => canvas.set_line_cap(&value.to_display_string()),
                    _ => {} // shadowBlur etc.: accepted, recorded, ignored
                }
                Ok(())
            }
            _ => Ok(()), // setting properties on document/window is a no-op
        }
    }

    fn call_method(
        &mut self,
        obj: HostRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        if obj == H_DOCUMENT {
            return match method {
                "createElement" => {
                    let tag = s(args.first()).to_ascii_lowercase();
                    if tag != "canvas" {
                        return Err(RuntimeError::new(format!(
                            "createElement: only canvas is modeled, got {tag:?}"
                        )));
                    }
                    let index = self.canvases.len();
                    let canvas = match self.pool.as_ref().and_then(|p| p.take_buffer()) {
                        Some(buf) => Canvas2D::with_buffer(300, 150, self.device.clone(), buf),
                        None => Canvas2D::new(300, 150, self.device.clone()),
                    };
                    self.canvases.push(canvas);
                    self.canvas_alias.push(self.next_canvas_index);
                    self.next_canvas_index += 1;
                    let h = self.alloc(Obj::Canvas(index));
                    Ok(Value::Host(h))
                }
                "getElementById" | "querySelector" => Ok(Value::Null),
                _ => Err(RuntimeError::new(format!(
                    "document.{method} is not modeled"
                ))),
            };
        }
        if obj == H_WINDOW || obj == H_NAVIGATOR {
            return Ok(Value::Null);
        }

        let kind = self
            .objects
            .get(&obj)
            .ok_or_else(|| RuntimeError::new("unknown host object"))?;
        match kind {
            Obj::Canvas(i) => {
                let i = *i;
                match method {
                    "getContext" => {
                        let ctx_type = s(args.first());
                        self.record(
                            ApiInterface::Canvas,
                            CallKind::Method,
                            "getContext",
                            fmt_args(&args),
                            None,
                            i,
                        );
                        if ctx_type != "2d" {
                            // WebGL contexts are out of scope; scripts
                            // treat null as "unsupported", like old browsers.
                            return Ok(Value::Null);
                        }
                        let h = self.alloc(Obj::Context(i));
                        Ok(Value::Host(h))
                    }
                    "toDataURL" => {
                        let mime = match args.first() {
                            Some(Value::Str(m)) => m.clone(),
                            _ => "image/png".to_string(),
                        };
                        let quality = args.get(1).and_then(Value::as_num);
                        let url = self.extract_data_url(i, &mime, quality);
                        self.record(
                            ApiInterface::Canvas,
                            CallKind::Method,
                            "toDataURL",
                            fmt_args(&args),
                            Some(url.clone()),
                            i,
                        );
                        Ok(Value::Str(url))
                    }
                    "toBlob" => Err(RuntimeError::new("toBlob is not modeled (async)")),
                    other => Err(RuntimeError::new(format!(
                        "HTMLCanvasElement.{other} is not modeled"
                    ))),
                }
            }
            Obj::Context(i) => {
                let i = *i;
                self.record(
                    ApiInterface::Context2D,
                    CallKind::Method,
                    method,
                    fmt_args(&args),
                    None,
                    i,
                );
                let a = |n: usize| f(args.get(n));
                let canvas = &mut self.canvases[i];
                match method {
                    "fillRect" => canvas.fill_rect(a(0), a(1), a(2), a(3)),
                    "strokeRect" => canvas.stroke_rect(a(0), a(1), a(2), a(3)),
                    "clearRect" => canvas.clear_rect(a(0), a(1), a(2), a(3)),
                    "beginPath" => canvas.begin_path(),
                    "closePath" => canvas.close_path(),
                    "moveTo" => canvas.move_to(a(0), a(1)),
                    "lineTo" => canvas.line_to(a(0), a(1)),
                    "quadraticCurveTo" => canvas.quadratic_curve_to(a(0), a(1), a(2), a(3)),
                    "bezierCurveTo" => canvas.bezier_curve_to(a(0), a(1), a(2), a(3), a(4), a(5)),
                    "arc" => {
                        let ccw = args.get(5).map(Value::truthy).unwrap_or(false);
                        canvas.arc(a(0), a(1), a(2), a(3), a(4), ccw);
                    }
                    "ellipse" => {
                        let ccw = args.get(7).map(Value::truthy).unwrap_or(false);
                        canvas.ellipse(a(0), a(1), a(2), a(3), a(4), a(5), a(6), ccw);
                    }
                    "rect" => canvas.rect(a(0), a(1), a(2), a(3)),
                    "fill" => {
                        let rule = match args.first() {
                            Some(Value::Str(r)) => {
                                canvassing_raster::fill::FillRule::parse(r).unwrap_or_default()
                            }
                            _ => Default::default(),
                        };
                        canvas.fill(rule);
                    }
                    "stroke" => canvas.stroke(),
                    "fillText" => {
                        let text = s(args.first());
                        canvas.fill_text(&text, a(1), a(2));
                    }
                    "strokeText" => {
                        let text = s(args.first());
                        canvas.stroke_text(&text, a(1), a(2));
                    }
                    "measureText" => {
                        let text = s(args.first());
                        let w = canvas.measure_text(&text);
                        let h = self.alloc(Obj::TextMetrics(w));
                        return Ok(Value::Host(h));
                    }
                    "save" => canvas.save(),
                    "restore" => canvas.restore(),
                    "translate" => canvas.translate(a(0), a(1)),
                    "scale" => canvas.scale(a(0), a(1)),
                    "rotate" => canvas.rotate(a(0)),
                    "transform" => canvas.transform(a(0), a(1), a(2), a(3), a(4), a(5)),
                    "setTransform" => canvas.set_transform(a(0), a(1), a(2), a(3), a(4), a(5)),
                    "resetTransform" => canvas.reset_transform(),
                    "createLinearGradient" => {
                        let g = canvassing_raster::Gradient::linear(a(0), a(1), a(2), a(3));
                        self.gradients.push(g);
                        let gi = self.gradients.len() - 1;
                        let h = self.alloc(Obj::Gradient(gi));
                        return Ok(Value::Host(h));
                    }
                    "createRadialGradient" => {
                        let g =
                            canvassing_raster::Gradient::radial(a(0), a(1), a(2), a(3), a(4), a(5));
                        self.gradients.push(g);
                        let gi = self.gradients.len() - 1;
                        let h = self.alloc(Obj::Gradient(gi));
                        return Ok(Value::Host(h));
                    }
                    "getImageData" => {
                        let (x, y) = (a(0) as i64, a(1) as i64);
                        let (w, h) = (a(2).max(0.0) as u32, a(3).max(0.0) as u32);
                        let mut data = self.canvases[i].get_image_data(x, y, w, h);
                        if let ReadbackDefense::Filter(filter) = &mut self.defense {
                            // Apply the noise defense to getImageData too.
                            self.extraction_count += 1;
                            let mut tmp = Surface::new(w, h);
                            tmp.data_mut().copy_from_slice(&data);
                            filter.filter(i, &mut tmp, self.extraction_count);
                            data = tmp.data().to_vec();
                        } else if let ReadbackDefense::Block = self.defense {
                            data = vec![0; data.len()];
                        }
                        let handle = self.alloc(Obj::ImageData { w, h, data });
                        return Ok(Value::Host(handle));
                    }
                    "putImageData" => {
                        let handle = match args.first() {
                            Some(Value::Host(h)) => *h,
                            _ => return Err(RuntimeError::new("putImageData: expected ImageData")),
                        };
                        let (x, y) = (a(1) as i64, a(2) as i64);
                        if let Some(Obj::ImageData { w, h, data }) = self.objects.get(&handle) {
                            let (w, h, data) = (*w, *h, data.clone());
                            self.canvases[i].put_image_data(&data, x, y, w, h);
                        }
                    }
                    "drawImage" => {
                        let src_handle = match args.first() {
                            Some(Value::Host(h)) => *h,
                            _ => return Err(RuntimeError::new("drawImage: expected canvas")),
                        };
                        let src_index = self.canvas_index(src_handle)?;
                        let src = self.canvases[src_index].surface().clone();
                        let (dx, dy) = (a(1), a(2));
                        let (dw, dh) = if args.len() >= 5 {
                            (a(3), a(4))
                        } else {
                            (src.width() as f64, src.height() as f64)
                        };
                        self.canvases[i].draw_image(&src, dx, dy, dw, dh);
                    }
                    "isPointInPath" => return Ok(Value::Bool(false)),
                    "clip" | "setLineDash" | "arcTo" | "createPattern" => {
                        // Recorded (above) but intentionally inert: the
                        // modeled scripts only probe their existence.
                    }
                    other => {
                        return Err(RuntimeError::new(format!(
                            "CanvasRenderingContext2D.{other} is not modeled"
                        )))
                    }
                }
                Ok(Value::Null)
            }
            Obj::Gradient(gi) => {
                let gi = *gi;
                match method {
                    "addColorStop" => {
                        let offset = f(args.first());
                        let color = s(args.get(1));
                        if let Ok(c) = canvassing_raster::color::parse_css_color(&color) {
                            self.gradients[gi].add_stop(offset, c);
                        }
                        Ok(Value::Null)
                    }
                    other => Err(RuntimeError::new(format!(
                        "CanvasGradient.{other} is not modeled"
                    ))),
                }
            }
            Obj::TextMetrics(_) | Obj::ImageData { .. } => Err(RuntimeError::new(format!(
                "no method {method} on this object"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_script::eval;

    fn doc() -> Document {
        Document::new(DeviceProfile::intel_ubuntu())
    }

    const FP_SCRIPT: &str = r##"
        let c = document.createElement("canvas");
        c.width = 240;
        c.height = 60;
        let ctx = c.getContext("2d");
        ctx.textBaseline = "top";
        ctx.font = "14px Arial";
        ctx.fillStyle = "#f60";
        ctx.fillRect(125, 1, 62, 20);
        ctx.fillStyle = "#069";
        ctx.fillText("Cwm fjordbank glyphs vext quiz, \u{1F603}", 2, 15);
        c.toDataURL();
    "##;

    #[test]
    fn canvas_script_end_to_end() {
        let mut d = doc();
        d.set_current_script("https://cdn.example/fp.js");
        let result = eval(FP_SCRIPT, &mut d).unwrap();
        let url = result.to_display_string();
        assert!(url.starts_with("data:image/png;base64,"));
        assert_eq!(d.extractions().len(), 1);
        assert_eq!(d.extractions()[0].width, 240);
        assert_eq!(d.extractions()[0].script_url, "https://cdn.example/fp.js");
        assert!(!d.calls().is_empty());
    }

    #[test]
    fn identical_scripts_identical_extractions() {
        let run = || {
            let mut d = doc();
            eval(FP_SCRIPT, &mut d).unwrap();
            d.extractions()[0].data_url.clone()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_devices_different_extractions() {
        let run = |device: DeviceProfile| {
            let mut d = Document::new(device);
            eval(FP_SCRIPT, &mut d).unwrap();
            d.extractions()[0].data_url.clone()
        };
        assert_ne!(
            run(DeviceProfile::intel_ubuntu()),
            run(DeviceProfile::apple_m1())
        );
    }

    #[test]
    fn calls_are_recorded_with_args() {
        let mut d = doc();
        eval(FP_SCRIPT, &mut d).unwrap();
        let fill_text = d
            .calls()
            .iter()
            .find(|c| c.name == "fillText")
            .expect("fillText recorded");
        assert_eq!(fill_text.interface, ApiInterface::Context2D);
        assert_eq!(fill_text.kind, CallKind::Method);
        assert!(fill_text.args[0].contains("Cwm fjordbank"));
        let set_font = d
            .calls()
            .iter()
            .find(|c| c.name == "font" && c.kind == CallKind::Set)
            .expect("font set recorded");
        assert_eq!(set_font.args, vec!["14px Arial"]);
    }

    #[test]
    fn timestamps_are_monotonic() {
        let mut d = doc();
        eval(FP_SCRIPT, &mut d).unwrap();
        let times: Vec<u64> = d.calls().iter().map(|c| c.timestamp_ms).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn canvas_resize_clears_content() {
        let mut d = doc();
        let src = r#"
            let c = document.createElement("canvas");
            let ctx = c.getContext("2d");
            ctx.fillRect(0, 0, 10, 10);
            c.width = 100;
            c.toDataURL();
        "#;
        eval(src, &mut d).unwrap();
        assert!(d.canvas_surface(0).unwrap().is_blank());
    }

    #[test]
    fn gradient_roundtrip() {
        let mut d = doc();
        let src = r#"
            let c = document.createElement("canvas");
            c.width = 16; c.height = 4;
            let ctx = c.getContext("2d");
            let g = ctx.createLinearGradient(0, 0, 16, 0);
            g.addColorStop(0, "black");
            g.addColorStop(1, "white");
            ctx.fillStyle = g;
            ctx.fillRect(0, 0, 16, 4);
            c.toDataURL();
        "#;
        eval(src, &mut d).unwrap();
        let surface = d.canvas_surface(0).unwrap();
        assert!(surface.get(15, 1).r > surface.get(0, 1).r + 100);
    }

    #[test]
    fn measure_text_returns_width() {
        let mut d = doc();
        let src = r#"
            let c = document.createElement("canvas");
            let ctx = c.getContext("2d");
            ctx.font = "20px Arial";
            ctx.measureText("mmmm").width;
        "#;
        let v = eval(src, &mut d).unwrap();
        assert!(v.as_num().unwrap() > 10.0);
    }

    #[test]
    fn block_defense_returns_constant() {
        let mut d = doc();
        d.set_defense(ReadbackDefense::Block);
        let v = eval(FP_SCRIPT, &mut d).unwrap();
        assert_eq!(v.to_display_string(), BLOCKED_DATA_URL);
    }

    #[test]
    fn filter_defense_changes_pixels() {
        struct Bump;
        impl PixelFilter for Bump {
            fn filter(&mut self, _i: usize, surface: &mut Surface, invocation: u64) {
                let data = surface.data_mut();
                if let Some(b) = data.first_mut() {
                    *b = b.wrapping_add(invocation as u8);
                }
            }
        }
        let mut d = doc();
        d.set_defense(ReadbackDefense::Filter(Box::new(Bump)));
        let src = r#"
            let c = document.createElement("canvas");
            c.width = 20; c.height = 20;
            let ctx = c.getContext("2d");
            ctx.fillStyle = "red";
            ctx.fillRect(0, 0, 20, 20);
            let u1 = c.toDataURL();
            let u2 = c.toDataURL();
            u1 == u2;
        "#;
        let v = eval(src, &mut d).unwrap();
        assert!(!v.truthy(), "per-render noise must differ across renders");
    }

    #[test]
    fn webgl_context_is_null() {
        let mut d = doc();
        let v = eval(
            r#"
            let c = document.createElement("canvas");
            c.getContext("webgl") == null;
        "#,
            &mut d,
        )
        .unwrap();
        assert!(v.truthy());
    }

    #[test]
    fn get_image_data_roundtrips_through_script() {
        let mut d = doc();
        let src = r#"
            let c = document.createElement("canvas");
            c.width = 4; c.height = 4;
            let ctx = c.getContext("2d");
            ctx.fillStyle = "rgb(10, 20, 30)";
            ctx.fillRect(0, 0, 4, 4);
            let img = ctx.getImageData(0, 0, 2, 2);
            img.data[0] + img.data[1] + img.data[2] + img.data[3];
        "#;
        let v = eval(src, &mut d).unwrap();
        assert_eq!(v.as_num(), Some(10.0 + 20.0 + 30.0 + 255.0));
    }

    #[test]
    fn draw_image_between_canvases() {
        let mut d = doc();
        let src = r#"
            let a = document.createElement("canvas");
            a.width = 4; a.height = 4;
            let actx = a.getContext("2d");
            actx.fillStyle = "lime";
            actx.fillRect(0, 0, 4, 4);
            let b = document.createElement("canvas");
            b.width = 8; b.height = 8;
            let bctx = b.getContext("2d");
            bctx.drawImage(a, 0, 0, 8, 8);
            let img = bctx.getImageData(4, 4, 1, 1);
            img.data[1];
        "#;
        let v = eval(src, &mut d).unwrap();
        assert_eq!(v.as_num(), Some(255.0));
    }

    #[test]
    fn property_reads_are_recorded() {
        let mut d = doc();
        eval(
            r#"
            let c = document.createElement("canvas");
            let w = c.width;
            let ctx = c.getContext("2d");
            let op = ctx.globalCompositeOperation;
        "#,
            &mut d,
        )
        .unwrap();
        let width_get = d
            .calls()
            .iter()
            .find(|c| c.name == "width" && c.kind == CallKind::Get)
            .expect("width get recorded");
        assert_eq!(width_get.interface, ApiInterface::Canvas);
        assert_eq!(width_get.return_value.as_deref(), Some("300"));
        let op_get = d
            .calls()
            .iter()
            .find(|c| c.name == "globalCompositeOperation" && c.kind == CallKind::Get)
            .expect("op get recorded");
        assert_eq!(op_get.return_value.as_deref(), Some("source-over"));
    }

    #[test]
    fn large_args_are_truncated_in_the_log() {
        let mut d = doc();
        let big = "x".repeat(400);
        eval(
            &format!(
                r#"
                let c = document.createElement("canvas");
                c.width = 400; c.height = 20;
                let ctx = c.getContext("2d");
                ctx.fillText("{big}", 0, 10);
            "#
            ),
            &mut d,
        )
        .unwrap();
        let call = d.calls().iter().find(|c| c.name == "fillText").unwrap();
        assert!(call.args[0].len() < 300, "arg should be truncated");
        assert!(call.args[0].contains("bytes"));
    }

    #[test]
    fn stroke_text_and_stroke_rect_paint() {
        let mut d = doc();
        eval(
            r#"
            let c = document.createElement("canvas");
            c.width = 80; c.height = 40;
            let ctx = c.getContext("2d");
            ctx.strokeStyle = "navy";
            ctx.lineWidth = 2;
            ctx.strokeRect(5, 5, 60, 30);
            ctx.strokeText("ab", 10, 25);
        "#,
            &mut d,
        )
        .unwrap();
        assert!(!d.canvas_surface(0).unwrap().is_blank());
    }

    #[test]
    fn extraction_counts_match_to_data_url_calls() {
        let mut d = doc();
        eval(
            r#"
            let c = document.createElement("canvas");
            c.width = 20; c.height = 20;
            c.toDataURL();
            c.toDataURL("image/jpeg");
            c.toDataURL("image/webp", 0.5);
        "#,
            &mut d,
        )
        .unwrap();
        assert_eq!(d.extractions().len(), 3);
        let mimes: Vec<&str> = d.extractions().iter().map(|e| e.mime.as_str()).collect();
        assert_eq!(mimes, vec!["image/png", "image/jpeg", "image/webp"]);
        let calls = d.calls().iter().filter(|c| c.name == "toDataURL").count();
        assert_eq!(calls, 3);
    }

    #[test]
    fn multiple_canvases_have_distinct_indices() {
        let mut d = doc();
        eval(
            r#"
            let a = document.createElement("canvas");
            a.width = 20; a.height = 20;
            let b = document.createElement("canvas");
            b.width = 20; b.height = 20;
            a.toDataURL();
            b.toDataURL();
        "#,
            &mut d,
        )
        .unwrap();
        assert_eq!(d.canvas_count(), 2);
        let indices: Vec<usize> = d.extractions().iter().map(|e| e.canvas_index).collect();
        assert_eq!(indices, vec![0, 1]);
    }

    #[test]
    fn unknown_methods_error() {
        let mut d = doc();
        assert!(eval("document.write(\"x\");", &mut d).is_err());
    }
}
