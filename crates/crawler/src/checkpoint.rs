//! Crash-consistent checkpoints (v2).
//!
//! PR 1's checkpoint story was in-memory only: [`crate::resume_crawl`]
//! merges against a [`CrawlDataset`] the caller kept alive. This module
//! adds the durable half, built to survive the one failure mode that
//! actually corrupts append-only logs in practice: the **torn write** — a
//! crash mid-`write(2)` leaving a partial record at the tail.
//!
//! Format (line-oriented, append-only):
//!
//! ```text
//! {"version":2,"label":"control","device_id":"intel-ubuntu"}   ← header
//! 3a9f01bc {"url":...,"outcome":...}                            ← records
//! 91c4e07d {"url":...,"outcome":...}
//! ```
//!
//! Every record line is `<crc32 of the JSON, 8 hex chars> <record JSON>`.
//! The CRC (IEEE 802.3 polynomial, hand-rolled — no new dependencies)
//! makes torn or bit-flipped tails detectable: [`recover`] walks the file,
//! keeps the longest valid prefix, truncates the file back to it, and
//! returns the prefix as a [`CrawlDataset`]. Because records are written
//! in frontier order and [`crate::resume_crawl`] is keyed by URL, a
//! recovered prefix resumed over the same frontier merges byte-identical
//! to a fault-free crawl — the property `tests/checkpoint_recovery.rs`
//! sweeps over every corruption point.
//!
//! Torn writes are injectable ([`Fault::TornWrite`]) at this layer, not
//! the network: the writer flushes a prefix of the line and fails, exactly
//! once per poisoned host, so tests and the `chaos` bin can place a crash
//! at any record boundary deterministically.

use std::collections::BTreeSet;
use std::fs;
use std::io::{self, BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use canvassing_net::{Fault, FaultPlan};
use serde::{Deserialize, Serialize};

use crate::dataset::{CrawlDataset, SiteRecord};

/// CRC32 (IEEE 802.3, reflected, init/xorout `0xFFFF_FFFF`) — the same
/// polynomial zlib/PNG use, so checkpoint files are checkable with stock
/// tooling.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// First line of every checkpoint file.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Header {
    version: u32,
    label: String,
    device_id: String,
}

const VERSION: u32 = 2;

/// What [`recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Records in the valid prefix.
    pub records_recovered: usize,
    /// 0-based record index of the first invalid line, if any.
    pub corrupted_at: Option<usize>,
    /// Bytes truncated off the tail (0 when the file was clean).
    pub bytes_truncated: u64,
}

impl RecoveryReport {
    /// True when the file was intact end to end.
    pub fn clean(&self) -> bool {
        self.corrupted_at.is_none() && self.bytes_truncated == 0
    }
}

/// Append-only checkpoint writer with injectable torn writes.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: fs::File,
    path: PathBuf,
    /// Hosts whose next append tears (consumed one-shot).
    torn_hosts: BTreeSet<String>,
    poisoned: bool,
    records_written: usize,
}

impl CheckpointWriter {
    /// Creates (truncating) a checkpoint at `path` and writes the header.
    pub fn create(path: &Path, label: &str, device_id: &str) -> io::Result<CheckpointWriter> {
        let mut file = fs::File::create(path)?;
        let header = Header {
            version: VERSION,
            label: label.to_string(),
            device_id: device_id.to_string(),
        };
        let line = serde_json::to_string(&header).map_err(io::Error::other)?;
        writeln!(file, "{line}")?;
        file.flush()?;
        Ok(CheckpointWriter {
            file,
            path: path.to_path_buf(),
            torn_hosts: BTreeSet::new(),
            poisoned: false,
            records_written: 0,
        })
    }

    /// Arms torn-write faults from a crawl's fault plan: the first append
    /// of a record whose URL host carries [`Fault::TornWrite`] flushes a
    /// partial line and fails.
    pub fn arm_faults(&mut self, faults: &FaultPlan) {
        for (host, fault) in &faults.host_faults {
            if *fault == Fault::TornWrite {
                self.torn_hosts.insert(host.clone());
            }
        }
    }

    /// Arms a torn write for one host directly.
    pub fn arm_torn_write(&mut self, host: &str) {
        self.torn_hosts.insert(host.to_ascii_lowercase());
    }

    /// The path this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records successfully appended since [`CheckpointWriter::create`]
    /// (torn appends don't count — their line never fully landed).
    pub fn records_written(&self) -> usize {
        self.records_written
    }

    /// Appends one record. On an armed torn write the line is flushed
    /// only partially (simulating a crash mid-write), the writer is
    /// poisoned, and an error returns; [`recover`] must run before the
    /// file is appended to again.
    pub fn append(&mut self, record: &SiteRecord) -> io::Result<()> {
        if self.poisoned {
            return Err(io::Error::other("checkpoint writer poisoned by torn write"));
        }
        let json = serde_json::to_string(record).map_err(io::Error::other)?;
        let line = format!("{:08x} {json}\n", crc32(json.as_bytes()));
        if self.torn_hosts.remove(&record.url.host) {
            self.tear_line(&line)?;
            return Err(io::Error::other(format!(
                "torn write injected for {}",
                record.url.host
            )));
        }
        self.file.write_all(line.as_bytes())?;
        self.file.flush()?;
        self.records_written += 1;
        Ok(())
    }

    /// Simulates the owning process dying inside the `write(2)` of
    /// `record`'s framed line: roughly half the line is flushed (no
    /// newline) and the writer is poisoned. Unlike the armed path (a
    /// [`Fault::TornWrite`] consumed by [`CheckpointWriter::append`]),
    /// the tear is unconditional — the supervisor's fault injector uses
    /// it to kill a shard worker at an exact record. The on-disk state is
    /// precisely what [`recover`] truncates away.
    pub fn tear(&mut self, record: &SiteRecord) -> io::Result<()> {
        let json = serde_json::to_string(record).map_err(io::Error::other)?;
        let line = format!("{:08x} {json}\n", crc32(json.as_bytes()));
        self.tear_line(&line)
    }

    /// Crash mid-write: flush roughly half the line, no newline, and
    /// poison the writer until recovery runs.
    fn tear_line(&mut self, line: &str) -> io::Result<()> {
        let cut = line.len() / 2;
        self.file.write_all(&line.as_bytes()[..cut])?;
        self.file.flush()?;
        self.poisoned = true;
        Ok(())
    }
}

/// Reads a checkpoint, keeps the longest valid prefix, truncates the file
/// back to exactly that prefix, and returns it as a dataset. Clean files
/// round-trip untouched. Fails only on I/O errors or a missing/invalid
/// header (nothing recoverable exists without one).
pub fn recover(path: &Path) -> io::Result<(CrawlDataset, RecoveryReport)> {
    let file = fs::File::open(path)?;
    let mut reader = BufReader::new(file);

    let mut header_line = String::new();
    reader.read_line(&mut header_line)?;
    let header: Header = serde_json::from_str(header_line.trim_end())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad header: {e}")))?;
    if header.version != VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported checkpoint version {}", header.version),
        ));
    }

    let mut records = Vec::new();
    let mut valid_bytes = header_line.len() as u64;
    let mut corrupted_at = None;
    let mut raw = Vec::new();
    loop {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw)?;
        if n == 0 {
            break;
        }
        // Raw bytes first: a crash can leave arbitrary garbage, including
        // invalid UTF-8, which is corruption — not an I/O error.
        let parsed = std::str::from_utf8(&raw)
            .ok()
            .filter(|line| line.ends_with('\n'))
            .and_then(parse_record_line);
        match parsed {
            Some(record) => {
                records.push(record);
                valid_bytes += n as u64;
            }
            // A parseable final line without its newline is still torn:
            // the crash may have landed inside a trailing byte run that
            // happens to parse. Only newline-terminated lines count.
            None => {
                corrupted_at = Some(records.len());
                break;
            }
        }
    }
    // Swallow anything after the first bad line too: it is unreachable
    // via append-only writes and must not survive recovery.
    let total = fs::metadata(path)?.len();
    let bytes_truncated = total - valid_bytes;
    if bytes_truncated > 0 {
        let file = fs::OpenOptions::new().write(true).open(path)?;
        file.set_len(valid_bytes)?;
        let mut file = file;
        file.seek(SeekFrom::End(0))?;
        file.flush()?;
    }

    let dataset = CrawlDataset {
        label: header.label,
        device_id: header.device_id,
        records,
    };
    let report = RecoveryReport {
        records_recovered: dataset.records.len(),
        corrupted_at,
        bytes_truncated,
    };
    Ok((dataset, report))
}

fn parse_record_line(line: &str) -> Option<SiteRecord> {
    let trimmed = line.trim_end_matches('\n');
    let (crc_hex, json) = trimmed.split_once(' ')?;
    // The frame is canonical lowercase hex; anything else (including an
    // uppercase variant that would parse to the same value) is corruption.
    if crc_hex.len() != 8
        || !crc_hex
            .bytes()
            .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    let expected = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(json.as_bytes()) != expected {
        return None;
    }
    serde_json::from_str(json).ok()
}

/// Writes a complete dataset as a checkpoint via write-temp-then-rename,
/// so a crash anywhere leaves either the old file or the new one — never
/// a hybrid.
pub fn save_atomic(path: &Path, dataset: &CrawlDataset) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut writer = CheckpointWriter::create(&tmp, &dataset.label, &dataset.device_id)?;
        for record in &dataset.records {
            writer.append(record)?;
        }
    }
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{FailureKind, SiteFailure, SiteOutcome};
    use canvassing_net::Url;

    fn record(host: &str, ok: bool) -> SiteRecord {
        let url = Url::https(host, "/");
        let outcome = if ok {
            SiteOutcome::Failure(SiteFailure {
                kind: FailureKind::Timeout,
                error: "deadline".into(),
                attempts: 1,
                salvage: None,
            })
        } else {
            SiteOutcome::Failure(SiteFailure {
                kind: FailureKind::Unreachable,
                error: "down".into(),
                attempts: 1,
                salvage: None,
            })
        };
        SiteRecord { url, outcome }
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("canvassing-ckpt-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn clean_roundtrip_recovers_everything() {
        let path = tmp_path("clean");
        let mut w = CheckpointWriter::create(&path, "control", "intel").unwrap();
        for i in 0..5 {
            w.append(&record(&format!("s{i}.com"), i % 2 == 0)).unwrap();
        }
        let (ds, report) = recover(&path).unwrap();
        assert!(report.clean());
        assert_eq!(ds.records.len(), 5);
        assert_eq!(ds.label, "control");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_write_is_detected_and_truncated() {
        let path = tmp_path("torn");
        let mut w = CheckpointWriter::create(&path, "control", "intel").unwrap();
        w.arm_torn_write("s2.com");
        for i in 0..2 {
            w.append(&record(&format!("s{i}.com"), true)).unwrap();
        }
        let err = w.append(&record("s2.com", true)).unwrap_err();
        assert!(err.to_string().contains("torn write"));
        // Writer is poisoned until recovery.
        assert!(w.append(&record("s3.com", true)).is_err());
        drop(w);

        let (ds, report) = recover(&path).unwrap();
        assert_eq!(ds.records.len(), 2);
        assert_eq!(report.corrupted_at, Some(2));
        assert!(report.bytes_truncated > 0);

        // Post-recovery the file is clean and appendable again.
        let (_, second) = recover(&path).unwrap();
        assert!(second.clean());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn bit_flip_anywhere_in_a_record_is_caught() {
        let path = tmp_path("flip");
        let mut w = CheckpointWriter::create(&path, "control", "intel").unwrap();
        for i in 0..3 {
            w.append(&record(&format!("s{i}.com"), true)).unwrap();
        }
        drop(w);
        let clean = fs::read(&path).unwrap();
        let header_len = clean.iter().position(|&b| b == b'\n').unwrap() + 1;

        // Flip every byte of the second record line in turn; recovery
        // must always keep exactly the first record.
        let line_starts: Vec<usize> = std::iter::once(header_len)
            .chain(
                clean[header_len..]
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &b)| {
                        (b == b'\n' && header_len + i + 1 < clean.len())
                            .then_some(header_len + i + 1)
                    }),
            )
            .collect();
        let second = line_starts[1];
        let third = line_starts[2];
        for pos in second..third - 1 {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x20;
            fs::write(&path, &corrupt).unwrap();
            let (ds, report) = recover(&path).unwrap();
            assert_eq!(ds.records.len(), 1, "flip at byte {pos}");
            assert_eq!(report.corrupted_at, Some(1), "flip at byte {pos}");
        }
        fs::remove_file(&path).ok();
    }

    #[test]
    fn save_atomic_then_recover_roundtrips() {
        let path = tmp_path("atomic");
        let ds = CrawlDataset {
            label: "ablation".into(),
            device_id: "mac".into(),
            records: (0..4).map(|i| record(&format!("s{i}.com"), true)).collect(),
        };
        save_atomic(&path, &ds).unwrap();
        assert!(!path.with_extension("tmp").exists());
        let (back, report) = recover(&path).unwrap();
        assert!(report.clean());
        assert_eq!(
            serde_json::to_string(&back).unwrap(),
            serde_json::to_string(&ds).unwrap()
        );
        fs::remove_file(&path).ok();
    }

    #[test]
    fn tear_leaves_a_recoverable_prefix_and_poisons_the_writer() {
        let path = tmp_path("tear");
        let mut w = CheckpointWriter::create(&path, "control", "intel").unwrap();
        for i in 0..3 {
            w.append(&record(&format!("s{i}.com"), true)).unwrap();
        }
        w.tear(&record("victim.com", true)).unwrap();
        assert!(w.append(&record("s4.com", true)).is_err(), "poisoned");
        drop(w);

        let (ds, report) = recover(&path).unwrap();
        assert_eq!(ds.records.len(), 3, "the torn record never landed");
        assert_eq!(report.corrupted_at, Some(3));
        assert!(report.bytes_truncated > 0);
        let (_, second) = recover(&path).unwrap();
        assert!(second.clean());
        fs::remove_file(&path).ok();
    }

    #[test]
    fn arm_faults_pulls_torn_hosts_from_plan() {
        let mut plan = FaultPlan::default();
        plan.inject("torn.com", Fault::TornWrite);
        plan.inject("down.com", Fault::Unreachable);
        let path = tmp_path("armed");
        let mut w = CheckpointWriter::create(&path, "c", "d").unwrap();
        w.arm_faults(&plan);
        assert!(w.append(&record("down.com", false)).is_ok());
        assert!(w.append(&record("torn.com", false)).is_err());
        fs::remove_file(&path).ok();
    }
}
