//! # canvassing-crawler
//!
//! The crawl harness: drives a fleet of [`Browser`] workers across a site
//! frontier and collects per-site records, mirroring the paper's crawls
//! (§3.1): one configuration per crawl (device profile, optional ad-block
//! extension, optional canvas defense), every site visited once, failures
//! recorded rather than retried away.
//!
//! Work distribution is a shared-queue scheduler: one atomic cursor over
//! the visit list that every worker claims jobs from (lock-free work
//! sharing), so a latency-spiked host delays only the worker that is on
//! it — the rest of the fleet drains the remaining frontier. Results are
//! reassembled in frontier order, and each [`SiteRecord`] is a pure
//! function of `(network, url, config)`, so datasets are byte-identical
//! regardless of scheduling or worker count. Workers share a
//! [`CrawlCaches`] (compiled-script cache + render memo, see
//! [`CachingPolicy`]); caching preserves byte-identity by construction
//! and is reported through [`CrawlStats`]. Robustness features on top of
//! that baseline:
//!
//! * **Typed failures** — every failed site carries a
//!   [`FailureKind`] instead of a free-form string, so analyses can build
//!   per-kind breakdown tables.
//! * **Retry policy** — transient kinds (and only those) can be retried
//!   with deterministic bounded backoff; the default of zero retries
//!   preserves the paper's visit-once semantics.
//! * **Panic isolation** — a panicking visit (a crashing worker) becomes a
//!   [`FailureKind::WorkerPanic`] record instead of taking the crawl down.
//! * **Checkpoint/resume** — [`resume_crawl`] skips sites already present
//!   in a partial dataset and merges to the exact dataset a single
//!   uninterrupted crawl would have produced; the [`checkpoint`] module
//!   adds the durable, crash-consistent on-disk form (CRC-framed records,
//!   torn-write recovery, atomic snapshots).
//! * **Circuit breakers** — opt-in per-host breakers ([`BreakerPolicy`])
//!   short-circuit visits to hosts that keep failing; state is planned
//!   deterministically ([`BreakerPlan`]) so the dataset stays
//!   byte-identical across worker counts.
//! * **Partial-visit salvage** — visits that die mid-pipeline keep the
//!   evidence gathered before death; every record carries a
//!   [`dataset::VisitFidelity`] tier so estimators can state exactly what
//!   they condition on.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod breaker;
pub mod checkpoint;
pub mod dataset;
pub mod segment;
pub mod supervisor;

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use canvassing_browser::{
    AdBlockerKind, Browser, CrawlCaches, DefenseMode, ExecEngine, Extension, PageVisit, RenderMemo,
    ScriptCache, VisitPolicy,
};
use canvassing_net::{Network, Url};
use canvassing_raster::{DeviceProfile, SurfacePool};
use canvassing_trace::{TraceSink, VisitRecorder, VisitTrace};
use serde::{Deserialize, Serialize};

pub use breaker::{BreakerEvent, BreakerHostStats, BreakerPlan, BreakerPolicy};
pub use checkpoint::{recover, save_atomic, CheckpointWriter, RecoveryReport};
pub use dataset::{CrawlDataset, FailureKind, SiteFailure, SiteOutcome, SiteRecord, VisitFidelity};
pub use segment::{
    crawl_shard_to_segments, list_segments, list_segments_traced, merge_segments, MergeReport,
    SegmentWriter,
};
pub use supervisor::{
    lease_path, list_supervised_segments, merge_supervised, read_lease, supervise_crawl,
    FaultScript, Lease, SpeculationPolicy, SupervisionReport, SupervisorConfig, WorkerFault,
};

/// Retry behavior for transient failures. Backoff is computed, not slept:
/// the network simulates latency, so the harness records the schedule a
/// real crawler would follow without wall-clock waiting — keeping crawls
/// deterministic and fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum retries after the first attempt (0 = visit once, the
    /// paper's §3.1 semantics).
    pub max_retries: u32,
    /// Base backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Upper bound on any single backoff interval.
    pub backoff_cap_ms: u64,
    /// Also retry [`FailureKind::Timeout`] failures (latency spikes that
    /// blew the visit deadline). Off by default: the paper visits each
    /// site once, and a slow site is usually still slow on the next
    /// attempt — enable only for hosts known to spike transiently (the
    /// [`canvassing_net::Fault::SlowStart`] shape).
    pub retry_timeouts: bool,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: every site is visited exactly once.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            backoff_base_ms: 250,
            backoff_cap_ms: 4_000,
            retry_timeouts: false,
        }
    }

    /// Up to `n` retries of transient failures with default backoff.
    pub fn retries(n: u32) -> RetryPolicy {
        RetryPolicy {
            max_retries: n,
            ..RetryPolicy::none()
        }
    }

    /// Deterministic exponential backoff before retry number
    /// `attempt + 1` (zero-based attempt that just failed): `base << attempt`,
    /// capped.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let shifted = self
            .backoff_base_ms
            .checked_shl(attempt)
            .unwrap_or(self.backoff_cap_ms);
        shifted.min(self.backoff_cap_ms)
    }

    /// Whether a failure of this kind is eligible for another attempt
    /// under this policy (the attempt budget is checked separately).
    pub fn should_retry(&self, kind: FailureKind) -> bool {
        kind.is_transient() || (self.retry_timeouts && kind == FailureKind::Timeout)
    }
}

/// Which cross-visit cache layers a crawl uses. All layers preserve the
/// byte-identical dataset guarantee (recycled buffers are zeroed; memo
/// replay is exact record relocation; parsing is referentially
/// transparent), so this is purely a throughput knob — `disabled()`
/// exists for baselines and A/B determinism tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachingPolicy {
    /// Share one compiled-script cache across workers (each unique script
    /// body is lexed/parsed once per crawl).
    pub script_cache: bool,
    /// Share one render memo across workers (each unique script body ×
    /// device renders once per crawl; replays bypass active defenses).
    pub render_memo: bool,
    /// Give each worker a canvas pixel-buffer recycling pool.
    pub surface_pool: bool,
}

impl Default for CachingPolicy {
    /// Everything on — the production configuration.
    fn default() -> CachingPolicy {
        CachingPolicy {
            script_cache: true,
            render_memo: true,
            surface_pool: true,
        }
    }
}

impl CachingPolicy {
    /// No caching: every visit lexes, parses, renders, and allocates from
    /// scratch (the pre-cache baseline).
    pub fn disabled() -> CachingPolicy {
        CachingPolicy {
            script_cache: false,
            render_memo: false,
            surface_pool: false,
        }
    }
}

/// Configuration for one crawl run.
pub struct CrawlConfig {
    /// Human-readable label, e.g. `"control"`, `"adblock-plus"`.
    pub label: String,
    /// Worker threads.
    pub workers: usize,
    /// Rendering device for every worker (a crawl uses one machine, §3.1).
    pub device: DeviceProfile,
    /// Installed ad blocker, with the EasyList text it loads.
    pub adblocker: Option<(AdBlockerKind, String)>,
    /// Canvas read-back defense.
    pub defense: DefenseMode,
    /// Whether workers pass bot gates (true for the paper's crawler).
    pub passes_bot_checks: bool,
    /// Retry policy for transient failures.
    pub retry: RetryPolicy,
    /// Per-visit deadline / fuel limits.
    pub policy: VisitPolicy,
    /// Catch panics inside a worker's visit and degrade them to
    /// [`FailureKind::WorkerPanic`] records. On by default; disable only
    /// to test the harness's own behavior when a worker thread dies.
    pub isolate_panics: bool,
    /// Cross-visit cache layers (throughput only; never changes records).
    pub caching: CachingPolicy,
    /// Script execution engine. The bytecode VM is the production
    /// default; the tree-walking interpreter remains selectable as the
    /// differential oracle — the two produce byte-identical datasets,
    /// stats, and study reports (gated in `tests/engine_identity.rs`).
    pub engine: ExecEngine,
    /// Per-host circuit breakers (off by default; see [`BreakerPolicy`]).
    pub breakers: BreakerPolicy,
    /// Keep partial evidence from visits that die mid-pipeline, attached
    /// to the failure record ([`SiteFailure::salvage`]). On by default:
    /// salvage only adds fields to failure records, never changes
    /// success records, and `salvage: false` reproduces the pre-salvage
    /// datasets byte for byte.
    pub salvage: bool,
    /// Where finished per-visit traces go. `None` (the default) or a sink
    /// whose `enabled()` is false means visits run with disabled recorders
    /// — the near-zero-overhead path. Traces are delivered to the sink in
    /// frontier order from one thread after all workers join, so the sink
    /// observes a deterministic stream whatever the worker count.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl CrawlConfig {
    /// The paper's control configuration on the Intel/Ubuntu machine.
    pub fn control() -> CrawlConfig {
        CrawlConfig {
            label: "control".into(),
            workers: 8,
            device: DeviceProfile::intel_ubuntu(),
            adblocker: None,
            defense: DefenseMode::None,
            passes_bot_checks: true,
            retry: RetryPolicy::none(),
            policy: VisitPolicy::default(),
            isolate_panics: true,
            caching: CachingPolicy::default(),
            engine: ExecEngine::default(),
            breakers: BreakerPolicy::disabled(),
            salvage: true,
            trace: None,
        }
    }

    /// Whether visits should record traces (a sink is set and enabled).
    fn trace_enabled(&self) -> bool {
        self.trace.as_ref().is_some_and(|s| s.enabled())
    }

    /// Control configuration with a different device (the M1 validation
    /// crawl).
    pub fn with_device(device: DeviceProfile) -> CrawlConfig {
        CrawlConfig {
            label: format!("control-{}", device.id),
            device,
            ..CrawlConfig::control()
        }
    }

    /// Configuration with an ad blocker installed (Table 2 re-crawls).
    pub fn with_adblocker(kind: AdBlockerKind, easylist: &str) -> CrawlConfig {
        CrawlConfig {
            label: kind.name().to_ascii_lowercase().replace(' ', "-"),
            adblocker: Some((kind, easylist.to_string())),
            ..CrawlConfig::control()
        }
    }

    fn build_browser(&self, caches: CrawlCaches) -> Browser {
        let mut browser = Browser::new(self.device.clone());
        browser.defense = self.defense;
        browser.passes_bot_checks = self.passes_bot_checks;
        browser.policy = self.policy;
        browser.caches = caches;
        browser.engine = self.engine;
        if let Some((kind, list)) = &self.adblocker {
            browser.extension = Some(Extension::new(*kind, list));
        }
        browser
    }

    /// Builds the crawl-wide shared caches this config calls for. The
    /// buffer pool is deliberately absent here — pools are per-worker
    /// (see [`CrawlConfig::worker_caches`]) so workers recycle without
    /// contending.
    pub fn build_caches(&self) -> CrawlCaches {
        CrawlCaches {
            scripts: self
                .caching
                .script_cache
                .then(|| Arc::new(ScriptCache::new())),
            memo: self
                .caching
                .render_memo
                .then(|| Arc::new(RenderMemo::new())),
            pool: None,
            // Static triage is always on — it is part of the recorded
            // dataset, not a cache layer, so `CachingPolicy` cannot turn
            // it off (which would change what the crawler records).
            analysis: Arc::new(Default::default()),
            perf: Arc::new(Default::default()),
            metrics: Arc::new(Default::default()),
        }
    }

    /// The cache handle one worker gets: the shared layers plus (when
    /// enabled) a private buffer pool.
    fn worker_caches(&self, shared: &CrawlCaches) -> CrawlCaches {
        let mut caches = shared.clone();
        caches.pool = self
            .caching
            .surface_pool
            .then(|| Arc::new(SurfacePool::new()));
        caches
    }
}

/// Visits one site under the config's retry, breaker, salvage, and
/// isolation policy. Pure in `(network, url, config, plan, index)`: the
/// record — and, when tracing, the visit's event stream — does not depend
/// on which worker runs it or when. The breaker plan is itself a pure
/// function of `(network, frontier, config)`, so the invariant that makes
/// datasets byte-identical across worker counts and checkpoint/resume
/// boundaries survives breakers too.
///
/// All attempts of one site share one recorder (retries appear as
/// `visit.retry` instants in the same trace), and the visit's final
/// disposition lands as a `visit.outcome` instant. Breaker transitions
/// attributed to this frontier slot are emitted as `breaker.*` instants
/// just before the outcome.
fn visit_site(
    network: &Network,
    browser: &Browser,
    url: &Url,
    config: &CrawlConfig,
    caches: &CrawlCaches,
    plan: Option<&BreakerPlan>,
    index: usize,
) -> (SiteRecord, Option<VisitTrace>) {
    let rec = if config.trace_enabled() {
        VisitRecorder::new(&url.to_string(), Some(Arc::clone(&caches.metrics)))
    } else {
        VisitRecorder::disabled()
    };
    let no_open = BTreeSet::new();
    let open_hosts = plan.and_then(|p| p.open_hosts(index)).unwrap_or(&no_open);
    let mut attempt: u32 = 0;
    let outcome = loop {
        let result = if config.isolate_panics {
            match catch_unwind(AssertUnwindSafe(|| {
                browser.visit_supervised(network, url, attempt, &rec, open_hosts)
            })) {
                Ok(r) => r,
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    rec.instant("visit.panic", || msg.to_string());
                    break SiteOutcome::Failure(SiteFailure {
                        kind: FailureKind::WorkerPanic,
                        error: format!("worker panicked: {msg}"),
                        attempts: attempt + 1,
                        salvage: None,
                    });
                }
            }
        } else {
            browser.visit_supervised(network, url, attempt, &rec, open_hosts)
        };
        match result {
            Ok(visit) => break SiteOutcome::Success(Box::new(visit)),
            Err(abort) => {
                let mut failure = SiteFailure::from_visit_error(&abort.error, attempt + 1);
                if config.retry.should_retry(failure.kind) && attempt < config.retry.max_retries {
                    // Bounded deterministic backoff; the interval is part
                    // of the schedule, not a real sleep (simulated time).
                    // Partial evidence from a retried attempt is dropped:
                    // only the final attempt's salvage describes the site.
                    let backoff = config.retry.backoff_ms(attempt);
                    rec.instant("visit.retry", || {
                        format!("{} (backoff {backoff}ms)", failure.kind.as_str())
                    });
                    attempt += 1;
                    continue;
                }
                if config.salvage {
                    failure.salvage = abort.partial;
                    if failure.salvage.is_some() {
                        let fidelity = failure.fidelity();
                        rec.instant("visit.salvage", || fidelity.as_str().to_string());
                    }
                }
                break SiteOutcome::Failure(failure);
            }
        }
    };
    if let Some(plan) = plan {
        for (host, event) in plan.transitions_at(index) {
            rec.instant(event.instant_name(), || host.clone());
        }
    }
    rec.instant("visit.outcome", || match &outcome {
        SiteOutcome::Success(_) => "success".to_string(),
        SiteOutcome::Failure(f) => f.kind.as_str().to_string(),
    });
    rec.bump(match &outcome {
        SiteOutcome::Success(_) => "visit.successes",
        SiteOutcome::Failure(_) => "visit.failures",
    });
    let trace = rec.finish();
    (
        SiteRecord {
            url: url.clone(),
            outcome,
        },
        trace,
    )
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.as_str()
    } else {
        "<non-string panic payload>"
    }
}

/// Cache-efficiency counters for one crawl (or one span of crawls when
/// caches are reused across them). Parses and canonical renders happen
/// exactly once per unique key whatever the worker count or schedule, so
/// totals are deterministic for a given workload.
///
/// Stats ride alongside the dataset, never inside it: `CrawlDataset`
/// serialization stays byte-identical whatever the cache configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrawlStats {
    /// Sites visited (one record each).
    pub sites: u64,
    /// Script bodies lexed + parsed.
    pub script_parses: u64,
    /// Script bodies lowered to bytecode (unique *executed* bodies —
    /// parse-only triage never compiles, so `script_compiles <=
    /// script_parses`). Engine-independent: cached execution always
    /// attaches bytecode so this count matches between the VM and the
    /// tree-walking oracle.
    pub script_compiles: u64,
    /// Compiled-script cache hits.
    pub script_cache_hits: u64,
    /// Scripts interpreted in place (memo miss, bypass, or memo off).
    pub script_executions: u64,
    /// Scripts satisfied by replaying a memoized render.
    pub memo_hits: u64,
    /// Canonical scratch renders performed for the memo.
    pub memo_computes: u64,
    /// Memo lookups that fell back to in-place execution.
    pub memo_bypasses: u64,
    /// Static triage analyses run (== unique script bodies seen).
    pub static_analyses: u64,
    /// Triage lookups answered from the analysis cache.
    pub analysis_hits: u64,
    /// Visit traces delivered to the configured sink (0 when tracing is
    pub trace_visits: u64,
    /// Spans across all delivered traces.
    pub trace_spans: u64,
    /// Events (span starts/ends + instants) across all delivered traces.
    pub trace_events: u64,
    /// Circuit-open transitions over the crawl (0 when breakers are off).
    pub breaker_opens: u64,
    /// Host references short-circuited by an open breaker.
    pub breaker_short_circuits: u64,
    /// Failure records that carry salvaged partial evidence.
    pub salvaged_visits: u64,
}

impl CrawlStats {
    /// Reads the current cumulative totals out of a cache handle.
    pub fn snapshot(caches: &CrawlCaches) -> CrawlStats {
        let script = caches
            .scripts
            .as_deref()
            .map(|c| c.stats())
            .unwrap_or_default();
        let perf = caches.perf.snapshot();
        let analysis = caches.analysis.stats();
        CrawlStats {
            sites: 0,
            script_parses: script.parses,
            script_compiles: script.compiles,
            script_cache_hits: script.hits,
            script_executions: perf.script_executions,
            memo_hits: perf.memo_hits,
            memo_computes: perf.memo_computes,
            memo_bypasses: perf.memo_bypasses,
            static_analyses: analysis.analyses,
            analysis_hits: analysis.hits,
            trace_visits: 0,
            trace_spans: 0,
            trace_events: 0,
            breaker_opens: 0,
            breaker_short_circuits: 0,
            salvaged_visits: 0,
        }
    }

    /// Counter movement between two snapshots (for warm-cache spans).
    pub fn since(&self, before: &CrawlStats) -> CrawlStats {
        CrawlStats {
            sites: self.sites - before.sites,
            script_parses: self.script_parses - before.script_parses,
            script_compiles: self.script_compiles - before.script_compiles,
            script_cache_hits: self.script_cache_hits - before.script_cache_hits,
            script_executions: self.script_executions - before.script_executions,
            memo_hits: self.memo_hits - before.memo_hits,
            memo_computes: self.memo_computes - before.memo_computes,
            memo_bypasses: self.memo_bypasses - before.memo_bypasses,
            static_analyses: self.static_analyses - before.static_analyses,
            analysis_hits: self.analysis_hits - before.analysis_hits,
            trace_visits: self.trace_visits - before.trace_visits,
            trace_spans: self.trace_spans - before.trace_spans,
            trace_events: self.trace_events - before.trace_events,
            breaker_opens: self.breaker_opens - before.breaker_opens,
            breaker_short_circuits: self.breaker_short_circuits - before.breaker_short_circuits,
            salvaged_visits: self.salvaged_visits - before.salvaged_visits,
        }
    }

    /// Compiled-script cache hit rate in `[0, 1]`.
    pub fn script_cache_hit_rate(&self) -> f64 {
        let lookups = self.script_parses + self.script_cache_hits;
        if lookups == 0 {
            0.0
        } else {
            self.script_cache_hits as f64 / lookups as f64
        }
    }

    /// Render-memo hit rate in `[0, 1]` over all memo lookups.
    pub fn memo_hit_rate(&self) -> f64 {
        let lookups = self.memo_hits + self.memo_computes + self.memo_bypasses;
        if lookups == 0 {
            0.0
        } else {
            self.memo_hits as f64 / lookups as f64
        }
    }
}

/// Crawls the frontier, returning one record per frontier URL (in order).
pub fn crawl(network: &Network, frontier: &[Url], config: &CrawlConfig) -> CrawlDataset {
    crawl_with_stats(network, frontier, config).0
}

/// [`crawl`], also returning the cache-efficiency stats for the run.
/// Caches live for this crawl only; use [`crawl_with_caches`] to keep
/// them warm across crawls.
pub fn crawl_with_stats(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
) -> (CrawlDataset, CrawlStats) {
    let caches = config.build_caches();
    crawl_with_caches(network, frontier, config, &caches)
}

/// Crawls with caller-owned caches, so repeated crawls over overlapping
/// workloads (re-crawls, ablations, warm benchmark passes) skip work the
/// caches already hold. The returned stats cover only this crawl's span.
pub fn crawl_with_caches(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    caches: &CrawlCaches,
) -> (CrawlDataset, CrawlStats) {
    let before = CrawlStats::snapshot(caches);
    let plan = BreakerPlan::plan(network, frontier, config);
    let (slots, traces) = crawl_subset(network, frontier, config, None, caches, plan.as_ref());
    let mut stats = CrawlStats::snapshot(caches).since(&before);
    stats.sites = frontier.len() as u64;
    (stats.trace_visits, stats.trace_spans, stats.trace_events) = flush_traces(config, traces);
    if let Some(plan) = &plan {
        stats.breaker_opens = plan.total_opens();
        stats.breaker_short_circuits = plan.total_short_circuits();
    }
    let dataset = CrawlDataset::from_slots(config, slots);
    stats.salvaged_visits = dataset.salvaged().count() as u64;
    (dataset, stats)
}

/// Crawls only the frontier indices in `subset` (all of them when `None`);
/// records for skipped indices are left empty. Shared engine for
/// [`crawl`] and [`resume_crawl`].
///
/// Scheduling is one atomic cursor over the job list: each worker claims
/// the next unclaimed job with a single `fetch_add`. Unlike static
/// sharding, a host serving under a latency-spike fault stalls only the
/// worker currently on it while the rest drain the remaining frontier;
/// unlike a channel feed, claiming is wait-free and results land
/// lock-free in per-site slots (no cross-thread transport).
/// Scheduling freedom never reaches the dataset because every record is a
/// pure per-site function, reassembled in frontier order below.
fn crawl_subset(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    subset: Option<&[usize]>,
    caches: &CrawlCaches,
    plan: Option<&BreakerPlan>,
) -> (Vec<Option<SiteRecord>>, Vec<Option<VisitTrace>>) {
    let jobs: Vec<usize> = match subset {
        Some(indices) => indices.to_vec(),
        None => (0..frontier.len()).collect(),
    };
    let (chunk_records, chunk_traces) = crawl_chunk(network, frontier, config, &jobs, caches, plan);
    // Scatter the dense chunk results back into frontier-indexed slots;
    // skipped indices stay empty.
    let mut records: Vec<Option<SiteRecord>> = (0..frontier.len()).map(|_| None).collect();
    let mut traces: Vec<Option<VisitTrace>> = (0..frontier.len()).map(|_| None).collect();
    for ((&i, record), trace) in jobs.iter().zip(chunk_records).zip(chunk_traces) {
        records[i] = Some(record);
        traces[i] = trace;
    }
    (records, traces)
}

/// Crawls exactly the frontier indices in `indices`, returning results
/// **densely** (position `j` holds the record for `frontier[indices[j]]`).
/// This is the memory-bounded scheduler core: slot storage is sized to
/// the chunk, not the frontier, so [`crawl_streamed`] can drive a
/// million-site frontier through fixed-size chunks.
///
/// Scheduling is one atomic cursor over the chunk: each worker claims
/// the next unclaimed position with a single `fetch_add`. Unlike static
/// sharding, a host serving under a latency-spike fault stalls only the
/// worker currently on it while the rest drain the remaining chunk;
/// unlike a channel feed, claiming is wait-free and results land
/// lock-free in per-position slots (no cross-thread transport).
/// Scheduling freedom never reaches the dataset because every record is a
/// pure per-site function, reassembled in chunk order below. The breaker
/// plan is indexed by *frontier* position (`indices[j]`), so chunked and
/// whole-frontier runs see identical breaker state.
fn crawl_chunk(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    indices: &[usize],
    caches: &CrawlCaches,
    plan: Option<&BreakerPlan>,
) -> (Vec<SiteRecord>, Vec<Option<VisitTrace>>) {
    let workers = config.workers.max(1);
    let cursor = AtomicUsize::new(0);

    // Results go straight into per-position slots instead of through a
    // channel: each slot is written by exactly the worker that claimed
    // its position, so a `OnceLock` per position gives lock-free
    // collection with no cross-thread wakeups (a per-record channel send
    // costs more than a whole memoized visit). The visit's trace rides in
    // the same slot so it inherits the same ownership story.
    let slots: Vec<OnceLock<(SiteRecord, Option<VisitTrace>)>> =
        (0..indices.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let slots = &slots;
                scope.spawn(move || {
                    let browser = config.build_browser(config.worker_caches(caches));
                    loop {
                        let claimed = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = indices.get(claimed) else {
                            break;
                        };
                        let result =
                            visit_site(network, &browser, &frontier[i], config, caches, plan, i);
                        let _ = slots[claimed].set(result);
                    }
                })
            })
            .collect();
        // Consume worker panics here (possible only with
        // `isolate_panics: false`): the scope would otherwise re-raise
        // them after implicit joins, killing the whole crawl. A dead
        // worker's claimed-but-unfilled slot degrades to a failure
        // record in the pass below.
        for handle in handles {
            let _ = handle.join();
        }
    });

    let mut records: Vec<SiteRecord> = Vec::with_capacity(indices.len());
    let mut traces: Vec<Option<VisitTrace>> = Vec::with_capacity(indices.len());
    for (j, slot) in slots.into_iter().enumerate() {
        match slot.into_inner() {
            Some((record, trace)) => {
                records.push(record);
                traces.push(trace);
            }
            None => {
                // A worker that died mid-visit never filled the slot for
                // the position it had claimed; degrade to a typed failure
                // instead of panicking the harness.
                records.push(lost_record(&frontier[indices[j]]));
                traces.push(None);
            }
        }
    }
    (records, traces)
}

/// The contiguous frontier range owned by shard `shard` of `count`:
/// `[shard·len/count, (shard+1)·len/count)`. The ranges partition
/// `0..len` exactly, so N independent shard crawls cover every site once.
pub fn shard_range(len: usize, shard: usize, count: usize) -> std::ops::Range<usize> {
    let count = count.max(1);
    debug_assert!(shard < count, "shard {shard} out of {count}");
    (shard * len / count)..((shard + 1) * len / count)
}

/// Streams a crawl over `range` of the frontier in bounded chunks of
/// `chunk_sites`, delivering each record to `sink` as
/// `(frontier_index, record)` in frontier order — records are **not**
/// materialized into a dataset, so peak memory is O(chunk), independent
/// of frontier length.
///
/// Determinism contract, identical to [`crawl_with_caches`]:
///
/// * the breaker plan is computed over the **full** frontier, so chunk
///   boundaries and shard choice never reach breaker state;
/// * each record is a pure function of `(network, url, config)`, so the
///   delivered stream is byte-identical to the records of a materialized
///   crawl at any worker count;
/// * traces flush to `config.trace` per chunk, in frontier order, from
///   the calling thread — the sink sees the exact stream a whole-frontier
///   crawl delivers.
///
/// The returned stats cover the range (`sites = range.len()`), with cache
/// counters measured across the chunks as one span. Breaker totals are
/// whole-plan numbers and are reported only when `range` covers the full
/// frontier; per-shard callers should take them from the merged run
/// instead of summing shards.
pub fn crawl_streamed_range(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    caches: &CrawlCaches,
    range: std::ops::Range<usize>,
    chunk_sites: usize,
    mut sink: impl FnMut(usize, SiteRecord),
) -> CrawlStats {
    crawl_streamed_range_until(
        network,
        frontier,
        config,
        caches,
        range,
        chunk_sites,
        |index, record| {
            sink(index, record);
            std::ops::ControlFlow::Continue(())
        },
    )
}

/// [`crawl_streamed_range`] with an abortable sink: returning
/// [`ControlFlow::Break`](std::ops::ControlFlow::Break) stops the crawl
/// immediately — no further sites are visited, so a sink that can no
/// longer persist records (a spill I/O error, a fenced lease) does not
/// burn the rest of the range crawling into the void.
///
/// `stats.sites` counts the records actually delivered to the sink; on
/// an uninterrupted run that equals `range.len()`, exactly as
/// [`crawl_streamed_range`] reports.
pub fn crawl_streamed_range_until(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    caches: &CrawlCaches,
    range: std::ops::Range<usize>,
    chunk_sites: usize,
    mut sink: impl FnMut(usize, SiteRecord) -> std::ops::ControlFlow<()>,
) -> CrawlStats {
    let before = CrawlStats::snapshot(caches);
    let plan = BreakerPlan::plan(network, frontier, config);
    let chunk = chunk_sites.max(1);
    let full = range.start == 0 && range.end == frontier.len();
    let mut delivered = 0u64;
    let mut trace_totals = (0u64, 0u64, 0u64);
    let mut salvaged = 0u64;
    let mut start = range.start;
    'chunks: while start < range.end {
        let end = (start + chunk).min(range.end);
        let indices: Vec<usize> = (start..end).collect();
        let (records, traces) =
            crawl_chunk(network, frontier, config, &indices, caches, plan.as_ref());
        let (v, s, e) = flush_traces(config, traces);
        trace_totals.0 += v;
        trace_totals.1 += s;
        trace_totals.2 += e;
        for (offset, record) in records.into_iter().enumerate() {
            if matches!(&record.outcome, SiteOutcome::Failure(f) if f.salvage.is_some()) {
                salvaged += 1;
            }
            delivered += 1;
            if sink(start + offset, record).is_break() {
                break 'chunks;
            }
        }
        start = end;
    }
    let mut stats = CrawlStats::snapshot(caches).since(&before);
    stats.sites = delivered;
    (stats.trace_visits, stats.trace_spans, stats.trace_events) = trace_totals;
    if full {
        if let Some(plan) = &plan {
            stats.breaker_opens = plan.total_opens();
            stats.breaker_short_circuits = plan.total_short_circuits();
        }
    }
    stats.salvaged_visits = salvaged;
    stats
}

/// [`crawl_streamed_range`] over the whole frontier: the drop-in
/// streaming replacement for [`crawl_with_caches`] when the caller folds
/// records instead of materializing a dataset.
pub fn crawl_streamed(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    caches: &CrawlCaches,
    chunk_sites: usize,
    sink: impl FnMut(usize, SiteRecord),
) -> CrawlStats {
    crawl_streamed_range(
        network,
        frontier,
        config,
        caches,
        0..frontier.len(),
        chunk_sites,
        sink,
    )
}

/// Delivers finished visit traces to the configured sink, in frontier
/// order, from the calling thread after every worker has joined — the
/// sink therefore observes one deterministic stream whatever the worker
/// count or claim schedule. Returns `(visits, spans, events)` delivered.
fn flush_traces(config: &CrawlConfig, traces: Vec<Option<VisitTrace>>) -> (u64, u64, u64) {
    let Some(sink) = config.trace.as_ref().filter(|s| s.enabled()) else {
        return (0, 0, 0);
    };
    let (mut visits, mut spans, mut events) = (0u64, 0u64, 0u64);
    for trace in traces.into_iter().flatten() {
        visits += 1;
        spans += trace.span_count();
        events += trace.events.len() as u64;
        sink.consume(trace);
    }
    (visits, spans, events)
}

fn lost_record(url: &Url) -> SiteRecord {
    SiteRecord {
        url: url.clone(),
        outcome: SiteOutcome::Failure(SiteFailure {
            kind: FailureKind::WorkerPanic,
            error: "worker died before reporting a record".into(),
            attempts: 0,
            salvage: None,
        }),
    }
}

impl CrawlDataset {
    fn from_slots(config: &CrawlConfig, slots: Vec<Option<SiteRecord>>) -> CrawlDataset {
        CrawlDataset {
            label: config.label.clone(),
            device_id: config.device.id.clone(),
            records: slots.into_iter().flatten().collect(),
        }
    }
}

/// Resumes a crawl from a checkpoint: sites already recorded in
/// `checkpoint` are skipped, the rest are crawled, and the merged dataset
/// comes back in frontier order. Because records are pure functions of
/// `(url, config, network)`, the merge is byte-identical to the dataset a
/// single uninterrupted [`crawl`] would have produced.
pub fn resume_crawl(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    checkpoint: &CrawlDataset,
) -> CrawlDataset {
    let done: std::collections::BTreeMap<&Url, &SiteRecord> =
        checkpoint.records.iter().map(|r| (&r.url, r)).collect();
    let todo: Vec<usize> = (0..frontier.len())
        .filter(|&i| !done.contains_key(&frontier[i]))
        .collect();
    let caches = config.build_caches();
    // The plan is computed over the FULL frontier, not the todo subset:
    // breaker state must be the same whether the crawl ran uninterrupted
    // or resumed — that is what keeps the merged dataset byte-identical.
    let plan = BreakerPlan::plan(network, frontier, config);
    let (mut slots, traces) = crawl_subset(
        network,
        frontier,
        config,
        Some(&todo),
        &caches,
        plan.as_ref(),
    );
    let _ = flush_traces(config, traces);
    for (i, slot) in slots.iter_mut().enumerate() {
        if slot.is_none() {
            *slot = Some((*done[&frontier[i]]).clone());
        }
    }
    CrawlDataset::from_slots(config, slots)
}

/// One shard worker's crawl handle: a browser plus the shared caches and
/// the full-frontier breaker plan, visiting a single site per call.
///
/// This is the execution core the supervisor ([`supervisor`]) gives each
/// simulated worker process. [`SiteCrawler::visit`] has the same purity
/// contract as every other crawl entry point — the record is a function
/// of `(network, url, config)` with breaker state planned over the
/// *full* frontier — so first, re-leased, and speculative executions of
/// the same site all produce byte-identical records, which is what makes
/// duplicate-dropping at merge time safe.
pub struct SiteCrawler<'a> {
    network: &'a Network,
    frontier: &'a [Url],
    config: &'a CrawlConfig,
    caches: &'a CrawlCaches,
    plan: Option<&'a BreakerPlan>,
    browser: Browser,
}

impl std::fmt::Debug for SiteCrawler<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SiteCrawler")
            .field("frontier", &self.frontier.len())
            .field("label", &self.config.label)
            .finish_non_exhaustive()
    }
}

impl<'a> SiteCrawler<'a> {
    /// Builds one worker's crawler over shared caches and a breaker plan
    /// that **must** have been computed over the full `frontier` (pass
    /// [`BreakerPlan::plan`]'s result, or `None` when breakers are off).
    pub fn new(
        network: &'a Network,
        frontier: &'a [Url],
        config: &'a CrawlConfig,
        caches: &'a CrawlCaches,
        plan: Option<&'a BreakerPlan>,
    ) -> SiteCrawler<'a> {
        let browser = config.build_browser(config.worker_caches(caches));
        SiteCrawler {
            network,
            frontier,
            config,
            caches,
            plan,
            browser,
        }
    }

    /// Visits `frontier[index]` and returns its record. Traces are
    /// dropped: supervised workers report durably through segments, not
    /// through the crawl's trace sink.
    pub fn visit(&self, index: usize) -> SiteRecord {
        let (record, _trace) = visit_site(
            self.network,
            &self.browser,
            &self.frontier[index],
            self.config,
            self.caches,
            self.plan,
            index,
        );
        record
    }
}

/// Convenience: visits a single page with a one-off browser (used by the
/// attribution engine's demo/customer crawls).
pub fn visit_once(
    network: &Network,
    url: &Url,
    device: DeviceProfile,
) -> Result<PageVisit, canvassing_browser::VisitError> {
    Browser::new(device).visit(network, url)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_net::{Fault, PageResource, Resource, ScriptRef, ScriptResource};

    fn network_with_sites(n: usize) -> (Network, Vec<Url>) {
        let mut network = Network::new();
        let mut frontier = Vec::new();
        let script_url = Url::https("fp.example.net", "/fp.js");
        network.host(
            &script_url,
            Resource::Script(ScriptResource {
                source: r##"
                    let c = document.createElement("canvas");
                    c.width = 30; c.height = 20;
                    let x = c.getContext("2d");
                    x.fillStyle = "#069";
                    x.fillRect(1, 1, 20, 10);
                    c.toDataURL();
                "##
                .to_string(),
                label: "fp".into(),
            }),
        );
        for i in 0..n {
            let url = Url::https(&format!("site{i}.com"), "/");
            network.host(
                &url,
                Resource::Page(PageResource {
                    scripts: if i % 2 == 0 {
                        vec![ScriptRef::External(script_url.clone())]
                    } else {
                        vec![]
                    },
                    consent_banner: false,
                    bot_check: false,
                }),
            );
            frontier.push(url);
        }
        // One down site.
        network.faults.take_down("site1.com");
        (network, frontier)
    }

    #[test]
    fn crawl_visits_every_site_in_order() {
        let (network, frontier) = network_with_sites(20);
        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        assert_eq!(ds.records.len(), 20);
        for (r, u) in ds.records.iter().zip(&frontier) {
            assert_eq!(&r.url, u);
        }
        assert_eq!(ds.failed().count(), 1);
        assert_eq!(ds.successful().count(), 19);
        let (_, failure) = ds.failed().next().unwrap();
        assert_eq!(failure.kind, FailureKind::Unreachable);
        assert_eq!(failure.attempts, 1);
    }

    #[test]
    fn crawl_is_deterministic_across_worker_counts() {
        let (network, frontier) = network_with_sites(30);
        let mut one = CrawlConfig::control();
        one.workers = 1;
        let mut many = CrawlConfig::control();
        many.workers = 7;
        let a = crawl(&network, &frontier, &one);
        let b = crawl(&network, &frontier, &many);
        let urls = |d: &CrawlDataset| -> Vec<String> {
            d.successful()
                .flat_map(|(_, v)| v.extractions.iter().map(|e| e.data_url.clone()))
                .collect()
        };
        assert_eq!(urls(&a), urls(&b));
    }

    #[test]
    fn identical_sites_share_canvas_bytes() {
        let (network, frontier) = network_with_sites(10);
        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        let urls: Vec<&str> = ds
            .successful()
            .flat_map(|(_, v)| v.extractions.iter().map(|e| e.data_url.as_str()))
            .collect();
        assert!(urls.len() >= 4);
        assert!(urls.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn dataset_roundtrips_through_json() {
        let (network, frontier) = network_with_sites(4);
        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        let json = ds.to_json().unwrap();
        let back = CrawlDataset::from_json(&json).unwrap();
        assert_eq!(back.records.len(), ds.records.len());
        assert_eq!(back.label, ds.label);
    }

    #[test]
    fn transient_fault_fails_without_retries_and_heals_with_them() {
        let (mut network, frontier) = network_with_sites(6);
        network
            .faults
            .inject("site2.com", Fault::TransientConnect { failures: 2 });

        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        let transient: Vec<_> = ds
            .failed()
            .filter(|(_, f)| f.kind == FailureKind::Transient)
            .collect();
        assert_eq!(transient.len(), 1, "visit-once records the flake");

        let mut retrying = CrawlConfig::control();
        retrying.retry = RetryPolicy::retries(2);
        let ds = crawl(&network, &frontier, &retrying);
        assert!(
            ds.failed().all(|(_, f)| f.kind != FailureKind::Transient),
            "two retries outlast two planned failures"
        );
        // Insufficient retries still fail, with the attempts recorded.
        let mut one_retry = CrawlConfig::control();
        one_retry.retry = RetryPolicy::retries(1);
        let ds = crawl(&network, &frontier, &one_retry);
        let (_, failure) = ds
            .failed()
            .find(|(_, f)| f.kind == FailureKind::Transient)
            .unwrap();
        assert_eq!(failure.attempts, 2);
    }

    #[test]
    fn retries_never_touch_permanent_failures() {
        let (network, frontier) = network_with_sites(6);
        let mut retrying = CrawlConfig::control();
        retrying.retry = RetryPolicy::retries(5);
        let ds = crawl(&network, &frontier, &retrying);
        let (_, failure) = ds.failed().next().unwrap();
        assert_eq!(failure.kind, FailureKind::Unreachable);
        assert_eq!(failure.attempts, 1, "permanent failures are not retried");
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_capped() {
        let policy = RetryPolicy::retries(8);
        let schedule: Vec<u64> = (0..8).map(|a| policy.backoff_ms(a)).collect();
        assert_eq!(schedule[0], 250);
        assert_eq!(schedule[1], 500);
        assert_eq!(schedule[2], 1_000);
        assert!(schedule.iter().all(|&b| b <= policy.backoff_cap_ms));
        assert_eq!(*schedule.last().unwrap(), policy.backoff_cap_ms);
        // Absurd attempt numbers don't overflow.
        assert_eq!(policy.backoff_ms(200), policy.backoff_cap_ms);
    }

    #[test]
    fn injected_panic_degrades_to_worker_panic_record() {
        let (mut network, frontier) = network_with_sites(8);
        network.faults.inject("site3.com", Fault::Panic);
        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        assert_eq!(ds.records.len(), 8, "one record per frontier URL");
        let (url, failure) = ds
            .failed()
            .find(|(_, f)| f.kind == FailureKind::WorkerPanic)
            .unwrap();
        assert_eq!(url.host, "site3.com");
        assert!(failure.error.contains("injected fault"));
        assert_eq!(ds.successful().count(), 6);
    }

    #[test]
    fn killed_worker_degrades_to_failure_record_not_harness_panic() {
        // With isolation off, the panic kills the worker thread itself;
        // the harness must still produce one record per frontier URL.
        let (mut network, frontier) = network_with_sites(8);
        network.faults.inject("site3.com", Fault::Panic);
        let mut config = CrawlConfig::control();
        config.isolate_panics = false;
        config.workers = 2;
        let ds = crawl(&network, &frontier, &config);
        assert_eq!(ds.records.len(), 8, "one record per frontier URL");
        let lost: Vec<_> = ds
            .failed()
            .filter(|(_, f)| f.kind == FailureKind::WorkerPanic)
            .collect();
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].0.host, "site3.com");
    }

    #[test]
    fn resume_merges_to_the_uninterrupted_dataset() {
        let (network, frontier) = network_with_sites(12);
        let config = CrawlConfig::control();
        let full = crawl(&network, &frontier, &config);

        // Simulate an interrupted crawl: only the first 5 sites recorded.
        let checkpoint = CrawlDataset {
            label: full.label.clone(),
            device_id: full.device_id.clone(),
            records: full.records[..5].to_vec(),
        };
        let resumed = resume_crawl(&network, &frontier, &config, &checkpoint);
        assert_eq!(
            resumed.to_json().unwrap(),
            full.to_json().unwrap(),
            "resume must be byte-identical to the uninterrupted crawl"
        );
    }

    #[test]
    fn resume_with_complete_checkpoint_revisits_nothing() {
        let (network, frontier) = network_with_sites(5);
        let config = CrawlConfig::control();
        let full = crawl(&network, &frontier, &config);
        let resumed = resume_crawl(&network, &frontier, &config, &full);
        assert_eq!(resumed.to_json().unwrap(), full.to_json().unwrap());
    }

    #[test]
    fn caching_never_changes_the_dataset() {
        let (network, frontier) = network_with_sites(24);
        let cached = CrawlConfig::control();
        let mut uncached = CrawlConfig::control();
        uncached.caching = CachingPolicy::disabled();
        let a = crawl(&network, &frontier, &cached);
        let b = crawl(&network, &frontier, &uncached);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn cached_crawl_is_deterministic_across_worker_counts() {
        let (network, frontier) = network_with_sites(24);
        let mut one = CrawlConfig::control();
        one.workers = 1;
        let mut many = CrawlConfig::control();
        many.workers = 8;
        let a = crawl(&network, &frontier, &one);
        let b = crawl(&network, &frontier, &many);
        assert_eq!(a.to_json().unwrap(), b.to_json().unwrap());
    }

    #[test]
    fn stats_show_one_parse_and_one_render_per_unique_script() {
        let (network, frontier) = network_with_sites(20);
        let (_, stats) = crawl_with_stats(&network, &frontier, &CrawlConfig::control());
        assert_eq!(stats.sites, 20);
        // 10 even-indexed sites reference the same script body (the down
        // site is odd-indexed), so 10 script runs reach the engine.
        assert_eq!(stats.script_parses, 1, "one parse per unique body");
        assert_eq!(stats.memo_computes, 1, "one canonical render per body");
        assert_eq!(stats.memo_hits, 9);
        assert_eq!(stats.memo_bypasses, 0);
        assert_eq!(
            stats.script_executions, 0,
            "no in-place runs: the canonical render counts as a compute"
        );
        assert!(stats.memo_hit_rate() > 0.8);
        assert_eq!(stats.static_analyses, 1, "one triage per unique body");
        assert_eq!(stats.analysis_hits, 9);
    }

    #[test]
    fn uncached_stats_count_every_execution() {
        let (network, frontier) = network_with_sites(20);
        let mut config = CrawlConfig::control();
        config.caching = CachingPolicy::disabled();
        let (_, stats) = crawl_with_stats(&network, &frontier, &config);
        assert_eq!(stats.script_parses, 0, "no cache: parses are untracked");
        assert_eq!(stats.memo_hits + stats.memo_computes, 0);
        assert_eq!(stats.script_executions, 10, "every script runs in place");
        assert_eq!(stats.script_cache_hit_rate(), 0.0);
        assert_eq!(stats.memo_hit_rate(), 0.0);
        // Triage is not a cache layer: it still runs (privately parsed)
        // once per unique body with every performance cache off.
        assert_eq!(stats.static_analyses, 1);
        assert_eq!(stats.analysis_hits, 9);
    }

    #[test]
    fn warm_caches_skip_parse_and_render_on_recrawl() {
        let (network, frontier) = network_with_sites(16);
        let config = CrawlConfig::control();
        let caches = config.build_caches();
        let (cold_ds, cold) = crawl_with_caches(&network, &frontier, &config, &caches);
        let (warm_ds, warm) = crawl_with_caches(&network, &frontier, &config, &caches);
        assert_eq!(cold_ds.to_json().unwrap(), warm_ds.to_json().unwrap());
        assert_eq!(cold.script_parses, 1);
        assert_eq!(cold.memo_computes, 1);
        assert_eq!(warm.script_parses, 0, "warm pass re-parses nothing");
        assert_eq!(warm.memo_computes, 0, "warm pass re-renders nothing");
        assert!(warm.memo_hits >= 8);
    }

    #[test]
    fn defended_crawl_executes_every_script_in_place() {
        let (network, frontier) = network_with_sites(12);
        let mut config = CrawlConfig::control();
        config.defense = DefenseMode::RandomizePerRender { seed: 9 };
        let (_, stats) = crawl_with_stats(&network, &frontier, &config);
        assert_eq!(stats.memo_hits, 0, "defenses disable memo replay");
        assert_eq!(stats.memo_computes, 0);
        assert_eq!(stats.script_executions, 6, "every live site runs in place");
        assert_eq!(stats.script_parses, 1, "compile cache still shared");
        // Triage performed the one parse; all 6 in-place executions hit.
        assert_eq!(stats.script_cache_hits, 6);
        assert_eq!(stats.static_analyses, 1);
    }

    #[test]
    fn static_triage_runs_once_per_unique_hash_across_worker_counts() {
        // Acceptance: analysis runs exactly once per unique script hash,
        // deterministically — the stats must agree across worker counts
        // and match the number of distinct bodies in the workload.
        let (network, frontier) = network_with_sites(24);
        for workers in [1, 3, 8] {
            let mut config = CrawlConfig::control();
            config.workers = workers;
            let (ds, stats) = crawl_with_stats(&network, &frontier, &config);
            let unique_hashes: std::collections::BTreeSet<u64> = ds
                .successful()
                .flat_map(|(_, v)| v.scripts.iter().map(|s| s.source_hash))
                .collect();
            assert_eq!(
                stats.static_analyses,
                unique_hashes.len() as u64,
                "workers={workers}: one analysis per unique hash"
            );
            assert_eq!(
                stats.static_analyses + stats.analysis_hits,
                ds.successful().map(|(_, v)| v.scripts.len() as u64).sum(),
                "workers={workers}: every loaded script was triaged"
            );
            // Every loaded script carries a verdict (bodies were fetched).
            assert!(ds
                .successful()
                .flat_map(|(_, v)| v.scripts.iter())
                .all(|s| s.verdict.is_some()));
        }
    }

    #[test]
    fn traced_crawl_delivers_traces_in_frontier_order() {
        use canvassing_trace::RingSink;
        let (network, frontier) = network_with_sites(12);
        let sink = Arc::new(RingSink::new(64));
        let mut config = CrawlConfig::control();
        config.workers = 5;
        config.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let (_, stats) = crawl_with_stats(&network, &frontier, &config);

        let traces = sink.traces();
        assert_eq!(traces.len(), frontier.len(), "one trace per frontier URL");
        assert_eq!(stats.trace_visits, frontier.len() as u64);
        assert!(stats.trace_spans > 0);
        assert!(stats.trace_events >= stats.trace_spans * 2);
        for (trace, url) in traces.iter().zip(&frontier) {
            assert_eq!(trace.label, url.to_string(), "frontier order preserved");
        }
        // Every successful visit's trace covers the full stage vocabulary;
        // the down site carries its failure as a visit.outcome instant.
        let all_names: Vec<_> = traces.iter().map(canvassing_trace::span_names).collect();
        for (i, names) in all_names.iter().enumerate() {
            if frontier[i].to_string().contains("site1.com") {
                continue;
            }
            for stage in ["fetch", "triage", "parse", "execute", "extract"] {
                assert!(names.contains(stage), "site{i} missing stage {stage}");
            }
        }
    }

    #[test]
    fn traced_streams_identical_across_worker_counts() {
        use canvassing_trace::RingSink;
        let (mut network, frontier) = network_with_sites(16);
        network
            .faults
            .inject("site2.com", Fault::TransientConnect { failures: 1 });
        let run = |workers: usize| {
            let sink = Arc::new(RingSink::new(64));
            let mut config = CrawlConfig::control();
            config.workers = workers;
            config.retry = RetryPolicy::retries(2);
            config.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
            crawl(&network, &frontier, &config);
            sink.traces()
        };
        let one = run(1);
        let eight = run(8);
        assert_eq!(one, eight, "trace streams are schedule-independent");
        // The retried site's trace carries the retry instant in both runs.
        let retried = one
            .iter()
            .find(|t| t.label.contains("site2.com"))
            .expect("site2 trace present");
        assert!(retried.events.iter().any(|e| matches!(
            &e.kind,
            canvassing_trace::EventKind::Instant { name, .. } if *name == "visit.retry"
        )));
    }

    #[test]
    fn null_sink_and_no_sink_record_nothing() {
        use canvassing_trace::{CountingSink, NullSink};
        let (network, frontier) = network_with_sites(6);
        let mut config = CrawlConfig::control();
        config.trace = Some(Arc::new(NullSink));
        let (_, stats) = crawl_with_stats(&network, &frontier, &config);
        assert_eq!(stats.trace_visits, 0, "disabled sink short-circuits");
        assert_eq!(stats.trace_events, 0);

        let counting = Arc::new(CountingSink::new());
        config.trace = Some(Arc::clone(&counting) as Arc<dyn TraceSink>);
        let (_, stats) = crawl_with_stats(&network, &frontier, &config);
        let (visits, spans, events) = counting.totals();
        assert_eq!(visits, frontier.len() as u64);
        assert_eq!(stats.trace_visits, visits);
        assert_eq!(stats.trace_spans, spans);
        assert_eq!(stats.trace_events, events);
    }

    /// A frontier whose shared script host is dead: with breakers on, the
    /// host's circuit opens and later sites' script loads short-circuit.
    fn breaker_workload() -> (Network, Vec<Url>) {
        let (mut network, frontier) = network_with_sites(20);
        network.faults.take_down("fp.example.net");
        (network, frontier)
    }

    #[test]
    fn breakers_short_circuit_and_stay_deterministic_across_workers() {
        let (network, frontier) = breaker_workload();
        let mut config = CrawlConfig::control();
        config.breakers = BreakerPolicy::enabled();

        let mut datasets = Vec::new();
        let mut stats_all = Vec::new();
        for workers in [1usize, 4, 8] {
            config.workers = workers;
            let (ds, stats) = crawl_with_stats(&network, &frontier, &config);
            datasets.push(ds.to_json().unwrap());
            stats_all.push(stats);
        }
        assert_eq!(datasets[0], datasets[1], "1 vs 4 workers");
        assert_eq!(datasets[1], datasets[2], "4 vs 8 workers");
        assert!(stats_all[0].breaker_opens >= 1);
        assert!(stats_all[0].breaker_short_circuits >= 1);
        assert_eq!(stats_all[0].breaker_opens, stats_all[2].breaker_opens);
        assert_eq!(
            stats_all[0].breaker_short_circuits,
            stats_all[2].breaker_short_circuits
        );

        // The short-circuited script loads are visible in the records:
        // later even-numbered sites carry the "circuit open" script error
        // instead of a fetch failure, and the crawl still succeeds.
        let ds = CrawlDataset::from_json(&datasets[0]).unwrap();
        let circuit_scripts = ds
            .successful()
            .flat_map(|(_, v)| v.scripts.iter())
            .filter(|s| s.error.as_deref() == Some("circuit open"))
            .count();
        assert!(circuit_scripts >= 1);
    }

    #[test]
    fn open_page_host_records_circuit_open_failure() {
        // Three dead sites on one host family would need a shared page
        // host; simpler: the page hosts themselves fail repeatedly via a
        // shared frontier host. Reuse one host for several frontier URLs.
        let mut network = Network::new();
        let mut frontier = Vec::new();
        for path in ["/a", "/b", "/c", "/d", "/e"] {
            let url = Url::https("flaky.example", path);
            network.host(
                &url,
                Resource::Page(PageResource {
                    scripts: vec![],
                    consent_banner: false,
                    bot_check: false,
                }),
            );
            frontier.push(url);
        }
        network.faults.take_down("flaky.example");
        let mut config = CrawlConfig::control();
        config.breakers = BreakerPolicy::enabled();
        let ds = crawl(&network, &frontier, &config);
        let breakdown = ds.failure_breakdown();
        assert_eq!(breakdown[&FailureKind::Unreachable], 3, "charges to open");
        assert_eq!(breakdown[&FailureKind::CircuitOpen], 2, "short-circuited");
        // CircuitOpen failures never touched the network and are final.
        let (_, f) = ds
            .failed()
            .find(|(_, f)| f.kind == FailureKind::CircuitOpen)
            .unwrap();
        assert_eq!(f.attempts, 1);
        assert!(f.salvage.is_none(), "short-circuit precedes page contact");
    }

    #[test]
    fn salvage_attaches_partial_evidence_and_is_opt_out() {
        let (mut network, frontier) = network_with_sites(8);
        // Kill the shared script host with a deadline-blowing spike: the
        // even sites die mid-pipeline after fetching nothing from it, but
        // keep their page-level facts.
        network
            .faults
            .inject("fp.example.net", Fault::LatencySpike { extra_ms: 60_000 });

        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        let timeouts: Vec<_> = ds
            .failed()
            .filter(|(_, f)| f.kind == FailureKind::Timeout)
            .collect();
        assert!(!timeouts.is_empty());
        assert!(
            timeouts.iter().all(|(_, f)| f.salvage.is_some()),
            "mid-pipeline deaths keep their partial visit"
        );
        assert!(ds.fidelity_breakdown()[&VisitFidelity::Lost] >= 1);

        let mut no_salvage = CrawlConfig::control();
        no_salvage.salvage = false;
        let ds = crawl(&network, &frontier, &no_salvage);
        assert!(
            ds.failed().all(|(_, f)| f.salvage.is_none()),
            "salvage off reproduces the bare failure records"
        );
    }

    #[test]
    fn retry_timeouts_heals_slow_start_hosts() {
        let (mut network, frontier) = network_with_sites(6);
        network.faults.inject(
            "site2.com",
            Fault::SlowStart {
                extra_ms: 60_000,
                attempts: 1,
            },
        );

        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        assert_eq!(ds.failure_breakdown().get(&FailureKind::Timeout), Some(&1));

        // Plain retries don't help: Timeout is not transient.
        let mut config = CrawlConfig::control();
        config.retry = RetryPolicy::retries(2);
        let ds = crawl(&network, &frontier, &config);
        assert_eq!(ds.failure_breakdown().get(&FailureKind::Timeout), Some(&1));

        // retry_timeouts makes the second attempt land after the spike.
        config.retry.retry_timeouts = true;
        let ds = crawl(&network, &frontier, &config);
        assert_eq!(ds.failure_breakdown().get(&FailureKind::Timeout), None);
        let (_, visit) = ds
            .successful()
            .find(|(u, _)| u.host == "site2.com")
            .expect("site2 heals");
        assert!(!visit.scripts.is_empty());
    }
}
