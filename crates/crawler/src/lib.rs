//! # canvassing-crawler
//!
//! The crawl harness: drives a fleet of [`Browser`] workers across a site
//! frontier and collects per-site records, mirroring the paper's crawls
//! (§3.1): one configuration per crawl (device profile, optional ad-block
//! extension, optional canvas defense), every site visited once, failures
//! recorded rather than retried away.
//!
//! Work distribution uses a crossbeam channel as the job queue; results
//! are reassembled in frontier order so datasets are deterministic
//! regardless of scheduling.

#![warn(missing_docs)]

pub mod dataset;

use canvassing_browser::{AdBlockerKind, Browser, DefenseMode, Extension, PageVisit};
use canvassing_net::{Network, Url};
use canvassing_raster::DeviceProfile;

pub use dataset::{CrawlDataset, SiteOutcome, SiteRecord};

/// Configuration for one crawl run.
pub struct CrawlConfig {
    /// Human-readable label, e.g. `"control"`, `"adblock-plus"`.
    pub label: String,
    /// Worker threads.
    pub workers: usize,
    /// Rendering device for every worker (a crawl uses one machine, §3.1).
    pub device: DeviceProfile,
    /// Installed ad blocker, with the EasyList text it loads.
    pub adblocker: Option<(AdBlockerKind, String)>,
    /// Canvas read-back defense.
    pub defense: DefenseMode,
    /// Whether workers pass bot gates (true for the paper's crawler).
    pub passes_bot_checks: bool,
}

impl CrawlConfig {
    /// The paper's control configuration on the Intel/Ubuntu machine.
    pub fn control() -> CrawlConfig {
        CrawlConfig {
            label: "control".into(),
            workers: 8,
            device: DeviceProfile::intel_ubuntu(),
            adblocker: None,
            defense: DefenseMode::None,
            passes_bot_checks: true,
        }
    }

    /// Control configuration with a different device (the M1 validation
    /// crawl).
    pub fn with_device(device: DeviceProfile) -> CrawlConfig {
        CrawlConfig {
            label: format!("control-{}", device.id),
            device,
            ..CrawlConfig::control()
        }
    }

    /// Configuration with an ad blocker installed (Table 2 re-crawls).
    pub fn with_adblocker(kind: AdBlockerKind, easylist: &str) -> CrawlConfig {
        CrawlConfig {
            label: kind.name().to_ascii_lowercase().replace(' ', "-"),
            adblocker: Some((kind, easylist.to_string())),
            ..CrawlConfig::control()
        }
    }

    fn build_browser(&self) -> Browser {
        let mut browser = Browser::new(self.device.clone());
        browser.defense = self.defense;
        browser.passes_bot_checks = self.passes_bot_checks;
        if let Some((kind, list)) = &self.adblocker {
            browser.extension = Some(Extension::new(*kind, list));
        }
        browser
    }
}

/// Crawls the frontier, returning one record per frontier URL (in order).
pub fn crawl(network: &Network, frontier: &[Url], config: &CrawlConfig) -> CrawlDataset {
    let workers = config.workers.max(1);
    let (job_tx, job_rx) = crossbeam::channel::unbounded::<usize>();
    for i in 0..frontier.len() {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);

    let (res_tx, res_rx) = crossbeam::channel::unbounded::<(usize, SiteRecord)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            scope.spawn(move || {
                let browser = config.build_browser();
                while let Ok(i) = job_rx.recv() {
                    let url = &frontier[i];
                    let outcome = match browser.visit(network, url) {
                        Ok(visit) => SiteOutcome::Success(Box::new(visit)),
                        Err(e) => SiteOutcome::Failure(e.to_string()),
                    };
                    let record = SiteRecord {
                        url: url.clone(),
                        outcome,
                    };
                    if res_tx.send((i, record)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
    });

    let mut slots: Vec<Option<SiteRecord>> = (0..frontier.len()).map(|_| None).collect();
    for (i, record) in res_rx.iter() {
        slots[i] = Some(record);
    }
    CrawlDataset {
        label: config.label.clone(),
        device_id: config.device.id.clone(),
        records: slots
            .into_iter()
            .map(|s| s.expect("every job produced a record"))
            .collect(),
    }
}

/// Convenience: visits a single page with a one-off browser (used by the
/// attribution engine's demo/customer crawls).
pub fn visit_once(
    network: &Network,
    url: &Url,
    device: DeviceProfile,
) -> Result<PageVisit, canvassing_browser::VisitError> {
    Browser::new(device).visit(network, url)
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_net::{PageResource, Resource, ScriptRef, ScriptResource};

    fn network_with_sites(n: usize) -> (Network, Vec<Url>) {
        let mut network = Network::new();
        let mut frontier = Vec::new();
        let script_url = Url::https("fp.example.net", "/fp.js");
        network.host(
            &script_url,
            Resource::Script(ScriptResource {
                source: r##"
                    let c = document.createElement("canvas");
                    c.width = 30; c.height = 20;
                    let x = c.getContext("2d");
                    x.fillStyle = "#069";
                    x.fillRect(1, 1, 20, 10);
                    c.toDataURL();
                "##
                .to_string(),
                label: "fp".into(),
            }),
        );
        for i in 0..n {
            let url = Url::https(&format!("site{i}.com"), "/");
            network.host(
                &url,
                Resource::Page(PageResource {
                    scripts: if i % 2 == 0 {
                        vec![ScriptRef::External(script_url.clone())]
                    } else {
                        vec![]
                    },
                    consent_banner: false,
                    bot_check: false,
                }),
            );
            frontier.push(url);
        }
        // One down site.
        network.faults.take_down("site1.com");
        (network, frontier)
    }

    #[test]
    fn crawl_visits_every_site_in_order() {
        let (network, frontier) = network_with_sites(20);
        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        assert_eq!(ds.records.len(), 20);
        for (r, u) in ds.records.iter().zip(&frontier) {
            assert_eq!(&r.url, u);
        }
        assert_eq!(ds.failed().count(), 1);
        assert_eq!(ds.successful().count(), 19);
    }

    #[test]
    fn crawl_is_deterministic_across_worker_counts() {
        let (network, frontier) = network_with_sites(30);
        let mut one = CrawlConfig::control();
        one.workers = 1;
        let mut many = CrawlConfig::control();
        many.workers = 7;
        let a = crawl(&network, &frontier, &one);
        let b = crawl(&network, &frontier, &many);
        let urls = |d: &CrawlDataset| -> Vec<String> {
            d.successful()
                .flat_map(|(_, v)| v.extractions.iter().map(|e| e.data_url.clone()))
                .collect()
        };
        assert_eq!(urls(&a), urls(&b));
    }

    #[test]
    fn identical_sites_share_canvas_bytes() {
        let (network, frontier) = network_with_sites(10);
        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        let urls: Vec<&str> = ds
            .successful()
            .flat_map(|(_, v)| v.extractions.iter().map(|e| e.data_url.as_str()))
            .collect();
        assert!(urls.len() >= 4);
        assert!(urls.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn dataset_roundtrips_through_json() {
        let (network, frontier) = network_with_sites(4);
        let ds = crawl(&network, &frontier, &CrawlConfig::control());
        let json = ds.to_json().unwrap();
        let back = CrawlDataset::from_json(&json).unwrap();
        assert_eq!(back.records.len(), ds.records.len());
        assert_eq!(back.label, ds.label);
    }
}
