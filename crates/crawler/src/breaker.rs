//! Per-host circuit breakers, planned deterministically.
//!
//! A naive breaker keyed on runtime fetch order would make datasets
//! depend on worker interleaving: whichever worker happens to hit a sick
//! host for the Kth time first would flip the circuit, and a different
//! schedule would flip it at a different frontier position. Instead the
//! breaker state machine is *planned*: before any worker starts, the plan
//! walks the frontier sequentially (a pure function of
//! `(network, frontier, config)`), simulating every host reference a
//! visit would make via [`Network::probe`] — no resource clones, no
//! side effects, and injected panics probe as plain failures. The result
//! is, per frontier slot, the set of hosts whose circuit is open when
//! that visit runs, plus the state transitions attributable to that slot.
//! Workers consult the plan by index, so breaker behavior is byte-identical
//! across worker counts, cache temperature, and checkpoint/resume splits.
//!
//! State machine per host (logical ticks, no wall time):
//!
//! ```text
//!         K consecutive failures          cooldown_ticks references
//! Closed ───────────────────────▶ Open ───────────────────────▶ HalfOpen
//!    ▲                             ▲                               │
//!    │            probe fails (reopen)                 probe succeeds
//!    └──────────────────────────────◀──────────────────────────────┘
//! ```
//!
//! While Open, every reference to the host short-circuits (no fetch) and
//! ticks the cooldown. A tick is a *reference*, not a clock: a host
//! nobody references stays Open forever, which is the right behavior for
//! a crawl (there is nothing to probe for).
//!
//! Breaker state advances **between** frontier slots, never within one:
//! all references of one visit see the snapshot taken before the visit,
//! and the charges they generate apply afterwards. This keeps the
//! per-visit open-host set well defined (and identical between the plan
//! and [`crate::visit_site`]'s behavior).

use std::collections::{BTreeMap, BTreeSet};

use canvassing_browser::Extension;
use canvassing_net::{Network, Resource, ScriptRef, Url};
use serde::{Deserialize, Serialize};

use crate::{CrawlConfig, RetryPolicy};

/// Circuit-breaker policy for a crawl. Disabled by default: the paper's
/// crawls visit every site regardless of host health, and breakers change
/// what the dataset records (short-circuited sites), so they are strictly
/// opt-in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerPolicy {
    /// Whether breakers are active at all.
    pub enabled: bool,
    /// Consecutive failures on a host that open its circuit (K).
    pub failure_threshold: u32,
    /// Short-circuited references an open circuit absorbs before moving
    /// to half-open (the logical-tick cooldown).
    pub cooldown_ticks: u32,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy::disabled()
    }
}

impl BreakerPolicy {
    /// Breakers off (the paper-faithful default).
    pub fn disabled() -> BreakerPolicy {
        BreakerPolicy {
            enabled: false,
            failure_threshold: 3,
            cooldown_ticks: 8,
        }
    }

    /// Breakers on with the default thresholds (open after 3 consecutive
    /// failures, half-open probe after 8 short-circuited references).
    pub fn enabled() -> BreakerPolicy {
        BreakerPolicy {
            enabled: true,
            ..BreakerPolicy::disabled()
        }
    }
}

/// A breaker state transition, attributed to the frontier slot whose
/// references caused it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerEvent {
    /// Closed → Open: the host crossed the failure threshold.
    Opened,
    /// Open → HalfOpen: the cooldown elapsed; the next reference probes.
    HalfOpen,
    /// HalfOpen → Closed: the probe succeeded.
    Closed,
    /// HalfOpen → Open: the probe failed; cooldown restarts.
    Reopened,
}

impl BreakerEvent {
    /// Trace-instant name for this transition.
    pub fn instant_name(&self) -> &'static str {
        match self {
            BreakerEvent::Opened => "breaker.open",
            BreakerEvent::HalfOpen => "breaker.half_open",
            BreakerEvent::Closed => "breaker.close",
            BreakerEvent::Reopened => "breaker.reopen",
        }
    }
}

/// Per-host tallies for the report's breaker table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BreakerHostStats {
    /// Times the circuit opened (including reopens).
    pub opens: u32,
    /// Times a half-open probe closed it again.
    pub closes: u32,
    /// References short-circuited while open.
    pub short_circuits: u64,
    /// Failure charges against the host.
    pub failures: u64,
}

#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { fails: u32 },
    Open { ticks: u32 },
    HalfOpen,
}

/// The precomputed breaker schedule for one crawl.
#[derive(Debug, Clone, Default)]
pub struct BreakerPlan {
    /// Per frontier slot: hosts whose circuit is open when the visit runs.
    open_at: Vec<BTreeSet<String>>,
    /// Per frontier slot: transitions caused by that slot's references.
    transitions: Vec<Vec<(String, BreakerEvent)>>,
    /// Per-host tallies over the whole plan.
    pub host_stats: BTreeMap<String, BreakerHostStats>,
}

impl BreakerPlan {
    /// Plans breaker state over the frontier for `config`. Returns `None`
    /// when the config's breaker policy is disabled (the common case —
    /// zero overhead).
    pub fn plan(network: &Network, frontier: &[Url], config: &CrawlConfig) -> Option<BreakerPlan> {
        let policy = config.breakers;
        if !policy.enabled {
            return None;
        }
        let extension = config
            .adblocker
            .as_ref()
            .map(|(kind, list)| Extension::new(*kind, list));
        let deadline = config.policy.deadline_ms;

        let mut state: BTreeMap<String, BreakerState> = BTreeMap::new();
        let mut plan = BreakerPlan {
            open_at: Vec::with_capacity(frontier.len()),
            transitions: Vec::with_capacity(frontier.len()),
            host_stats: BTreeMap::new(),
        };

        for page_url in frontier {
            // Snapshot: the open set every reference of this visit sees.
            let open: BTreeSet<String> = state
                .iter()
                .filter(|(_, s)| matches!(s, BreakerState::Open { .. }))
                .map(|(h, _)| h.clone())
                .collect();

            // Walk the references this visit would make, in order,
            // deciding against the snapshot and queuing the outcomes.
            // `true` = failure charge, `false` = success; ticks are
            // queued as short-circuits.
            enum Touch {
                Charge { failed: bool },
                ShortCircuit,
            }
            let mut touches: Vec<(String, Touch)> = Vec::new();

            let page_ok = if open.contains(&page_url.host) {
                touches.push((page_url.host.clone(), Touch::ShortCircuit));
                false
            } else {
                let ok = settles(network, page_url, &config.retry, deadline);
                touches.push((page_url.host.clone(), Touch::Charge { failed: !ok }));
                ok
            };

            if page_ok {
                // The page arrives: its external script references fire
                // (except the ones the extension blocks before any fetch).
                if let Some(Resource::Page(page)) = network.peek(page_url) {
                    for script_ref in &page.scripts {
                        let ScriptRef::External(url) = script_ref else {
                            continue;
                        };
                        if let Some(ext) = &extension {
                            if ext.check_script(page_url, url, &network.dns).is_some() {
                                continue;
                            }
                        }
                        if open.contains(&url.host) {
                            touches.push((url.host.clone(), Touch::ShortCircuit));
                        } else {
                            let ok = settles(network, url, &config.retry, deadline);
                            touches.push((url.host.clone(), Touch::Charge { failed: !ok }));
                        }
                    }
                }
            }

            // Apply the queued outcomes, recording transitions for this
            // slot.
            let mut events: Vec<(String, BreakerEvent)> = Vec::new();
            for (host, touch) in touches {
                let entry = state
                    .entry(host.clone())
                    .or_insert(BreakerState::Closed { fails: 0 });
                let stats = plan.host_stats.entry(host.clone()).or_default();
                match touch {
                    Touch::ShortCircuit => {
                        stats.short_circuits += 1;
                        if let BreakerState::Open { ticks } = entry {
                            *ticks += 1;
                            if *ticks >= policy.cooldown_ticks {
                                *entry = BreakerState::HalfOpen;
                                events.push((host, BreakerEvent::HalfOpen));
                            }
                        }
                    }
                    Touch::Charge { failed } => {
                        if failed {
                            stats.failures += 1;
                        }
                        match (*entry, failed) {
                            (BreakerState::Closed { fails }, true) => {
                                let fails = fails + 1;
                                if fails >= policy.failure_threshold {
                                    *entry = BreakerState::Open { ticks: 0 };
                                    stats.opens += 1;
                                    events.push((host, BreakerEvent::Opened));
                                } else {
                                    *entry = BreakerState::Closed { fails };
                                }
                            }
                            (BreakerState::Closed { .. }, false) => {
                                *entry = BreakerState::Closed { fails: 0 };
                            }
                            (BreakerState::HalfOpen, true) => {
                                *entry = BreakerState::Open { ticks: 0 };
                                stats.opens += 1;
                                events.push((host, BreakerEvent::Reopened));
                            }
                            (BreakerState::HalfOpen, false) => {
                                *entry = BreakerState::Closed { fails: 0 };
                                stats.closes += 1;
                                events.push((host, BreakerEvent::Closed));
                            }
                            // Open hosts only receive short-circuits (the
                            // snapshot said open ⇒ no charge was queued);
                            // an Open state here means the breaker opened
                            // earlier *in this same slot's queue* (same
                            // host referenced twice) — absorb as a tick.
                            (BreakerState::Open { ticks }, _) => {
                                stats.short_circuits += 1;
                                let ticks = ticks + 1;
                                if ticks >= policy.cooldown_ticks {
                                    *entry = BreakerState::HalfOpen;
                                    events.push((host, BreakerEvent::HalfOpen));
                                } else {
                                    *entry = BreakerState::Open { ticks };
                                }
                            }
                        }
                    }
                }
            }
            plan.open_at.push(open);
            plan.transitions.push(events);
        }
        Some(plan)
    }

    /// Hosts whose circuit is open when frontier slot `index` runs.
    pub fn open_hosts(&self, index: usize) -> Option<&BTreeSet<String>> {
        self.open_at.get(index)
    }

    /// Transitions caused by frontier slot `index`'s references.
    pub fn transitions_at(&self, index: usize) -> &[(String, BreakerEvent)] {
        self.transitions
            .get(index)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total circuit-open transitions across the plan.
    pub fn total_opens(&self) -> u64 {
        self.host_stats.values().map(|s| u64::from(s.opens)).sum()
    }

    /// Total short-circuited references across the plan.
    pub fn total_short_circuits(&self) -> u64 {
        self.host_stats.values().map(|s| s.short_circuits).sum()
    }
}

/// Whether a fetch of `url` would eventually succeed under the retry
/// policy: probes attempt numbers the way [`crate::visit_site`] would,
/// retrying transient errors (and deadline blowouts when
/// `retry_timeouts`) up to `max_retries`. A response slower than the
/// visit deadline counts as failure — that is how a latency-spiked host
/// kills visits.
fn settles(network: &Network, url: &Url, retry: &RetryPolicy, deadline: Option<u64>) -> bool {
    let mut attempt = 0u32;
    loop {
        let retryable = match network.probe(url, attempt) {
            Ok(latency) => {
                if deadline.is_none_or(|d| latency <= d) {
                    return true;
                }
                retry.retry_timeouts
            }
            Err(e) => e.is_transient(),
        };
        if retryable && attempt < retry.max_retries {
            attempt += 1;
            continue;
        }
        return false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_net::{Fault, PageResource, ScriptResource};

    fn network_with(frontier_hosts: &[&str], script_host: &str) -> (Network, Vec<Url>) {
        let mut network = Network::new();
        let script_url = Url::https(script_host, "/fp.js");
        network.host(
            &script_url,
            Resource::Script(ScriptResource {
                source: "let x = 1;".into(),
                label: "s".into(),
            }),
        );
        let mut frontier = Vec::new();
        for host in frontier_hosts {
            let url = Url::https(host, "/");
            network.host(
                &url,
                Resource::Page(PageResource {
                    scripts: vec![ScriptRef::External(script_url.clone())],
                    consent_banner: false,
                    bot_check: false,
                }),
            );
            frontier.push(url);
        }
        (network, frontier)
    }

    fn breaker_config(threshold: u32, cooldown: u32) -> CrawlConfig {
        let mut config = CrawlConfig::control();
        config.breakers = BreakerPolicy {
            enabled: true,
            failure_threshold: threshold,
            cooldown_ticks: cooldown,
        };
        config
    }

    #[test]
    fn disabled_policy_plans_nothing() {
        let (network, frontier) = network_with(&["a.com", "b.com"], "cdn.net");
        assert!(BreakerPlan::plan(&network, &frontier, &CrawlConfig::control()).is_none());
    }

    #[test]
    fn shared_sick_host_opens_after_threshold_and_short_circuits() {
        let hosts: Vec<String> = (0..10).map(|i| format!("site{i}.com")).collect();
        let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let (mut network, frontier) = network_with(&refs, "cdn.net");
        network.faults.take_down("cdn.net");

        let config = breaker_config(3, 100);
        let plan = BreakerPlan::plan(&network, &frontier, &config).unwrap();
        // Visits 0..3 charge the script host; it opens at slot 2 (3rd
        // consecutive failure) and every later visit sees it open.
        assert!(plan.open_hosts(2).unwrap().is_empty());
        assert!(plan
            .transitions_at(2)
            .contains(&("cdn.net".into(), BreakerEvent::Opened)));
        for i in 3..10 {
            assert!(
                plan.open_hosts(i).unwrap().contains("cdn.net"),
                "slot {i} must see the open circuit"
            );
        }
        let stats = &plan.host_stats["cdn.net"];
        assert_eq!(stats.opens, 1);
        assert_eq!(stats.failures, 3);
        assert_eq!(stats.short_circuits, 7);
        assert_eq!(plan.total_opens(), 1);
        assert_eq!(plan.total_short_circuits(), 7);
    }

    #[test]
    fn cooldown_leads_to_half_open_probe_and_close_on_recovery() {
        // The script host fails only the first 3 attempts *of attempt
        // number 0*... TransientConnect keys on attempt, not time, so use
        // a different shape: the page hosts themselves are fine; the
        // script host is permanently down, opens, cools down after 2
        // short-circuits, half-opens, probes (still down), reopens.
        let hosts: Vec<String> = (0..8).map(|i| format!("site{i}.com")).collect();
        let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let (mut network, frontier) = network_with(&refs, "cdn.net");
        network.faults.take_down("cdn.net");

        let config = breaker_config(2, 2);
        let plan = BreakerPlan::plan(&network, &frontier, &config).unwrap();
        // Slots 0,1 fail → open at slot 1. Slots 2,3 short-circuit →
        // half-open at slot 3. Slot 4 probes, fails → reopen. Slots 5,6
        // short-circuit → half-open at 6. Slot 7 probes, fails → reopen.
        assert!(plan
            .transitions_at(1)
            .contains(&("cdn.net".into(), BreakerEvent::Opened)));
        assert!(plan
            .transitions_at(3)
            .contains(&("cdn.net".into(), BreakerEvent::HalfOpen)));
        assert!(plan
            .transitions_at(4)
            .contains(&("cdn.net".into(), BreakerEvent::Reopened)));
        assert!(!plan.open_hosts(4).unwrap().contains("cdn.net"));
        let stats = &plan.host_stats["cdn.net"];
        assert_eq!(stats.opens, 3, "initial open + two reopens");
        assert_eq!(stats.closes, 0);
    }

    #[test]
    fn half_open_probe_closes_on_healed_host() {
        // TransientConnect { failures: 1 } with a retryless policy: every
        // settle at attempt 0 fails... so the host opens; but with one
        // retry the probe settles at attempt 1 and the breaker closes.
        let hosts: Vec<String> = (0..6).map(|i| format!("site{i}.com")).collect();
        let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let (mut network, frontier) = network_with(&refs, "cdn.net");
        network
            .faults
            .inject("cdn.net", Fault::TransientConnect { failures: 1 });

        // Without retries the host never settles: opens and stays sick.
        let config = breaker_config(2, 1);
        let plan = BreakerPlan::plan(&network, &frontier, &config).unwrap();
        assert!(plan.host_stats["cdn.net"].opens >= 1);
        assert_eq!(plan.host_stats["cdn.net"].closes, 0);

        // With a retry, every settle succeeds: the breaker never opens.
        let mut config = breaker_config(2, 1);
        config.retry = RetryPolicy::retries(1);
        let plan = BreakerPlan::plan(&network, &frontier, &config).unwrap();
        assert_eq!(plan.host_stats["cdn.net"].opens, 0);
        assert_eq!(plan.host_stats["cdn.net"].failures, 0);
    }

    #[test]
    fn latency_spike_past_deadline_charges_failures() {
        let hosts: Vec<String> = (0..4).map(|i| format!("site{i}.com")).collect();
        let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let (mut network, frontier) = network_with(&refs, "cdn.net");
        network
            .faults
            .inject("cdn.net", Fault::LatencySpike { extra_ms: 60_000 });
        let config = breaker_config(2, 10);
        let plan = BreakerPlan::plan(&network, &frontier, &config).unwrap();
        assert!(
            plan.host_stats["cdn.net"].opens >= 1,
            "deadline-blowing latency must charge the breaker"
        );
    }

    #[test]
    fn failed_page_does_not_charge_its_scripts() {
        let (mut network, frontier) = network_with(&["a.com", "b.com", "c.com"], "cdn.net");
        for h in ["a.com", "b.com", "c.com"] {
            network.faults.take_down(h);
        }
        let config = breaker_config(2, 10);
        let plan = BreakerPlan::plan(&network, &frontier, &config).unwrap();
        assert!(
            !plan.host_stats.contains_key("cdn.net"),
            "dead pages never reference their scripts"
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let hosts: Vec<String> = (0..12).map(|i| format!("site{i}.com")).collect();
        let refs: Vec<&str> = hosts.iter().map(String::as_str).collect();
        let (mut network, frontier) = network_with(&refs, "cdn.net");
        network.faults.take_down("cdn.net");
        network.faults.take_down("site5.com");
        let config = breaker_config(2, 3);
        let a = BreakerPlan::plan(&network, &frontier, &config).unwrap();
        let b = BreakerPlan::plan(&network, &frontier, &config).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }
}
