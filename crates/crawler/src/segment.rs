//! Sharded segment spill for million-site crawls.
//!
//! The checkpoint layer (PR 2) persists one append-only file per crawl;
//! at scale 25 (1M sites) a single file and a single in-memory dataset
//! both stop working. This module splits the durable story two ways:
//!
//! * **shards** — the frontier is cut into `count` contiguous ranges
//!   ([`crate::shard_range`]); each shard is crawled independently (in
//!   this process or N separate ones) and owns its own files;
//! * **segments** — within a shard, records spill into *bounded* segment
//!   files of at most `segment_sites` records each, so no file grows
//!   with the frontier.
//!
//! Every segment is a complete, self-describing checkpoint in the PR-2
//! CRC-framed v2 format — [`crate::checkpoint::recover`] works on any
//! segment unchanged, and a torn tail in one segment loses at most that
//! segment's suffix. Filenames embed shard and sequence
//! (`shard003-seg00007.ckpt`) so a lexicographic sort of the spill
//! directory reconstructs global frontier order without any manifest.
//!
//! [`merge_segments`] recovers every segment, concatenates the valid
//! prefixes, and hands the union to [`crate::resume_crawl`] — which
//! recrawls whatever the spill lost and, because the breaker plan is
//! always computed over the *full* frontier, produces a dataset
//! byte-identical to a single uninterrupted `workers = 1` crawl. That
//! identity is the merge's proof obligation and what
//! `tests/streaming_equivalence.rs` and `tests/checkpoint_recovery.rs`
//! sweep.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use canvassing_net::{Network, Url};
use canvassing_trace::{TraceSink, VisitRecorder};

use crate::checkpoint::{recover, CheckpointWriter};
use crate::dataset::{CrawlDataset, SiteRecord};
use crate::{crawl_streamed_range_until, resume_crawl, shard_range, CrawlConfig};

/// Rolls visit records into bounded CRC-framed segment files.
///
/// Each segment is a standalone PR-2 checkpoint holding at most
/// `segment_sites` records; when one fills, it is sealed and the next
/// opens. The writer never holds more than the current segment's file
/// handle — memory is constant in the number of records spilled.
pub struct SegmentWriter {
    dir: PathBuf,
    label: String,
    device_id: String,
    shard: usize,
    /// Lease epoch for supervised spills: when set, segment names carry
    /// it (`shard003-e0002-seg00007.ckpt`) so re-leased and speculative
    /// owners of the same shard never collide on a file. `None` is the
    /// unsupervised scheme [`list_segments`] recognises.
    epoch: Option<u64>,
    segment_sites: usize,
    seq: usize,
    current: Option<CheckpointWriter>,
    sealed: Vec<PathBuf>,
    /// Spill-side observability: seal/finish instants go here, *not* to
    /// the crawl's trace sink, so study trace totals are unaffected by
    /// whether a run spilled.
    trace: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for SegmentWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentWriter")
            .field("dir", &self.dir)
            .field("shard", &self.shard)
            .field("segment_sites", &self.segment_sites)
            .field("seq", &self.seq)
            .field("sealed", &self.sealed.len())
            .finish_non_exhaustive()
    }
}

impl SegmentWriter {
    /// Creates a writer spilling into `dir` (created if absent) for one
    /// frontier shard. `segment_sites` is clamped to at least 1.
    pub fn create(
        dir: &Path,
        label: &str,
        device_id: &str,
        shard: usize,
        segment_sites: usize,
    ) -> io::Result<SegmentWriter> {
        fs::create_dir_all(dir)?;
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            label: label.to_string(),
            device_id: device_id.to_string(),
            shard,
            epoch: None,
            segment_sites: segment_sites.max(1),
            seq: 0,
            current: None,
            sealed: Vec::new(),
            trace: None,
        })
    }

    /// Switches to epoch-qualified segment names for supervised spills.
    /// Epoch-qualified files are deliberately invisible to
    /// [`list_segments`]; [`crate::supervisor::merge_supervised`] owns
    /// them.
    pub fn with_epoch(mut self, epoch: u64) -> SegmentWriter {
        self.epoch = Some(epoch);
        self
    }

    /// Attaches a sink for spill instants (`segment.seal`,
    /// `segment.finish`). Keep this separate from the crawl config's
    /// sink — spill observability must not perturb study trace totals.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> SegmentWriter {
        self.trace = Some(sink);
        self
    }

    fn segment_path(&self, seq: usize) -> PathBuf {
        self.dir.join(match self.epoch {
            Some(epoch) => format!("shard{:03}-e{:04}-seg{:05}.ckpt", self.shard, epoch, seq),
            None => format!("shard{:03}-seg{:05}.ckpt", self.shard, seq),
        })
    }

    /// Appends one record, opening a fresh segment when none is open and
    /// sealing it once it holds `segment_sites` records.
    pub fn append(&mut self, record: &SiteRecord) -> io::Result<()> {
        if self.current.is_none() {
            let path = self.segment_path(self.seq);
            self.current = Some(CheckpointWriter::create(
                &path,
                &self.label,
                &self.device_id,
            )?);
        }
        let full = {
            let writer = self
                .current
                .as_mut()
                .unwrap_or_else(|| unreachable!("segment opened above"));
            writer.append(record)?;
            writer.records_written() >= self.segment_sites
        };
        if full {
            self.seal("segment.seal")?;
        }
        Ok(())
    }

    fn seal(&mut self, instant: &'static str) -> io::Result<()> {
        if let Some(writer) = self.current.take() {
            let records = writer.records_written();
            let path = writer.path().to_path_buf();
            drop(writer);
            self.emit(instant, &path, records);
            self.sealed.push(path);
            self.seq += 1;
        }
        Ok(())
    }

    fn emit(&self, instant: &'static str, path: &Path, records: usize) {
        if let Some(sink) = &self.trace {
            if sink.enabled() {
                let recorder = VisitRecorder::new(&self.label, None);
                recorder.instant(instant, || format!("{} records={records}", path.display()));
                if let Some(trace) = recorder.finish() {
                    sink.consume(trace);
                }
            }
        }
    }

    /// Segments already sealed, in write (= frontier) order.
    pub fn sealed(&self) -> &[PathBuf] {
        &self.sealed
    }

    /// Seals any open segment and returns every segment path in frontier
    /// order. Dropping a writer without calling `finish` leaves the last
    /// segment on disk unsealed — still a valid checkpoint (recovery
    /// reads it fine), just unlisted here. That recoverability is pinned
    /// by `unsealed_segment_from_dropped_writer_is_recoverable` below
    /// and is what supervised re-leases resume from.
    pub fn finish(mut self) -> io::Result<Vec<PathBuf>> {
        self.seal("segment.finish")?;
        Ok(std::mem::take(&mut self.sealed))
    }

    /// Simulates the owning process dying while appending `record`: half
    /// the framed line lands in the current segment (opening a fresh one
    /// if none is open) and the file handle dies with the process,
    /// leaving an unsealed segment with a torn tail — the exact state
    /// [`crate::checkpoint::recover`] is built to clean up. Supervisor
    /// fault injection only; a real crash needs no help.
    pub fn crash(&mut self, record: &SiteRecord) -> io::Result<()> {
        if self.current.is_none() {
            let path = self.segment_path(self.seq);
            self.current = Some(CheckpointWriter::create(
                &path,
                &self.label,
                &self.device_id,
            )?);
        }
        let writer = self
            .current
            .as_mut()
            .unwrap_or_else(|| unreachable!("segment opened above"));
        writer.tear(record)?;
        self.current = None;
        Ok(())
    }

    /// Aborts the spill: the current *unsealed* segment file is removed
    /// (a half-written segment that will never be sealed must not
    /// pollute a later merge) and the sealed segments — all complete and
    /// mergeable — are returned. This is the error path of
    /// [`crawl_shard_to_segments`]; a `segment.abort` instant records
    /// the removal on the spill sink.
    pub fn abort(mut self) -> io::Result<Vec<PathBuf>> {
        if let Some(writer) = self.current.take() {
            let records = writer.records_written();
            let path = writer.path().to_path_buf();
            drop(writer);
            fs::remove_file(&path)?;
            self.emit("segment.abort", &path, records);
        }
        Ok(std::mem::take(&mut self.sealed))
    }
}

/// Parses a canonical unsupervised segment file name —
/// `shard{NNN}-seg{NNNNN}.ckpt`, zero-padded to at least 3 and 5 digits
/// but open-ended above that — into `(shard, seq)`. Anything else
/// (lease files, `.tmp` rename leftovers, supervised epoch-qualified
/// segments, foreign checkpoints) is not a segment.
pub(crate) fn parse_segment_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_suffix(".ckpt")?;
    let rest = rest.strip_prefix("shard")?;
    let (shard, seq) = rest.split_once("-seg")?;
    Some((parse_padded(shard, 3)?, parse_padded(seq, 5)?))
}

/// Parses a supervised, epoch-qualified segment file name —
/// `shard{NNN}-e{EEEE}-seg{NNNNN}.ckpt` — into `(shard, epoch, seq)`.
/// The supervised scheme is deliberately disjoint from the canonical
/// one: [`list_segments`] never sees supervised segments and
/// [`crate::supervisor::list_supervised_segments`] never sees
/// unsupervised ones, so the two merge paths cannot double-read a file.
pub(crate) fn parse_supervised_name(name: &str) -> Option<(usize, u64, usize)> {
    let rest = name.strip_suffix(".ckpt")?;
    let rest = rest.strip_prefix("shard")?;
    let (shard, rest) = rest.split_once("-e")?;
    let (epoch, seq) = rest.split_once("-seg")?;
    Some((
        parse_padded(shard, 3)?,
        parse_padded(epoch, 4)? as u64,
        parse_padded(seq, 5)?,
    ))
}

/// A zero-padded decimal field: all digits, at least `min_len` of them.
pub(crate) fn parse_padded(digits: &str, min_len: usize) -> Option<usize> {
    if digits.len() < min_len || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Lists every canonical segment file (`shard{NNN}-seg{NNNNN}.ckpt`) in
/// `dir`, sorted by file name — which, given the zero-padded scheme, is
/// global frontier order across all shards. Files that do not match the
/// canonical name are skipped, so stray checkpoints, lease files, or
/// supervised epoch-qualified segments can never corrupt merge order.
pub fn list_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    list_segments_traced(dir, None)
}

/// [`list_segments`] with spill-side observability: every skipped file
/// is recorded as a `segment.skip` instant on `trace`.
pub fn list_segments_traced(
    dir: &Path,
    trace: Option<&Arc<dyn TraceSink>>,
) -> io::Result<Vec<PathBuf>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if parse_segment_name(name).is_some() && path.is_file() {
            segments.push(path);
        } else if path.is_file() {
            emit_spill_instant(trace, "segments", "segment.skip", || {
                format!("{} not a canonical segment name", path.display())
            });
        }
    }
    segments.sort();
    Ok(segments)
}

/// What [`merge_segments`] recovered and re-did.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct MergeReport {
    /// Segment files read.
    pub segments: usize,
    /// **Unique** records recovered across all segments' valid prefixes:
    /// a site crawled by several shard executions (a re-leased or
    /// speculative owner, a duplicate shard crawl) counts once.
    pub records_recovered: usize,
    /// Segments whose tail had to be truncated during recovery.
    pub segments_recovered_dirty: usize,
    /// Recovered records dropped because an earlier segment (in merge
    /// order) already supplied their site. Always zero when no shard ran
    /// twice; `records_recovered + recrawled == frontier` holds exactly
    /// because duplicates are excluded here.
    pub duplicates_dropped: usize,
    /// Frontier sites not covered by any recovered record (lost to torn
    /// tails or a crawl that never reached them) and therefore recrawled.
    pub recrawled: usize,
}

/// Recovers every segment, merges the valid prefixes, and resumes the
/// crawl over the full frontier to fill any gaps.
///
/// Because [`resume_crawl`] computes the breaker plan over the complete
/// frontier and every [`SiteRecord`] is a pure function of
/// `(network, url, config)`, the merged dataset is byte-identical to a
/// single uninterrupted crawl — regardless of shard count, segment size,
/// how many segments were torn, or the order segments are listed in.
/// Duplicate safety: segments are read in the given order (callers pass
/// a name-sorted list, i.e. `(shard, [epoch,] seq)` order) and records
/// deduplicate by site — the first occurrence wins. Re-executed shard
/// work is therefore *dropped*, not double-counted, and because every
/// execution of a site produces the identical record, which occurrence
/// wins is immaterial to the dataset. The exact accounting lands in
/// [`MergeReport::duplicates_dropped`].
pub fn merge_segments(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    segments: &[PathBuf],
    trace: Option<&Arc<dyn TraceSink>>,
) -> io::Result<(CrawlDataset, MergeReport)> {
    let mut combined = CrawlDataset {
        label: config.label.clone(),
        device_id: config.device.id.clone(),
        records: Vec::new(),
    };
    let mut seen: std::collections::BTreeSet<Url> = std::collections::BTreeSet::new();
    let mut dirty = 0usize;
    let mut total = 0usize;
    for path in segments {
        let (dataset, report) = recover(path)?;
        if !report.clean() {
            dirty += 1;
        }
        emit_spill_instant(trace, &config.label, "segment.merge", || {
            format!("{} records={}", path.display(), report.records_recovered)
        });
        for record in dataset.records {
            total += 1;
            if seen.insert(record.url.clone()) {
                combined.records.push(record);
            }
        }
    }
    let unique = combined.records.len();
    let recrawled = frontier.iter().filter(|u| !seen.contains(u)).count();
    let merged = resume_crawl(network, frontier, config, &combined);
    let report = MergeReport {
        segments: segments.len(),
        records_recovered: unique,
        segments_recovered_dirty: dirty,
        duplicates_dropped: total - unique,
        recrawled,
    };
    Ok((merged, report))
}

/// One spill-side instant on an optional sink — the shared emission
/// shape for `segment.merge`, `segment.skip`, and the supervisor's
/// protocol events.
pub(crate) fn emit_spill_instant(
    trace: Option<&Arc<dyn TraceSink>>,
    label: &str,
    instant: &'static str,
    detail: impl FnOnce() -> String,
) {
    if let Some(sink) = trace {
        if sink.enabled() {
            let recorder = VisitRecorder::new(label, None);
            recorder.instant(instant, detail);
            if let Some(trace) = recorder.finish() {
                sink.consume(trace);
            }
        }
    }
}

/// Crawls one frontier shard, spilling records into bounded segments
/// under `dir`, and returns the segment paths in frontier order.
///
/// This is the per-process entry point for an N-process scale-out: give
/// each process the same `(network, frontier, config)` and a distinct
/// `shard < count`; afterwards [`list_segments`] over the shared spill
/// directory plus [`merge_segments`] reassembles the full dataset.
/// Memory is bounded by `chunk_sites` (in-flight records) regardless of
/// shard size.
///
/// On the first spill I/O error the streamed crawl aborts immediately —
/// no further sites are visited — the unsealed partial segment is
/// removed, and the error returns; sealed segments stay on disk and
/// remain mergeable.
#[allow(clippy::too_many_arguments)]
pub fn crawl_shard_to_segments(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    dir: &Path,
    shard: usize,
    count: usize,
    segment_sites: usize,
    chunk_sites: usize,
) -> io::Result<Vec<PathBuf>> {
    let caches = config.build_caches();
    let mut writer =
        SegmentWriter::create(dir, &config.label, &config.device.id, shard, segment_sites)?;
    let range = shard_range(frontier.len(), shard, count);
    let mut io_err: Option<io::Error> = None;
    crawl_streamed_range_until(
        network,
        frontier,
        config,
        &caches,
        range,
        chunk_sites,
        |_, record| match writer.append(&record) {
            Ok(()) => std::ops::ControlFlow::Continue(()),
            Err(e) => {
                // First spill failure aborts the crawl outright: records
                // that can no longer be persisted are not worth visiting,
                // and a silently-lossy spill must never look complete.
                io_err = Some(e);
                std::ops::ControlFlow::Break(())
            }
        },
    );
    if let Some(e) = io_err {
        writer.abort().ok();
        return Err(e);
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_trace::CountingSink;
    use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("canvassing-seg-{}-{name}", std::process::id()));
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn workload() -> (SyntheticWeb, Vec<Url>, CrawlConfig) {
        let web = SyntheticWeb::generate(WebConfig {
            seed: 17,
            scale: 0.02,
        });
        let mut frontier = web.frontier(Cohort::Popular);
        frontier.truncate(50);
        let mut config = CrawlConfig::control();
        config.workers = 4;
        (web, frontier, config)
    }

    #[test]
    fn segments_are_bounded_and_ordered() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("bounded");
        let segments =
            crawl_shard_to_segments(&web.network, &frontier, &config, &dir, 0, 1, 12, 8).unwrap();
        // 50 records at <=12/segment: five segments, last holding 2.
        assert_eq!(segments.len(), 5);
        let mut total = 0;
        for (i, path) in segments.iter().enumerate() {
            let (ds, report) = recover(path).unwrap();
            assert!(report.clean());
            assert!(ds.records.len() <= 12, "segment {i} over bound");
            total += ds.records.len();
        }
        assert_eq!(total, frontier.len());
        assert_eq!(list_segments(&dir).unwrap(), segments);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_spill_merges_byte_identical_to_single_crawl() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("identity");
        for shard in 0..3 {
            crawl_shard_to_segments(&web.network, &frontier, &config, &dir, shard, 3, 8, 4)
                .unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        let (merged, report) =
            merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
        assert_eq!(report.records_recovered, frontier.len());
        assert_eq!(report.segments_recovered_dirty, 0);
        assert_eq!(report.recrawled, 0);

        let direct = crate::crawl(&web.network, &frontier, &config);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_counts_unique_records_and_drops_duplicates() {
        // Regression for the PR-9 over-count: shard 0 of 2 crawled into
        // one directory and the whole frontier into another overlap on
        // the first half of the frontier; the merge must count each site
        // once, account for the dropped duplicates exactly, and still be
        // byte-identical to a single crawl.
        let (web, frontier, config) = workload();
        let dir_half = tmp_dir("dup-half");
        let dir_full = tmp_dir("dup-full");
        crawl_shard_to_segments(&web.network, &frontier, &config, &dir_half, 0, 2, 8, 4).unwrap();
        crawl_shard_to_segments(&web.network, &frontier, &config, &dir_full, 0, 1, 8, 4).unwrap();
        let mut segments = list_segments(&dir_half).unwrap();
        segments.extend(list_segments(&dir_full).unwrap());
        let (merged, report) =
            merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();

        let half = crate::shard_range(frontier.len(), 0, 2).len();
        assert_eq!(report.records_recovered, frontier.len(), "unique records");
        assert_eq!(report.duplicates_dropped, half, "overlap counted exactly");
        assert_eq!(report.recrawled, 0);
        assert_eq!(
            report.records_recovered + report.recrawled,
            frontier.len(),
            "recovered unique + recrawled must cover the frontier exactly"
        );
        let direct = crate::crawl(&web.network, &frontier, &config);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
        fs::remove_dir_all(&dir_half).ok();
        fs::remove_dir_all(&dir_full).ok();
    }

    #[test]
    fn list_segments_skips_foreign_files_with_a_trace_instant() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("strays");
        let segments =
            crawl_shard_to_segments(&web.network, &frontier, &config, &dir, 0, 1, 20, 10).unwrap();
        // Strays that a real spill directory accumulates: lease files,
        // tmp rename leftovers, foreign checkpoints, a supervised
        // epoch-qualified segment, and an under-padded impostor.
        for stray in [
            "shard000.lease",
            "shard000.lease.tmp",
            "foreign.ckpt",
            "shard000-e0002-seg00000.ckpt",
            "shard0-seg1.ckpt",
        ] {
            fs::write(dir.join(stray), b"not a segment").unwrap();
        }
        let sink = Arc::new(CountingSink::new());
        let listed =
            list_segments_traced(&dir, Some(&(Arc::clone(&sink) as Arc<dyn TraceSink>))).unwrap();
        assert_eq!(listed, segments, "only canonical segment names listed");
        let (_, _, events) = sink.totals();
        assert_eq!(events, 5, "one segment.skip instant per stray file");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unsealed_segment_from_dropped_writer_is_recoverable() {
        // The doc-promised drop-without-finish path: the last segment
        // stays on disk unsealed, recovery reads it clean, and a merge
        // over the directory loses nothing.
        let (web, frontier, config) = workload();
        let full = crate::crawl(&web.network, &frontier, &config);
        let dir = tmp_dir("unsealed");
        let caches = config.build_caches();
        let mut writer =
            SegmentWriter::create(&dir, &config.label, &config.device.id, 0, 20).unwrap();
        crawl_streamed_range_until(
            &web.network,
            &frontier,
            &config,
            &caches,
            0..frontier.len(),
            16,
            |_, record| {
                writer.append(&record).unwrap();
                std::ops::ControlFlow::Continue(())
            },
        );
        assert_eq!(writer.sealed().len(), 2, "50 records seal two of three");
        drop(writer); // crash before finish(): the third segment is unsealed
        let segments = list_segments(&dir).unwrap();
        assert_eq!(segments.len(), 3, "the unsealed segment is still listed");
        let (ds, report) = recover(&segments[2]).unwrap();
        assert!(report.clean(), "every fully-appended record survives");
        assert_eq!(ds.records.len(), 10);
        let (merged, report) =
            merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
        assert_eq!(report.records_recovered, frontier.len());
        assert_eq!(report.recrawled, 0);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&full).unwrap()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_error_aborts_the_crawl_and_removes_the_partial_segment() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("abort");
        // Booby-trap the second segment's path: rolling over to it fails,
        // which must abort the crawl (not silently discard the rest of
        // the range) and leave only complete, sealed segments behind.
        fs::create_dir_all(dir.join("shard000-seg00001.ckpt")).unwrap();
        let err = crawl_shard_to_segments(&web.network, &frontier, &config, &dir, 0, 1, 10, 5)
            .unwrap_err();
        assert!(!err.to_string().is_empty());
        let listed = list_segments(&dir).unwrap();
        assert_eq!(listed.len(), 1, "only the sealed first segment remains");
        let (ds, report) = recover(&listed[0]).unwrap();
        assert!(report.clean());
        assert_eq!(ds.records.len(), 10);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn abort_removes_only_the_unsealed_segment() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("abort-unit");
        let caches = config.build_caches();
        let mut writer =
            SegmentWriter::create(&dir, &config.label, &config.device.id, 0, 20).unwrap();
        crawl_streamed_range_until(
            &web.network,
            &frontier,
            &config,
            &caches,
            0..frontier.len(),
            16,
            |_, record| {
                writer.append(&record).unwrap();
                std::ops::ControlFlow::Continue(())
            },
        );
        let sealed = writer.abort().unwrap();
        assert_eq!(sealed.len(), 2);
        assert_eq!(list_segments(&dir).unwrap(), sealed, "partial third gone");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn streamed_crawl_stops_at_the_breaking_record() {
        let (web, frontier, config) = workload();
        let caches = config.build_caches();
        let mut delivered = 0usize;
        let stats = crawl_streamed_range_until(
            &web.network,
            &frontier,
            &config,
            &caches,
            0..frontier.len(),
            8,
            |_, _| {
                delivered += 1;
                if delivered == 11 {
                    std::ops::ControlFlow::Break(())
                } else {
                    std::ops::ControlFlow::Continue(())
                }
            },
        );
        assert_eq!(delivered, 11, "break stops delivery mid-chunk");
        assert_eq!(stats.sites, 11, "stats count delivered records only");
    }

    #[test]
    fn spill_trace_goes_to_the_spill_sink_only() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("trace");
        let sink = Arc::new(CountingSink::new());
        let caches = config.build_caches();
        let mut writer = SegmentWriter::create(&dir, &config.label, &config.device.id, 0, 10)
            .unwrap()
            .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>);
        crate::crawl_streamed_range(
            &web.network,
            &frontier,
            &config,
            &caches,
            0..frontier.len(),
            16,
            |_, record| writer.append(&record).unwrap(),
        );
        let segments = writer.finish().unwrap();
        assert_eq!(segments.len(), 5);
        let (_, spans, events) = sink.totals();
        assert_eq!(spans, 0, "seal instants open no spans");
        assert_eq!(events as usize, segments.len());
        fs::remove_dir_all(&dir).ok();
    }
}
