//! Sharded segment spill for million-site crawls.
//!
//! The checkpoint layer (PR 2) persists one append-only file per crawl;
//! at scale 25 (1M sites) a single file and a single in-memory dataset
//! both stop working. This module splits the durable story two ways:
//!
//! * **shards** — the frontier is cut into `count` contiguous ranges
//!   ([`crate::shard_range`]); each shard is crawled independently (in
//!   this process or N separate ones) and owns its own files;
//! * **segments** — within a shard, records spill into *bounded* segment
//!   files of at most `segment_sites` records each, so no file grows
//!   with the frontier.
//!
//! Every segment is a complete, self-describing checkpoint in the PR-2
//! CRC-framed v2 format — [`crate::checkpoint::recover`] works on any
//! segment unchanged, and a torn tail in one segment loses at most that
//! segment's suffix. Filenames embed shard and sequence
//! (`shard003-seg00007.ckpt`) so a lexicographic sort of the spill
//! directory reconstructs global frontier order without any manifest.
//!
//! [`merge_segments`] recovers every segment, concatenates the valid
//! prefixes, and hands the union to [`crate::resume_crawl`] — which
//! recrawls whatever the spill lost and, because the breaker plan is
//! always computed over the *full* frontier, produces a dataset
//! byte-identical to a single uninterrupted `workers = 1` crawl. That
//! identity is the merge's proof obligation and what
//! `tests/streaming_equivalence.rs` and `tests/checkpoint_recovery.rs`
//! sweep.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use canvassing_net::{Network, Url};
use canvassing_trace::{TraceSink, VisitRecorder};

use crate::checkpoint::{recover, CheckpointWriter};
use crate::dataset::{CrawlDataset, SiteRecord};
use crate::{crawl_streamed_range, resume_crawl, shard_range, CrawlConfig};

/// Rolls visit records into bounded CRC-framed segment files.
///
/// Each segment is a standalone PR-2 checkpoint holding at most
/// `segment_sites` records; when one fills, it is sealed and the next
/// opens. The writer never holds more than the current segment's file
/// handle — memory is constant in the number of records spilled.
pub struct SegmentWriter {
    dir: PathBuf,
    label: String,
    device_id: String,
    shard: usize,
    segment_sites: usize,
    seq: usize,
    current: Option<CheckpointWriter>,
    sealed: Vec<PathBuf>,
    /// Spill-side observability: seal/finish instants go here, *not* to
    /// the crawl's trace sink, so study trace totals are unaffected by
    /// whether a run spilled.
    trace: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for SegmentWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentWriter")
            .field("dir", &self.dir)
            .field("shard", &self.shard)
            .field("segment_sites", &self.segment_sites)
            .field("seq", &self.seq)
            .field("sealed", &self.sealed.len())
            .finish_non_exhaustive()
    }
}

impl SegmentWriter {
    /// Creates a writer spilling into `dir` (created if absent) for one
    /// frontier shard. `segment_sites` is clamped to at least 1.
    pub fn create(
        dir: &Path,
        label: &str,
        device_id: &str,
        shard: usize,
        segment_sites: usize,
    ) -> io::Result<SegmentWriter> {
        fs::create_dir_all(dir)?;
        Ok(SegmentWriter {
            dir: dir.to_path_buf(),
            label: label.to_string(),
            device_id: device_id.to_string(),
            shard,
            segment_sites: segment_sites.max(1),
            seq: 0,
            current: None,
            sealed: Vec::new(),
            trace: None,
        })
    }

    /// Attaches a sink for spill instants (`segment.seal`,
    /// `segment.finish`). Keep this separate from the crawl config's
    /// sink — spill observability must not perturb study trace totals.
    pub fn with_trace(mut self, sink: Arc<dyn TraceSink>) -> SegmentWriter {
        self.trace = Some(sink);
        self
    }

    fn segment_path(&self, seq: usize) -> PathBuf {
        self.dir
            .join(format!("shard{:03}-seg{:05}.ckpt", self.shard, seq))
    }

    /// Appends one record, opening a fresh segment when none is open and
    /// sealing it once it holds `segment_sites` records.
    pub fn append(&mut self, record: &SiteRecord) -> io::Result<()> {
        if self.current.is_none() {
            let path = self.segment_path(self.seq);
            self.current = Some(CheckpointWriter::create(
                &path,
                &self.label,
                &self.device_id,
            )?);
        }
        let full = {
            let writer = self
                .current
                .as_mut()
                .unwrap_or_else(|| unreachable!("segment opened above"));
            writer.append(record)?;
            writer.records_written() >= self.segment_sites
        };
        if full {
            self.seal("segment.seal")?;
        }
        Ok(())
    }

    fn seal(&mut self, instant: &'static str) -> io::Result<()> {
        if let Some(writer) = self.current.take() {
            let records = writer.records_written();
            let path = writer.path().to_path_buf();
            drop(writer);
            self.emit(instant, &path, records);
            self.sealed.push(path);
            self.seq += 1;
        }
        Ok(())
    }

    fn emit(&self, instant: &'static str, path: &Path, records: usize) {
        if let Some(sink) = &self.trace {
            if sink.enabled() {
                let recorder = VisitRecorder::new(&self.label, None);
                recorder.instant(instant, || format!("{} records={records}", path.display()));
                if let Some(trace) = recorder.finish() {
                    sink.consume(trace);
                }
            }
        }
    }

    /// Segments already sealed, in write (= frontier) order.
    pub fn sealed(&self) -> &[PathBuf] {
        &self.sealed
    }

    /// Seals any open segment and returns every segment path in frontier
    /// order. Dropping a writer without calling `finish` leaves the last
    /// segment on disk unsealed — still a valid checkpoint (recovery
    /// reads it fine), just unlisted here.
    pub fn finish(mut self) -> io::Result<Vec<PathBuf>> {
        self.seal("segment.finish")?;
        Ok(std::mem::take(&mut self.sealed))
    }
}

/// Lists every segment file (`*.ckpt`) in `dir`, sorted by file name —
/// which, given the zero-padded `shard{NNN}-seg{NNNNN}` scheme, is
/// global frontier order across all shards.
pub fn list_segments(dir: &Path) -> io::Result<Vec<PathBuf>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.extension().is_some_and(|e| e == "ckpt") {
            segments.push(path);
        }
    }
    segments.sort();
    Ok(segments)
}

/// What [`merge_segments`] recovered and re-did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeReport {
    /// Segment files read.
    pub segments: usize,
    /// Records recovered across all segments' valid prefixes.
    pub records_recovered: usize,
    /// Segments whose tail had to be truncated during recovery.
    pub segments_recovered_dirty: usize,
    /// Frontier sites not covered by any segment (lost to torn tails or
    /// a crawl that never reached them) and therefore recrawled.
    pub recrawled: usize,
}

/// Recovers every segment, merges the valid prefixes, and resumes the
/// crawl over the full frontier to fill any gaps.
///
/// Because [`resume_crawl`] computes the breaker plan over the complete
/// frontier and every [`SiteRecord`] is a pure function of
/// `(network, url, config)`, the merged dataset is byte-identical to a
/// single uninterrupted crawl — regardless of shard count, segment size,
/// how many segments were torn, or the order segments are listed in.
pub fn merge_segments(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    segments: &[PathBuf],
    trace: Option<&Arc<dyn TraceSink>>,
) -> io::Result<(CrawlDataset, MergeReport)> {
    let mut combined = CrawlDataset {
        label: config.label.clone(),
        device_id: config.device.id.clone(),
        records: Vec::new(),
    };
    let mut dirty = 0usize;
    for path in segments {
        let (dataset, report) = recover(path)?;
        if !report.clean() {
            dirty += 1;
        }
        emit_merge_instant(trace, config, path, report.records_recovered);
        combined.records.extend(dataset.records);
    }
    let recovered = combined.records.len();
    let merged = resume_crawl(network, frontier, config, &combined);
    let report = MergeReport {
        segments: segments.len(),
        records_recovered: recovered,
        segments_recovered_dirty: dirty,
        recrawled: frontier.len().saturating_sub(recovered.min(frontier.len())),
    };
    Ok((merged, report))
}

fn emit_merge_instant(
    trace: Option<&Arc<dyn TraceSink>>,
    config: &CrawlConfig,
    path: &Path,
    records: usize,
) {
    if let Some(sink) = trace {
        if sink.enabled() {
            let recorder = VisitRecorder::new(&config.label, None);
            recorder.instant("segment.merge", || {
                format!("{} records={records}", path.display())
            });
            if let Some(trace) = recorder.finish() {
                sink.consume(trace);
            }
        }
    }
}

/// Crawls one frontier shard, spilling records into bounded segments
/// under `dir`, and returns the segment paths in frontier order.
///
/// This is the per-process entry point for an N-process scale-out: give
/// each process the same `(network, frontier, config)` and a distinct
/// `shard < count`; afterwards [`list_segments`] over the shared spill
/// directory plus [`merge_segments`] reassembles the full dataset.
/// Memory is bounded by `chunk_sites` (in-flight records) regardless of
/// shard size.
#[allow(clippy::too_many_arguments)]
pub fn crawl_shard_to_segments(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    dir: &Path,
    shard: usize,
    count: usize,
    segment_sites: usize,
    chunk_sites: usize,
) -> io::Result<Vec<PathBuf>> {
    let caches = config.build_caches();
    let mut writer =
        SegmentWriter::create(dir, &config.label, &config.device.id, shard, segment_sites)?;
    let range = shard_range(frontier.len(), shard, count);
    let mut io_err: Option<io::Error> = None;
    crawl_streamed_range(
        network,
        frontier,
        config,
        &caches,
        range,
        chunk_sites,
        |_, record| {
            if io_err.is_none() {
                if let Err(e) = writer.append(&record) {
                    io_err = Some(e);
                }
            }
        },
    );
    if let Some(e) = io_err {
        return Err(e);
    }
    writer.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_trace::CountingSink;
    use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("canvassing-seg-{}-{name}", std::process::id()));
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn workload() -> (SyntheticWeb, Vec<Url>, CrawlConfig) {
        let web = SyntheticWeb::generate(WebConfig {
            seed: 17,
            scale: 0.02,
        });
        let mut frontier = web.frontier(Cohort::Popular);
        frontier.truncate(50);
        let mut config = CrawlConfig::control();
        config.workers = 4;
        (web, frontier, config)
    }

    #[test]
    fn segments_are_bounded_and_ordered() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("bounded");
        let segments =
            crawl_shard_to_segments(&web.network, &frontier, &config, &dir, 0, 1, 12, 8).unwrap();
        // 50 records at <=12/segment: five segments, last holding 2.
        assert_eq!(segments.len(), 5);
        let mut total = 0;
        for (i, path) in segments.iter().enumerate() {
            let (ds, report) = recover(path).unwrap();
            assert!(report.clean());
            assert!(ds.records.len() <= 12, "segment {i} over bound");
            total += ds.records.len();
        }
        assert_eq!(total, frontier.len());
        assert_eq!(list_segments(&dir).unwrap(), segments);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sharded_spill_merges_byte_identical_to_single_crawl() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("identity");
        for shard in 0..3 {
            crawl_shard_to_segments(&web.network, &frontier, &config, &dir, shard, 3, 8, 4)
                .unwrap();
        }
        let segments = list_segments(&dir).unwrap();
        let (merged, report) =
            merge_segments(&web.network, &frontier, &config, &segments, None).unwrap();
        assert_eq!(report.records_recovered, frontier.len());
        assert_eq!(report.segments_recovered_dirty, 0);
        assert_eq!(report.recrawled, 0);

        let direct = crate::crawl(&web.network, &frontier, &config);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_trace_goes_to_the_spill_sink_only() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("trace");
        let sink = Arc::new(CountingSink::new());
        let caches = config.build_caches();
        let mut writer = SegmentWriter::create(&dir, &config.label, &config.device.id, 0, 10)
            .unwrap()
            .with_trace(Arc::clone(&sink) as Arc<dyn TraceSink>);
        crawl_streamed_range(
            &web.network,
            &frontier,
            &config,
            &caches,
            0..frontier.len(),
            16,
            |_, record| writer.append(&record).unwrap(),
        );
        let segments = writer.finish().unwrap();
        assert_eq!(segments.len(), 5);
        let (_, spans, events) = sink.totals();
        assert_eq!(spans, 0, "seal instants open no spans");
        assert_eq!(events as usize, segments.len());
        fs::remove_dir_all(&dir).ok();
    }
}
