//! Crawl datasets: per-site records with JSON (de)serialization.

use canvassing_browser::PageVisit;
use canvassing_net::Url;
use serde::{Deserialize, Serialize};

/// Result of visiting one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SiteOutcome {
    /// The visit completed; canvas activity recorded.
    Success(Box<PageVisit>),
    /// The visit failed (site down, DNS error, bot wall).
    Failure(String),
}

/// One frontier entry's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteRecord {
    /// The homepage URL visited.
    pub url: Url,
    /// What happened.
    pub outcome: SiteOutcome,
}

/// A complete crawl of one frontier under one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlDataset {
    /// Configuration label (`"control"`, `"adblock-plus"`, …).
    pub label: String,
    /// Device profile id the crawl rendered with.
    pub device_id: String,
    /// Per-site records, in frontier order.
    pub records: Vec<SiteRecord>,
}

impl CrawlDataset {
    /// Iterates over successfully crawled sites.
    pub fn successful(&self) -> impl Iterator<Item = (&Url, &PageVisit)> {
        self.records.iter().filter_map(|r| match &r.outcome {
            SiteOutcome::Success(v) => Some((&r.url, v.as_ref())),
            SiteOutcome::Failure(_) => None,
        })
    }

    /// Iterates over failed sites with their error strings.
    pub fn failed(&self) -> impl Iterator<Item = (&Url, &str)> {
        self.records.iter().filter_map(|r| match &r.outcome {
            SiteOutcome::Success(_) => None,
            SiteOutcome::Failure(e) => Some((&r.url, e.as_str())),
        })
    }

    /// Number of successfully crawled sites.
    pub fn success_count(&self) -> usize {
        self.successful().count()
    }

    /// Total extractions across all successful visits.
    pub fn extraction_count(&self) -> usize {
        self.successful().map(|(_, v)| v.extractions.len()).sum()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<CrawlDataset> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dataset_counts() {
        let ds = CrawlDataset {
            label: "x".into(),
            device_id: "d".into(),
            records: vec![],
        };
        assert_eq!(ds.success_count(), 0);
        assert_eq!(ds.extraction_count(), 0);
        assert_eq!(ds.failed().count(), 0);
    }

    #[test]
    fn failure_records_roundtrip() {
        let ds = CrawlDataset {
            label: "x".into(),
            device_id: "d".into(),
            records: vec![SiteRecord {
                url: Url::https("down.com", "/"),
                outcome: SiteOutcome::Failure("unreachable host: down.com".into()),
            }],
        };
        let back = CrawlDataset::from_json(&ds.to_json().unwrap()).unwrap();
        assert_eq!(back.failed().count(), 1);
        assert_eq!(back.failed().next().unwrap().1, "unreachable host: down.com");
    }
}
