//! Crawl datasets: per-site records with JSON (de)serialization and a
//! typed failure taxonomy.

use std::collections::BTreeMap;

use canvassing_browser::{PageVisit, VisitError};
use canvassing_net::{FetchError, Url};
use serde::{Deserialize, Serialize};

/// Why a site visit failed, as a closed taxonomy the analysis layer can
/// aggregate over (per-kind breakdown tables), rather than a free-form
/// string that can only be substring-matched.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FailureKind {
    /// Permanent DNS failure (NXDOMAIN, broken CNAME chain).
    Dns,
    /// Transient DNS failure (SERVFAIL, resolver timeout) — retryable.
    DnsTransient,
    /// The host refused every connection.
    Unreachable,
    /// The connection failed this attempt but might succeed on retry.
    Transient,
    /// The visit blew its deadline (slow site / latency spike).
    Timeout,
    /// The site's bot gate rejected the crawler.
    BotBlocked,
    /// Script execution failed badly enough to abort the visit (e.g. the
    /// visit's fuel allowance ran out).
    ScriptCrash,
    /// The response body was cut off and the document was unusable.
    Truncated,
    /// The URL did not serve an HTML page.
    NotAPage,
    /// The worker crawling the site panicked; the harness isolated the
    /// panic and recorded the site as failed.
    WorkerPanic,
    /// The per-host circuit breaker was open: the visit was
    /// short-circuited without touching the network (the host had already
    /// failed enough visits that further attempts were pointless).
    CircuitOpen,
}

impl FailureKind {
    /// Stable lowercase name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureKind::Dns => "dns",
            FailureKind::DnsTransient => "dns-transient",
            FailureKind::Unreachable => "unreachable",
            FailureKind::Transient => "transient",
            FailureKind::Timeout => "timeout",
            FailureKind::BotBlocked => "bot-blocked",
            FailureKind::ScriptCrash => "script-crash",
            FailureKind::Truncated => "truncated",
            FailureKind::NotAPage => "not-a-page",
            FailureKind::WorkerPanic => "worker-panic",
            FailureKind::CircuitOpen => "circuit-open",
        }
    }

    /// Whether a retry of the visit could plausibly succeed. Only these
    /// kinds are eligible for the harness retry policy; everything else is
    /// authoritative (retrying an NXDOMAIN or a bot wall never helps).
    pub fn is_transient(&self) -> bool {
        matches!(self, FailureKind::Transient | FailureKind::DnsTransient)
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.as_str())
    }
}

impl From<&VisitError> for FailureKind {
    fn from(e: &VisitError) -> FailureKind {
        match e {
            VisitError::Fetch(FetchError::Dns(d)) => {
                if d.is_transient() {
                    FailureKind::DnsTransient
                } else {
                    FailureKind::Dns
                }
            }
            VisitError::Fetch(FetchError::Unreachable(_)) => FailureKind::Unreachable,
            VisitError::Fetch(FetchError::Transient(_)) => FailureKind::Transient,
            VisitError::Fetch(FetchError::Truncated(_)) => FailureKind::Truncated,
            VisitError::Fetch(FetchError::NotFound(_)) => FailureKind::NotAPage,
            // The browser never blocks its own top-level document; if it
            // somehow surfaces, the page was unreachable for the client.
            VisitError::Fetch(FetchError::Blocked(_)) => FailureKind::Unreachable,
            VisitError::NotAPage(_) => FailureKind::NotAPage,
            VisitError::BotBlocked(_) => FailureKind::BotBlocked,
            VisitError::DeadlineExceeded(_) => FailureKind::Timeout,
            VisitError::FuelExhausted(_) => FailureKind::ScriptCrash,
            VisitError::CircuitOpen(_) => FailureKind::CircuitOpen,
        }
    }
}

/// How much of a site's evidence the crawl actually captured. The paper's
/// prevalence numbers silently condition on fully successful visits; the
/// fidelity tier makes that conditioning explicit so estimators can state
/// what they include (and what the worst case for the rest is).
///
/// Tiers are a partition: every [`SiteRecord`] maps to exactly one, so
/// per-tier counts always sum to the site population.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum VisitFidelity {
    /// The visit completed: dynamic evidence (API calls, extractions) is
    /// authoritative.
    Full,
    /// The visit died mid-pipeline but at least one fetched script carries
    /// a static triage verdict — the static classifier can stand in for
    /// the dynamic detector.
    StaticSalvage,
    /// The page was reached, but no script evidence was captured before
    /// the failure (bot wall, truncated body, deadline at the page).
    FetchOnly,
    /// Nothing was captured: the failure preceded any page contact.
    Lost,
}

impl VisitFidelity {
    /// Stable lowercase name for reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            VisitFidelity::Full => "full",
            VisitFidelity::StaticSalvage => "static-salvage",
            VisitFidelity::FetchOnly => "fetch-only",
            VisitFidelity::Lost => "lost",
        }
    }

    /// All tiers, in display order.
    pub fn all() -> [VisitFidelity; 4] {
        [
            VisitFidelity::Full,
            VisitFidelity::StaticSalvage,
            VisitFidelity::FetchOnly,
            VisitFidelity::Lost,
        ]
    }
}

impl std::fmt::Display for VisitFidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.pad(self.as_str())
    }
}

/// A failed site visit: the typed kind, the human-readable error, and how
/// many attempts were made before giving up.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteFailure {
    /// Typed failure kind.
    pub kind: FailureKind,
    /// Human-readable error message from the final attempt.
    pub error: String,
    /// Total visit attempts made (1 = no retries).
    pub attempts: u32,
    /// Partial evidence salvaged before the visit died (page-level facts
    /// and any scripts already fetched + triaged). `None` when the failure
    /// preceded page contact or salvage is disabled (serialized as an
    /// explicit `null`).
    pub salvage: Option<Box<PageVisit>>,
}

impl SiteFailure {
    /// Builds a failure record from a visit error (no salvage attached).
    pub fn from_visit_error(e: &VisitError, attempts: u32) -> SiteFailure {
        SiteFailure {
            kind: FailureKind::from(e),
            error: e.to_string(),
            attempts,
            salvage: None,
        }
    }

    /// The fidelity tier this failure leaves the site at.
    pub fn fidelity(&self) -> VisitFidelity {
        match &self.salvage {
            Some(partial) if partial.scripts.iter().any(|s| s.verdict.is_some()) => {
                VisitFidelity::StaticSalvage
            }
            Some(_) => VisitFidelity::FetchOnly,
            None => VisitFidelity::Lost,
        }
    }
}

/// Result of visiting one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SiteOutcome {
    /// The visit completed; canvas activity recorded.
    Success(Box<PageVisit>),
    /// The visit failed (site down, DNS error, bot wall, worker panic…).
    Failure(SiteFailure),
}

/// One frontier entry's record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteRecord {
    /// The homepage URL visited.
    pub url: Url,
    /// What happened.
    pub outcome: SiteOutcome,
}

impl SiteRecord {
    /// The fidelity tier of this record (a total function: every record
    /// has exactly one tier).
    pub fn fidelity(&self) -> VisitFidelity {
        match &self.outcome {
            SiteOutcome::Success(_) => VisitFidelity::Full,
            SiteOutcome::Failure(f) => f.fidelity(),
        }
    }
}

/// A complete crawl of one frontier under one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrawlDataset {
    /// Configuration label (`"control"`, `"adblock-plus"`, …).
    pub label: String,
    /// Device profile id the crawl rendered with.
    pub device_id: String,
    /// Per-site records, in frontier order.
    pub records: Vec<SiteRecord>,
}

impl CrawlDataset {
    /// Iterates over successfully crawled sites.
    pub fn successful(&self) -> impl Iterator<Item = (&Url, &PageVisit)> {
        self.records.iter().filter_map(|r| match &r.outcome {
            SiteOutcome::Success(v) => Some((&r.url, v.as_ref())),
            SiteOutcome::Failure(_) => None,
        })
    }

    /// Iterates over failed sites with their failure records.
    pub fn failed(&self) -> impl Iterator<Item = (&Url, &SiteFailure)> {
        self.records.iter().filter_map(|r| match &r.outcome {
            SiteOutcome::Success(_) => None,
            SiteOutcome::Failure(f) => Some((&r.url, f)),
        })
    }

    /// Number of successfully crawled sites.
    pub fn success_count(&self) -> usize {
        self.successful().count()
    }

    /// Counts failures by typed kind (the §3.1 "crawled unsuccessfully"
    /// breakdown).
    pub fn failure_breakdown(&self) -> BTreeMap<FailureKind, usize> {
        let mut out = BTreeMap::new();
        for (_, f) in self.failed() {
            *out.entry(f.kind).or_insert(0) += 1;
        }
        out
    }

    /// Iterates over failed sites that carry salvaged partial evidence.
    pub fn salvaged(&self) -> impl Iterator<Item = (&Url, &SiteFailure, &PageVisit)> {
        self.failed()
            .filter_map(|(u, f)| f.salvage.as_deref().map(|v| (u, f, v)))
    }

    /// Counts records by fidelity tier. Every tier appears (zero-filled),
    /// and the counts always sum to `records.len()` — the partition
    /// invariant the chaos gate checks.
    pub fn fidelity_breakdown(&self) -> BTreeMap<VisitFidelity, usize> {
        let mut out: BTreeMap<VisitFidelity, usize> =
            VisitFidelity::all().into_iter().map(|t| (t, 0)).collect();
        for r in &self.records {
            *out.entry(r.fidelity()).or_insert(0) += 1;
        }
        out
    }

    /// Total extractions across all successful visits.
    pub fn extraction_count(&self) -> usize {
        self.successful().map(|(_, v)| v.extractions.len()).sum()
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> serde_json::Result<CrawlDataset> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_net::DnsError;

    #[test]
    fn empty_dataset_counts() {
        let ds = CrawlDataset {
            label: "x".into(),
            device_id: "d".into(),
            records: vec![],
        };
        assert_eq!(ds.success_count(), 0);
        assert_eq!(ds.extraction_count(), 0);
        assert_eq!(ds.failed().count(), 0);
        assert!(ds.failure_breakdown().is_empty());
    }

    #[test]
    fn failure_records_roundtrip() {
        let ds = CrawlDataset {
            label: "x".into(),
            device_id: "d".into(),
            records: vec![SiteRecord {
                url: Url::https("down.com", "/"),
                outcome: SiteOutcome::Failure(SiteFailure {
                    kind: FailureKind::Unreachable,
                    error: "unreachable host: down.com".into(),
                    attempts: 1,
                    salvage: None,
                }),
            }],
        };
        let back = CrawlDataset::from_json(&ds.to_json().unwrap()).unwrap();
        assert_eq!(back.failed().count(), 1);
        let (_, failure) = back.failed().next().unwrap();
        assert_eq!(failure.kind, FailureKind::Unreachable);
        assert_eq!(failure.error, "unreachable host: down.com");
        assert_eq!(failure.attempts, 1);
        assert_eq!(back.failure_breakdown()[&FailureKind::Unreachable], 1);
    }

    #[test]
    fn visit_errors_map_to_kinds() {
        let url = Url::https("x.com", "/");
        let cases: Vec<(VisitError, FailureKind)> = vec![
            (
                VisitError::Fetch(FetchError::Dns(DnsError::NxDomain("x.com".into()))),
                FailureKind::Dns,
            ),
            (
                VisitError::Fetch(FetchError::Dns(DnsError::ServFail("x.com".into()))),
                FailureKind::DnsTransient,
            ),
            (
                VisitError::Fetch(FetchError::Dns(DnsError::Timeout("x.com".into()))),
                FailureKind::DnsTransient,
            ),
            (
                VisitError::Fetch(FetchError::Unreachable("x.com".into())),
                FailureKind::Unreachable,
            ),
            (
                VisitError::Fetch(FetchError::Transient("x.com".into())),
                FailureKind::Transient,
            ),
            (
                VisitError::Fetch(FetchError::Truncated(url.clone())),
                FailureKind::Truncated,
            ),
            (
                VisitError::Fetch(FetchError::NotFound(url.clone())),
                FailureKind::NotAPage,
            ),
            (VisitError::NotAPage(url.clone()), FailureKind::NotAPage),
            (VisitError::BotBlocked(url.clone()), FailureKind::BotBlocked),
            (
                VisitError::DeadlineExceeded(url.clone()),
                FailureKind::Timeout,
            ),
            (
                VisitError::FuelExhausted(url.clone()),
                FailureKind::ScriptCrash,
            ),
            (VisitError::CircuitOpen(url), FailureKind::CircuitOpen),
        ];
        for (err, want) in cases {
            assert_eq!(FailureKind::from(&err), want, "{err}");
        }
    }

    #[test]
    fn transient_kinds_are_exactly_the_retryable_ones() {
        for kind in [
            FailureKind::Dns,
            FailureKind::Unreachable,
            FailureKind::Timeout,
            FailureKind::BotBlocked,
            FailureKind::ScriptCrash,
            FailureKind::Truncated,
            FailureKind::NotAPage,
            FailureKind::WorkerPanic,
            FailureKind::CircuitOpen,
        ] {
            assert!(!kind.is_transient(), "{kind}");
        }
        assert!(FailureKind::Transient.is_transient());
        assert!(FailureKind::DnsTransient.is_transient());
    }

    #[test]
    fn fidelity_tiers_partition_any_dataset() {
        use canvassing_browser::LoadedScript;
        let visit_with = |verdict: bool| -> Box<PageVisit> {
            Box::new(PageVisit {
                page: Url::https("x.com", "/"),
                api_calls: vec![],
                extractions: vec![],
                scripts: if verdict {
                    vec![LoadedScript {
                        url: Url::https("x.com", "/a.js"),
                        inline: false,
                        canonical_host: "x.com".into(),
                        cname_cloaked: false,
                        source_hash: 7,
                        verdict: Some(canvassing_browser::Verdict::Benign),
                        error: None,
                    }]
                } else {
                    vec![]
                },
                blocked: vec![],
                consent_banner: false,
            })
        };
        let fail = |salvage: Option<Box<PageVisit>>| -> SiteOutcome {
            SiteOutcome::Failure(SiteFailure {
                kind: FailureKind::Timeout,
                error: "t".into(),
                attempts: 1,
                salvage,
            })
        };
        let ds = CrawlDataset {
            label: "x".into(),
            device_id: "d".into(),
            records: vec![
                SiteRecord {
                    url: Url::https("a.com", "/"),
                    outcome: SiteOutcome::Success(visit_with(true)),
                },
                SiteRecord {
                    url: Url::https("b.com", "/"),
                    outcome: fail(Some(visit_with(true))),
                },
                SiteRecord {
                    url: Url::https("c.com", "/"),
                    outcome: fail(Some(visit_with(false))),
                },
                SiteRecord {
                    url: Url::https("d.com", "/"),
                    outcome: fail(None),
                },
            ],
        };
        let tiers = ds.fidelity_breakdown();
        assert_eq!(tiers[&VisitFidelity::Full], 1);
        assert_eq!(tiers[&VisitFidelity::StaticSalvage], 1);
        assert_eq!(tiers[&VisitFidelity::FetchOnly], 1);
        assert_eq!(tiers[&VisitFidelity::Lost], 1);
        assert_eq!(tiers.values().sum::<usize>(), ds.records.len());
        assert_eq!(ds.salvaged().count(), 2);
        // Salvage (and its absence) survives the JSON roundtrip.
        let back = CrawlDataset::from_json(&ds.to_json().unwrap()).unwrap();
        assert_eq!(back.fidelity_breakdown(), tiers);
        assert!(serde_json::to_string(&back.records[3])
            .unwrap()
            .contains("\"salvage\":null"));
    }
}
