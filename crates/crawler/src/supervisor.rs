//! Crash-tolerant shard supervision for the million-site crawl.
//!
//! PR 9's scale-out ([`crate::crawl_shard_to_segments`]) assumes every
//! shard process survives to `finish()`. Real web-scale measurement
//! crawls run for days across many machines, and processes there die,
//! hang, straggle, and get double-launched by the orchestration layer.
//! This module adds the supervision protocol that makes those failures
//! *invisible in the dataset*:
//!
//! * **Leases** — each shard's ownership is a [`Lease`] file
//!   (`shard{NNN}.lease`) in the spill directory, written atomically via
//!   write-temp-then-rename. Epochs increase monotonically across
//!   owners; the epoch is the fencing token that makes every other
//!   mechanism safe.
//! * **Heartbeats** — owners refresh their lease on a simulated-time
//!   cadence. A lease whose heartbeat goes stale past the TTL is
//!   expired (`lease.expire`) and the shard re-leased to a standby
//!   worker (`lease.acquire` + `worker.restart`) at the next epoch,
//!   resuming from the shard's *durable* frontier — re-derived from
//!   disk, exactly as a fresh process on another machine would.
//! * **Fencing** — a worker discovers it lost its lease at its next
//!   heartbeat (a newer non-speculative epoch exists) and self-fences
//!   (`worker.fenced`): it stops crawling. Records it spilled while
//!   fenced-but-unaware stay on disk; the merge drops them as
//!   duplicates.
//! * **Speculation** — when a live, heartbeating owner stops making
//!   progress ([`SpeculationPolicy::Race`]), a second owner is raced on
//!   the slowest such shard (`straggler.speculate` + `lease.steal`) at
//!   the next epoch, marked speculative so the original keeps running;
//!   whichever finishes first wins and the loser is cancelled
//!   (`worker.cancel`).
//!
//! **Fault injection** is scripted and process-level ([`WorkerFault`]):
//! crash-at-record-K with a torn segment tail (via
//! [`crate::checkpoint::CheckpointWriter::tear`]), crash before the
//! first spill, stall (stop crawling *and* heartbeating), straggle
//! (slow but heartbeating), and duplicate launch. The supervisor runs
//! workers as deterministic in-process simulations on a tick clock, so
//! every `(workload, faults)` pair reproduces the same interleaving.
//!
//! **The proof obligation**: any interleaving of crashes, re-leases,
//! fences, and speculative double-execution merges byte-identical to
//! one uninterrupted `workers = 1` crawl. Supervised owners write
//! epoch-qualified segments (`shard{NNN}-e{EEEE}-seg{NNNNN}.ckpt`) so
//! racing owners never collide on a file; [`merge_supervised`] orders
//! segments by `(shard, epoch, seq)` and [`crate::merge_segments`]
//! deduplicates records by site — and every execution of a site yields
//! the identical record ([`crate::SiteCrawler`]'s purity contract), so
//! dropping duplicates is lossless. `tests/supervisor_chaos.rs` proves
//! it with a kill-at-every-record sweep; `canvassing-bench`'s
//! `supervisor_soak` bin re-runs the sweep plus the straggler battery
//! as a CI gate.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use canvassing_net::{Network, Url};
use canvassing_trace::TraceSink;
use serde::{Deserialize, Serialize};

use crate::checkpoint::recover;
use crate::dataset::CrawlDataset;
use crate::segment::{emit_spill_instant, parse_supervised_name, SegmentWriter};
use crate::{merge_segments, shard_range, BreakerPlan, CrawlConfig, MergeReport, SiteCrawler};

/// One shard's ownership record, persisted as `shard{NNN}.lease` in the
/// spill directory via write-temp-then-rename — a crash mid-write leaves
/// either the old lease or the new one, never a torn hybrid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Lease {
    /// Shard this lease covers.
    pub shard: usize,
    /// Fencing token: strictly increasing across owners of the shard. A
    /// worker holding epoch `e` must stop the moment it observes a
    /// non-speculative lease with epoch `> e`.
    pub epoch: u64,
    /// Launch id of the owning worker.
    pub worker: usize,
    /// Simulated ms at which this epoch acquired the shard.
    pub acquired_ms: u64,
    /// Simulated ms of the owner's last heartbeat.
    pub heartbeat_ms: u64,
    /// Records the owner had durably spilled at the last heartbeat.
    pub progress: usize,
    /// A speculative (racing) lease: the previous epoch's owner is
    /// still live and deliberately keeps running — first to finish wins.
    pub speculative: bool,
    /// Set when the shard completed under this lease.
    pub released: bool,
}

/// The lease file path for one shard.
pub fn lease_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard{shard:03}.lease"))
}

/// Reads a shard's lease, `None` when no owner has ever claimed it.
pub fn read_lease(dir: &Path, shard: usize) -> io::Result<Option<Lease>> {
    match fs::read_to_string(lease_path(dir, shard)) {
        Ok(text) => serde_json::from_str(&text)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("bad lease: {e}"))),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(e),
    }
}

/// Atomically replaces a shard's lease (write temp, then rename).
fn write_lease(dir: &Path, lease: &Lease) -> io::Result<()> {
    let path = lease_path(dir, lease.shard);
    let tmp = path.with_extension("lease.tmp");
    fs::write(
        &tmp,
        serde_json::to_string(lease).map_err(io::Error::other)?,
    )?;
    fs::rename(&tmp, &path)
}

/// When to race a second owner against a slow shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpeculationPolicy {
    /// Never speculate; stragglers run to completion at their own pace.
    Off,
    /// Race a second owner on the slowest live shard (most records
    /// remaining, ties to the lowest shard id) once its owner has gone
    /// `after_quiet_ticks` scheduling ticks without spilling a record
    /// while still heartbeating — a straggler, not a corpse; corpses
    /// are lease expiry's job.
    Race {
        /// Progress-free ticks tolerated before racing a second owner.
        after_quiet_ticks: u64,
    },
}

/// Simulated-time supervision parameters. All durations are simulated
/// milliseconds — the supervisor advances a logical clock by
/// [`SupervisorConfig::tick_ms`] per scheduling round and never consults
/// a wall clock, so runs are exactly reproducible.
#[derive(Clone)]
pub struct SupervisorConfig {
    /// Frontier shards (= concurrent owners when nothing fails).
    pub shards: usize,
    /// Maximum workers live at once; shards beyond this wait for a slot,
    /// and the spare slots are the standby pool re-leases draw from.
    pub worker_slots: usize,
    /// Records per spilled segment file.
    pub segment_sites: usize,
    /// Simulated ms per scheduling tick (one record per healthy worker).
    pub tick_ms: u64,
    /// Owners refresh their lease at this cadence.
    pub heartbeat_ms: u64,
    /// A lease whose heartbeat is older than this has lost its owner:
    /// expire it and re-lease the shard.
    pub lease_ttl_ms: u64,
    /// Straggler speculation policy.
    pub speculation: SpeculationPolicy,
    /// Livelock valve: a shard needing more than this many epochs fails
    /// the crawl instead of re-leasing forever.
    pub max_epochs_per_shard: u64,
    /// Spill-side sink for supervision instants (`lease.*`, `worker.*`,
    /// `straggler.speculate`) and the segment writers' seal instants.
    /// Kept separate from the crawl's sink so study trace totals are
    /// unaffected by supervision.
    pub trace: Option<Arc<dyn TraceSink>>,
}

impl std::fmt::Debug for SupervisorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SupervisorConfig")
            .field("shards", &self.shards)
            .field("worker_slots", &self.worker_slots)
            .field("segment_sites", &self.segment_sites)
            .field("tick_ms", &self.tick_ms)
            .field("heartbeat_ms", &self.heartbeat_ms)
            .field("lease_ttl_ms", &self.lease_ttl_ms)
            .field("speculation", &self.speculation)
            .field("max_epochs_per_shard", &self.max_epochs_per_shard)
            .finish_non_exhaustive()
    }
}

impl SupervisorConfig {
    /// Defaults for `shards` shards: one standby slot, 64-record
    /// segments, heartbeat every 5 ticks, expiry after ~3 missed beats,
    /// speculation after 6 quiet ticks.
    pub fn new(shards: usize) -> SupervisorConfig {
        SupervisorConfig {
            shards: shards.max(1),
            worker_slots: shards.max(1) + 1,
            segment_sites: 64,
            tick_ms: 100,
            heartbeat_ms: 500,
            lease_ttl_ms: 1600,
            speculation: SpeculationPolicy::Race {
                after_quiet_ticks: 6,
            },
            max_epochs_per_shard: 32,
            trace: None,
        }
    }
}

/// A scripted process-level fault for one worker launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Die while appending the `0`-based `k`-th record of this
    /// ownership: the record's framed line lands half-written (torn
    /// segment tail), exactly as a crash inside `write(2)` would leave
    /// it.
    CrashAtRecord(usize),
    /// Die after acquiring the lease but before any spill lands — the
    /// shard has an owner on paper and nothing on disk.
    CrashBeforeFirstSpill,
    /// Stop crawling *and* heartbeating after `after_records` records —
    /// a hung process. Only lease expiry clears it.
    Stall {
        /// Records spilled before the hang.
        after_records: usize,
    },
    /// Keep heartbeating on time but spill only one record every
    /// `period` ticks — the straggler that speculation exists for.
    Straggle {
        /// Ticks per record (healthy workers do one per tick).
        period: u64,
    },
}

/// Deterministic fault plan for a supervised crawl: faults are keyed by
/// `(shard, epoch)` — epoch 1 is a shard's first owner — plus optional
/// duplicate launches. Build one by hand for targeted tests or from a
/// seed ([`FaultScript::seeded`]) for soak sweeps.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    faults: BTreeMap<(usize, u64), WorkerFault>,
    /// Shard → records its epoch-1 owner spills before a duplicate
    /// worker is launched on the same shard.
    duplicates: BTreeMap<usize, usize>,
}

impl FaultScript {
    /// No faults: the supervised crawl runs exactly like N healthy
    /// shard processes.
    pub fn none() -> FaultScript {
        FaultScript::default()
    }

    /// Scripts `fault` for the worker owning `shard` at `epoch`.
    pub fn inject(&mut self, shard: usize, epoch: u64, fault: WorkerFault) -> &mut FaultScript {
        self.faults.insert((shard, epoch), fault);
        self
    }

    /// Scripts a duplicate launch: once `shard`'s first owner has
    /// spilled `after_records` records, a second worker is launched on
    /// the same shard (stealing the lease at the next epoch) while the
    /// original keeps crawling until its next heartbeat notices the
    /// fence — the classic orchestration double-start.
    pub fn duplicate_launch(&mut self, shard: usize, after_records: usize) -> &mut FaultScript {
        self.duplicates.insert(shard, after_records);
        self
    }

    /// A seeded mixed fault plan (LCG, no external RNG): roughly half
    /// the shards get a crash, stall, straggle, double-crash, or
    /// duplicate launch.
    pub fn seeded(seed: u64, shards: usize) -> FaultScript {
        let mut script = FaultScript::default();
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut roll = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 33
        };
        for shard in 0..shards {
            match roll() % 8 {
                0 | 1 => {}
                2 => {
                    script.inject(shard, 1, WorkerFault::CrashAtRecord((roll() % 7) as usize));
                }
                3 => {
                    script.inject(shard, 1, WorkerFault::CrashBeforeFirstSpill);
                }
                4 => {
                    script.inject(
                        shard,
                        1,
                        WorkerFault::Stall {
                            after_records: 1 + (roll() % 4) as usize,
                        },
                    );
                }
                5 => {
                    script.inject(
                        shard,
                        1,
                        WorkerFault::Straggle {
                            period: 3 + roll() % 4,
                        },
                    );
                }
                6 => {
                    script.duplicate_launch(shard, 1 + (roll() % 3) as usize);
                }
                _ => {
                    script.inject(shard, 1, WorkerFault::CrashAtRecord((roll() % 5) as usize));
                    script.inject(shard, 2, WorkerFault::CrashAtRecord((roll() % 5) as usize));
                }
            }
        }
        script
    }

    fn fault_for(&self, shard: usize, epoch: u64) -> Option<WorkerFault> {
        self.faults.get(&(shard, epoch)).copied()
    }
}

/// What supervision did and what it cost, alongside the merge's own
/// accounting. Fully deterministic for a given `(workload, faults)`
/// pair — the soak bench gates these numbers against a committed
/// baseline.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SupervisionReport {
    /// Shards supervised.
    pub shards: usize,
    /// Worker launches, including re-leases, duplicates, and
    /// speculative racers.
    pub workers_launched: usize,
    /// Workers that died to injected crashes.
    pub workers_crashed: usize,
    /// Workers that observed a newer non-speculative epoch and stopped.
    pub workers_fenced: usize,
    /// Racing workers cancelled because the other owner finished first.
    pub workers_cancelled: usize,
    /// Leases expired after missed heartbeats (stalled owners).
    pub leases_expired: usize,
    /// Live leases taken over (duplicate launches + speculation).
    pub leases_stolen: usize,
    /// Relaunches after a crash or expiry (epoch > 1, non-speculative,
    /// non-duplicate).
    pub re_leases: usize,
    /// Speculative racers launched against stragglers.
    pub speculative_launches: usize,
    /// Total site visits performed by all workers.
    pub records_crawled: usize,
    /// Visits beyond the first per site — work re-done because of
    /// crashes, fencing lag, or speculation. The chaos gate bounds this
    /// at one segment per injected crash.
    pub records_redone: usize,
    /// Highest epoch any shard needed.
    pub max_epoch: u64,
    /// Simulated duration of the supervised crawl.
    pub sim_ms: u64,
    /// The duplicate-safe merge's accounting over the spill directory.
    pub merge: MergeReport,
}

impl SupervisionReport {
    /// Fraction of all visits that were re-done work: `0.0` for a
    /// fault-free run, approaching `1.0` only under pathological churn.
    pub fn wasted_work_ratio(&self) -> f64 {
        if self.records_crawled == 0 {
            0.0
        } else {
            self.records_redone as f64 / self.records_crawled as f64
        }
    }
}

/// One simulated shard-worker "process".
struct Worker<'a> {
    id: usize,
    shard: usize,
    epoch: u64,
    speculative: bool,
    crawler: SiteCrawler<'a>,
    writer: Option<SegmentWriter>,
    next_index: usize,
    end_index: usize,
    records_done: usize,
    fault: Option<WorkerFault>,
    duplicate_after: Option<usize>,
    spawn_tick: u64,
    acquired_ms: u64,
    last_heartbeat_ms: u64,
    last_progress_tick: u64,
    stalled: bool,
    dead: bool,
}

/// Lists every supervised (epoch-qualified) segment in `dir`, sorted by
/// file name — `(shard, epoch, seq)` order, the canonical merge order.
/// Lease-protocol files (`*.lease`, `*.tmp`) are skipped silently;
/// anything else foreign gets a `segment.skip` instant.
pub fn list_supervised_segments(
    dir: &Path,
    trace: Option<&Arc<dyn TraceSink>>,
) -> io::Result<Vec<PathBuf>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if parse_supervised_name(name).is_some() && path.is_file() {
            segments.push(path);
        } else if name.ends_with(".lease") || name.ends_with(".tmp") {
            // Protocol files, not strays.
        } else if path.is_file() {
            emit_spill_instant(trace, "segments", "segment.skip", || {
                format!("{} not a supervised segment name", path.display())
            });
        }
    }
    segments.sort();
    Ok(segments)
}

/// Recovers a supervised spill directory into a full dataset: segments
/// merge in `(shard, epoch, seq)` order, records deduplicate by site
/// (first occurrence wins — every execution produced the identical
/// record), torn tails are truncated, and any uncovered frontier gap is
/// recrawled. Byte-identical to one uninterrupted `workers = 1` crawl,
/// whatever the supervised run's fault history.
pub fn merge_supervised(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    dir: &Path,
    trace: Option<&Arc<dyn TraceSink>>,
) -> io::Result<(CrawlDataset, MergeReport)> {
    let segments = list_supervised_segments(dir, trace)?;
    merge_segments(network, frontier, config, &segments, trace)
}

/// The shard's durable frontier coverage, re-derived purely from disk:
/// every supervised segment of `shard` (any epoch, sealed or not) is
/// recovered — truncating torn tails exactly as a fresh standby process
/// would — and its records mapped back to frontier indices.
fn durable_coverage(
    dir: &Path,
    shard: usize,
    frontier_index: &BTreeMap<&Url, usize>,
) -> io::Result<BTreeSet<usize>> {
    let mut covered = BTreeSet::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        let Some((s, _epoch, _seq)) = parse_supervised_name(name) else {
            continue;
        };
        if s != shard {
            continue;
        }
        let (dataset, _report) = recover(&path)?;
        for record in dataset.records {
            if let Some(&i) = frontier_index.get(&record.url) {
                covered.insert(i);
            }
        }
    }
    Ok(covered)
}

/// Runs a supervised, crash-tolerant crawl of the full frontier across
/// `sup.shards` leased shard workers, injecting `faults`, then merges
/// the spill directory duplicate-safely.
///
/// Returns the merged dataset — byte-identical to an uninterrupted
/// `workers = 1` [`crate::crawl`] under the same config — plus the
/// [`SupervisionReport`]. Workers are deterministic in-process
/// simulations scheduled on a tick clock: each healthy worker visits
/// one site per tick via its own [`SiteCrawler`] (so `config.workers`
/// is not consulted here), spills through an epoch-qualified
/// [`SegmentWriter`], and heartbeats its lease on simulated time.
///
/// Errors on real spill I/O failures or when a shard exceeds
/// [`SupervisorConfig::max_epochs_per_shard`] (supervision livelock —
/// only reachable with a fault script that kills every epoch).
pub fn supervise_crawl(
    network: &Network,
    frontier: &[Url],
    config: &CrawlConfig,
    dir: &Path,
    sup: &SupervisorConfig,
    faults: &FaultScript,
) -> io::Result<(CrawlDataset, SupervisionReport)> {
    fs::create_dir_all(dir)?;
    let caches = config.build_caches();
    let plan = BreakerPlan::plan(network, frontier, config);
    let frontier_index: BTreeMap<&Url, usize> =
        frontier.iter().enumerate().map(|(i, u)| (u, i)).collect();
    let shards = sup.shards.max(1);
    let slots = sup.worker_slots.max(1);
    let label = config.label.clone();
    let trace = sup.trace.as_ref();

    let mut report = SupervisionReport {
        shards,
        ..SupervisionReport::default()
    };
    let mut workers: Vec<Worker> = Vec::new();
    let mut shard_epoch: Vec<u64> = vec![0; shards];
    let mut shard_complete: Vec<bool> = vec![false; shards];
    let mut expired_epochs: BTreeSet<(usize, u64)> = BTreeSet::new();
    let mut crawl_counts: Vec<u32> = vec![0; frontier.len()];
    let mut next_worker_id = 0usize;
    let mut now_ms = 0u64;
    let mut tick = 0u64;
    // Generous valve: epochs are the real livelock guard, this only
    // catches a supervisor bug outright.
    let tick_cap = (frontier.len() as u64 + 64) * 64 * sup.max_epochs_per_shard.max(1) + 10_000;

    // Launches a worker on `shard` at the next epoch, resuming from the
    // durable frontier. Returns None when the shard turns out to be
    // durably complete already.
    #[allow(clippy::too_many_arguments)]
    fn launch<'a>(
        network: &'a Network,
        frontier: &'a [Url],
        config: &'a CrawlConfig,
        caches: &'a canvassing_browser::CrawlCaches,
        plan: Option<&'a BreakerPlan>,
        dir: &Path,
        sup: &SupervisorConfig,
        frontier_index: &BTreeMap<&Url, usize>,
        shard: usize,
        epoch: u64,
        id: usize,
        speculative: bool,
        fault: Option<WorkerFault>,
        duplicate_after: Option<usize>,
        now_ms: u64,
        tick: u64,
    ) -> io::Result<Option<Worker<'a>>> {
        let range = shard_range(frontier.len(), shard, sup.shards.max(1));
        let covered = durable_coverage(dir, shard, frontier_index)?;
        let Some(next_index) = (range.start..range.end).find(|i| !covered.contains(i)) else {
            return Ok(None);
        };
        write_lease(
            dir,
            &Lease {
                shard,
                epoch,
                worker: id,
                acquired_ms: now_ms,
                heartbeat_ms: now_ms,
                progress: covered.len(),
                speculative,
                released: false,
            },
        )?;
        let mut writer = SegmentWriter::create(
            dir,
            &config.label,
            &config.device.id,
            shard,
            sup.segment_sites,
        )?
        .with_epoch(epoch);
        if let Some(sink) = &sup.trace {
            writer = writer.with_trace(Arc::clone(sink));
        }
        Ok(Some(Worker {
            id,
            shard,
            epoch,
            speculative,
            crawler: SiteCrawler::new(network, frontier, config, caches, plan),
            writer: Some(writer),
            next_index,
            end_index: range.end,
            records_done: 0,
            fault,
            duplicate_after,
            spawn_tick: tick,
            acquired_ms: now_ms,
            last_heartbeat_ms: now_ms,
            last_progress_tick: tick,
            stalled: false,
            dead: false,
        }))
    }

    while !shard_complete.iter().all(|&c| c) {
        tick += 1;
        now_ms += sup.tick_ms;
        if tick > tick_cap {
            return Err(io::Error::other(format!(
                "supervisor exceeded its tick budget ({tick_cap}) — supervision livelock"
            )));
        }

        // 1. Expiry scan: a lease whose heartbeat went stale has lost
        // its owner (a hung process); kill our simulation of it so the
        // launch scan re-leases the shard.
        for (shard, complete) in shard_complete.iter().enumerate() {
            if *complete {
                continue;
            }
            let Some(lease) = read_lease(dir, shard)? else {
                continue;
            };
            if lease.released
                || now_ms.saturating_sub(lease.heartbeat_ms) <= sup.lease_ttl_ms
                || !expired_epochs.insert((shard, lease.epoch))
            {
                continue;
            }
            emit_spill_instant(trace, &label, "lease.expire", || {
                format!(
                    "shard={shard} epoch={} last heartbeat {}ms ago",
                    lease.epoch,
                    now_ms - lease.heartbeat_ms
                )
            });
            report.leases_expired += 1;
            for w in workers.iter_mut() {
                if w.shard == shard && w.epoch == lease.epoch && !w.dead {
                    w.dead = true;
                    w.writer = None;
                }
            }
        }
        workers.retain(|w| !w.dead);

        // 2. Launch scan: every incomplete, ownerless shard gets a
        // standby worker at the next epoch, resuming from disk.
        for shard in 0..shards {
            if shard_complete[shard]
                || workers.iter().any(|w| w.shard == shard)
                || workers.len() >= slots
            {
                continue;
            }
            let epoch = shard_epoch[shard] + 1;
            if epoch > sup.max_epochs_per_shard {
                return Err(io::Error::other(format!(
                    "shard {shard} exceeded {} epochs — supervision livelock",
                    sup.max_epochs_per_shard
                )));
            }
            let id = next_worker_id;
            let fault = faults.fault_for(shard, epoch);
            let duplicate_after = (epoch == 1)
                .then(|| faults.duplicates.get(&shard).copied())
                .flatten();
            match launch(
                network,
                frontier,
                config,
                &caches,
                plan.as_ref(),
                dir,
                sup,
                &frontier_index,
                shard,
                epoch,
                id,
                false,
                fault,
                duplicate_after,
                now_ms,
                tick,
            )? {
                Some(worker) => {
                    shard_epoch[shard] = epoch;
                    next_worker_id += 1;
                    emit_spill_instant(trace, &label, "lease.acquire", || {
                        format!("shard={shard} epoch={epoch} worker={id}")
                    });
                    if epoch > 1 {
                        emit_spill_instant(trace, &label, "worker.restart", || {
                            format!("shard={shard} epoch={epoch} worker={id}")
                        });
                        report.re_leases += 1;
                    }
                    report.workers_launched += 1;
                    workers.push(worker);
                }
                None => {
                    // The previous owner durably finished the range but
                    // died before releasing; nothing left to do.
                    shard_complete[shard] = true;
                }
            }
        }

        // 3. Work step: each live worker crawls (at its rate), spills,
        // heartbeats, and applies its scripted fault.
        let mut pending_duplicates: Vec<usize> = Vec::new();
        for wi in 0..workers.len() {
            if workers[wi].dead || shard_complete[workers[wi].shard] {
                continue;
            }
            let (shard, epoch, id) = (workers[wi].shard, workers[wi].epoch, workers[wi].id);

            // A hung process: no work, and crucially no heartbeats.
            if let Some(WorkerFault::Stall { after_records }) = workers[wi].fault {
                if workers[wi].records_done >= after_records {
                    if !workers[wi].stalled {
                        workers[wi].stalled = true;
                        emit_spill_instant(trace, &label, "worker.stall", || {
                            format!("shard={shard} epoch={epoch} worker={id}")
                        });
                    }
                    continue;
                }
            }

            // Heartbeat — and with it, the fence check: the lease file
            // is the one source of truth about ownership.
            if now_ms.saturating_sub(workers[wi].last_heartbeat_ms) >= sup.heartbeat_ms {
                match read_lease(dir, shard)? {
                    Some(l) if l.epoch != epoch => {
                        if l.speculative {
                            // Outraced, not revoked: keep crawling, stop
                            // touching the lease (it is the racer's now).
                            workers[wi].last_heartbeat_ms = now_ms;
                        } else {
                            emit_spill_instant(trace, &label, "worker.fenced", || {
                                format!(
                                    "shard={shard} epoch={epoch} worker={id} fenced by epoch {}",
                                    l.epoch
                                )
                            });
                            report.workers_fenced += 1;
                            workers[wi].dead = true;
                            workers[wi].writer = None;
                            continue;
                        }
                    }
                    _ => {
                        write_lease(
                            dir,
                            &Lease {
                                shard,
                                epoch,
                                worker: id,
                                acquired_ms: workers[wi].acquired_ms,
                                heartbeat_ms: now_ms,
                                progress: workers[wi].records_done,
                                speculative: workers[wi].speculative,
                                released: false,
                            },
                        )?;
                        workers[wi].last_heartbeat_ms = now_ms;
                    }
                }
            }

            // Work-rate gate: stragglers crawl once per `period` ticks.
            if let Some(WorkerFault::Straggle { period }) = workers[wi].fault {
                if !(tick - workers[wi].spawn_tick).is_multiple_of(period.max(1)) {
                    continue;
                }
            }

            if matches!(workers[wi].fault, Some(WorkerFault::CrashBeforeFirstSpill)) {
                emit_spill_instant(trace, &label, "worker.crash", || {
                    format!("shard={shard} epoch={epoch} worker={id} before first spill")
                });
                report.workers_crashed += 1;
                workers[wi].dead = true;
                workers[wi].writer = None;
                continue;
            }

            let index = workers[wi].next_index;
            let record = workers[wi].crawler.visit(index);
            crawl_counts[index] += 1;
            report.records_crawled += 1;

            if let Some(WorkerFault::CrashAtRecord(k)) = workers[wi].fault {
                if workers[wi].records_done == k {
                    if let Some(writer) = workers[wi].writer.as_mut() {
                        writer.crash(&record)?;
                    }
                    emit_spill_instant(trace, &label, "worker.crash", || {
                        format!("shard={shard} epoch={epoch} worker={id} torn tail at record {k}")
                    });
                    report.workers_crashed += 1;
                    workers[wi].dead = true;
                    workers[wi].writer = None;
                    continue;
                }
            }

            if let Some(writer) = workers[wi].writer.as_mut() {
                writer.append(&record)?;
            }
            workers[wi].records_done += 1;
            workers[wi].next_index += 1;
            workers[wi].last_progress_tick = tick;

            if workers[wi].duplicate_after == Some(workers[wi].records_done) {
                workers[wi].duplicate_after = None;
                pending_duplicates.push(shard);
            }

            if workers[wi].next_index >= workers[wi].end_index {
                // Shard complete: seal, release the lease at our epoch
                // (winning any race), and cancel the losers.
                if let Some(writer) = workers[wi].writer.take() {
                    writer.finish()?;
                }
                write_lease(
                    dir,
                    &Lease {
                        shard,
                        epoch,
                        worker: id,
                        acquired_ms: workers[wi].acquired_ms,
                        heartbeat_ms: now_ms,
                        progress: workers[wi].records_done,
                        speculative: workers[wi].speculative,
                        released: true,
                    },
                )?;
                emit_spill_instant(trace, &label, "lease.release", || {
                    format!("shard={shard} epoch={epoch} worker={id}")
                });
                shard_complete[shard] = true;
                workers[wi].dead = true;
                for (wj, w) in workers.iter_mut().enumerate() {
                    if wj != wi && w.shard == shard && !w.dead {
                        let loser = w.id;
                        emit_spill_instant(trace, &label, "worker.cancel", || {
                            format!("shard={shard} worker={loser} lost the race")
                        });
                        report.workers_cancelled += 1;
                        w.dead = true;
                        w.writer = None;
                    }
                }
            }
        }

        // 3b. Duplicate launches scripted against this tick's spills:
        // the new worker *steals* the live lease (next epoch) — the
        // original discovers the fence at its next heartbeat.
        for shard in pending_duplicates {
            if shard_complete[shard] {
                continue;
            }
            let epoch = shard_epoch[shard] + 1;
            if epoch > sup.max_epochs_per_shard {
                return Err(io::Error::other(format!(
                    "shard {shard} exceeded {} epochs — supervision livelock",
                    sup.max_epochs_per_shard
                )));
            }
            let id = next_worker_id;
            if let Some(worker) = launch(
                network,
                frontier,
                config,
                &caches,
                plan.as_ref(),
                dir,
                sup,
                &frontier_index,
                shard,
                epoch,
                id,
                false,
                faults.fault_for(shard, epoch),
                None,
                now_ms,
                tick,
            )? {
                shard_epoch[shard] = epoch;
                next_worker_id += 1;
                emit_spill_instant(trace, &label, "lease.steal", || {
                    format!("shard={shard} epoch={epoch} worker={id} duplicate launch")
                });
                report.leases_stolen += 1;
                report.workers_launched += 1;
                workers.push(worker);
            }
        }
        workers.retain(|w| !w.dead);

        // 4. Speculation scan: race a second owner on the slowest live,
        // heartbeating-but-quiet shard.
        if let SpeculationPolicy::Race { after_quiet_ticks } = sup.speculation {
            let mut target: Option<(usize, usize)> = None; // (remaining, shard)
            for w in &workers {
                if w.dead
                    || w.speculative
                    || w.stalled
                    || shard_complete[w.shard]
                    || tick - w.last_progress_tick < after_quiet_ticks
                    || workers
                        .iter()
                        .any(|o| o.shard == w.shard && o.speculative && !o.dead)
                {
                    continue;
                }
                let remaining = w.end_index.saturating_sub(w.next_index);
                if remaining == 0 {
                    continue;
                }
                let better = match target {
                    None => true,
                    Some((best, shard)) => {
                        remaining > best || (remaining == best && w.shard < shard)
                    }
                };
                if better {
                    target = Some((remaining, w.shard));
                }
            }
            if let Some((_, shard)) = target {
                let epoch = shard_epoch[shard] + 1;
                if workers.len() < slots && epoch <= sup.max_epochs_per_shard {
                    let id = next_worker_id;
                    if let Some(worker) = launch(
                        network,
                        frontier,
                        config,
                        &caches,
                        plan.as_ref(),
                        dir,
                        sup,
                        &frontier_index,
                        shard,
                        epoch,
                        id,
                        true,
                        faults.fault_for(shard, epoch),
                        None,
                        now_ms,
                        tick,
                    )? {
                        shard_epoch[shard] = epoch;
                        next_worker_id += 1;
                        emit_spill_instant(trace, &label, "straggler.speculate", || {
                            format!("shard={shard} epoch={epoch} worker={id} racing the straggler")
                        });
                        emit_spill_instant(trace, &label, "lease.steal", || {
                            format!("shard={shard} epoch={epoch} worker={id} speculative")
                        });
                        report.speculative_launches += 1;
                        report.leases_stolen += 1;
                        report.workers_launched += 1;
                        workers.push(worker);
                    }
                }
            }
        }
    }

    let (dataset, merge) = merge_supervised(network, frontier, config, dir, trace)?;
    report.records_redone = crawl_counts
        .iter()
        .map(|&c| c.saturating_sub(1) as usize)
        .sum();
    report.max_epoch = shard_epoch.iter().copied().max().unwrap_or(0);
    report.sim_ms = now_ms;
    report.merge = merge;
    Ok((dataset, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_trace::RingSink;
    use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

    fn tmp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("canvassing-sup-{}-{name}", std::process::id()));
        fs::create_dir_all(&p).unwrap();
        p
    }

    fn workload() -> (SyntheticWeb, Vec<Url>, CrawlConfig) {
        let web = SyntheticWeb::generate(WebConfig {
            seed: 23,
            scale: 0.02,
        });
        let mut frontier = web.frontier(Cohort::Popular);
        frontier.truncate(36);
        let mut config = CrawlConfig::control();
        config.workers = 1;
        (web, frontier, config)
    }

    fn sup(shards: usize, segment_sites: usize) -> SupervisorConfig {
        let mut s = SupervisorConfig::new(shards);
        s.segment_sites = segment_sites;
        s
    }

    #[test]
    fn fault_free_supervision_is_byte_identical_with_no_rework() {
        let (web, frontier, config) = workload();
        let dir = tmp_dir("clean");
        let (merged, report) = supervise_crawl(
            &web.network,
            &frontier,
            &config,
            &dir,
            &sup(3, 8),
            &FaultScript::none(),
        )
        .unwrap();
        let direct = crate::crawl(&web.network, &frontier, &config);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
        assert_eq!(report.workers_launched, 3);
        assert_eq!(report.workers_crashed, 0);
        assert_eq!(report.records_crawled, frontier.len());
        assert_eq!(report.records_redone, 0);
        assert_eq!(report.merge.duplicates_dropped, 0);
        assert_eq!(report.merge.records_recovered, frontier.len());
        assert_eq!(report.merge.recrawled, 0);
        assert!(report.wasted_work_ratio() == 0.0);
        for shard in 0..3 {
            let lease = read_lease(&dir, shard).unwrap().unwrap();
            assert!(lease.released, "shard {shard} lease released");
            assert_eq!(lease.epoch, 1);
        }
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lease_files_round_trip_atomically() {
        let dir = tmp_dir("lease");
        let lease = Lease {
            shard: 2,
            epoch: 7,
            worker: 41,
            acquired_ms: 1000,
            heartbeat_ms: 2500,
            progress: 12,
            speculative: true,
            released: false,
        };
        write_lease(&dir, &lease).unwrap();
        assert!(!lease_path(&dir, 2).with_extension("lease.tmp").exists());
        assert_eq!(read_lease(&dir, 2).unwrap().unwrap(), lease);
        assert_eq!(read_lease(&dir, 3).unwrap(), None);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_at_record_re_leases_and_merges_identically() {
        let (web, frontier, config) = workload();
        let direct = crate::crawl(&web.network, &frontier, &config);
        let dir = tmp_dir("crash");
        let sink = Arc::new(RingSink::new(256));
        let mut s = sup(2, 6);
        s.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
        let mut faults = FaultScript::none();
        faults.inject(0, 1, WorkerFault::CrashAtRecord(4));
        let (merged, report) =
            supervise_crawl(&web.network, &frontier, &config, &dir, &s, &faults).unwrap();
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&direct).unwrap()
        );
        assert_eq!(report.workers_crashed, 1);
        assert_eq!(report.re_leases, 1);
        // Appends flush per record, so a crash re-does only the torn
        // record — well under the one-segment-per-crash bound.
        assert!(report.records_redone <= s.segment_sites * report.workers_crashed);
        assert_eq!(
            report.merge.records_recovered + report.merge.recrawled,
            frontier.len()
        );
        let instants: Vec<(&'static str, usize)> = [
            "worker.crash",
            "worker.restart",
            "lease.acquire",
            "lease.expire",
        ]
        .into_iter()
        .map(|name| {
            (
                name,
                sink.traces()
                    .iter()
                    .map(|t| t.instant_count(name))
                    .sum::<usize>(),
            )
        })
        .collect();
        assert_eq!(instants[0].1, 1, "one crash");
        assert_eq!(instants[1].1, 1, "one restart");
        assert_eq!(instants[2].1, 3, "three acquires (2 launches + 1 re-lease)");
        assert_eq!(instants[3].1, 0, "crash death is observed, not expired");
        fs::remove_dir_all(&dir).ok();
    }
}
