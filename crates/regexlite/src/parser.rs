//! Pattern parser: builds the [`Ast`] consumed by the matcher.

use crate::ParseError;

/// A single-character matcher.
#[derive(Debug, Clone, PartialEq)]
pub enum CharMatcher {
    /// Exact character.
    Literal(char),
    /// Any character except `\n`.
    Any,
    /// A class: ranges plus perl shorthands, possibly negated.
    Class {
        /// Inclusive character ranges.
        ranges: Vec<(char, char)>,
        /// Whether the class is negated (`[^...]`).
        negated: bool,
    },
}

impl CharMatcher {
    /// Whether the matcher accepts `c`.
    pub fn matches(&self, c: char) -> bool {
        match self {
            CharMatcher::Literal(l) => *l == c,
            CharMatcher::Any => c != '\n',
            CharMatcher::Class { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| c >= lo && c <= hi);
                inside != *negated
            }
        }
    }
}

/// Parsed regex AST.
#[derive(Debug, Clone, PartialEq)]
pub enum Ast {
    /// Empty expression (matches the empty string).
    Empty,
    /// Single character matcher.
    Char(CharMatcher),
    /// Sequence.
    Concat(Vec<Ast>),
    /// Alternation.
    Alt(Vec<Ast>),
    /// Greedy repetition of the inner expression.
    Repeat {
        /// Repeated expression.
        inner: Box<Ast>,
        /// Minimum count.
        min: u32,
        /// Maximum count (`None` = unbounded).
        max: Option<u32>,
    },
    /// Capturing group with 1-based index.
    Group(usize, Box<Ast>),
    /// `^` anchor.
    AnchorStart,
    /// `$` anchor.
    AnchorEnd,
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
    groups: usize,
}

/// Parses `pattern` into `(ast, number_of_capture_groups)`.
pub fn parse(pattern: &str) -> Result<(Ast, usize), ParseError> {
    let mut p = Parser {
        chars: pattern.chars().collect(),
        pos: 0,
        groups: 0,
    };
    let ast = p.parse_alt()?;
    if p.pos != p.chars.len() {
        return Err(p.err("unexpected character (unbalanced ')'?)"));
    }
    Ok((ast, p.groups))
}

impl Parser {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            position: self.pos,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_alt(&mut self) -> Result<Ast, ParseError> {
        let mut branches = vec![self.parse_concat()?];
        while self.eat('|') {
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.remove(0)
        } else {
            Ast::Alt(branches)
        })
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseError> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.parse_repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.remove(0),
            _ => Ast::Concat(items),
        })
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseError> {
        let atom = self.parse_atom()?;
        let quantifiable = !matches!(atom, Ast::AnchorStart | Ast::AnchorEnd);
        let (min, max) = match self.peek() {
            Some('*') => {
                self.pos += 1;
                (0, None)
            }
            Some('+') => {
                self.pos += 1;
                (1, None)
            }
            Some('?') => {
                self.pos += 1;
                (0, Some(1))
            }
            Some('{') => {
                self.pos += 1;
                let (min, max) = self.parse_bounds()?;
                (min, max)
            }
            _ => return Ok(atom),
        };
        if !quantifiable {
            return Err(self.err("quantifier applied to anchor"));
        }
        Ok(Ast::Repeat {
            inner: Box::new(atom),
            min,
            max,
        })
    }

    fn parse_bounds(&mut self) -> Result<(u32, Option<u32>), ParseError> {
        let min = self.parse_number()?;
        if self.eat('}') {
            return Ok((min, Some(min)));
        }
        if !self.eat(',') {
            return Err(self.err("expected ',' or '}' in bounds"));
        }
        if self.eat('}') {
            return Ok((min, None));
        }
        let max = self.parse_number()?;
        if !self.eat('}') {
            return Err(self.err("expected '}' after bounds"));
        }
        if max < min {
            return Err(self.err("bounds out of order"));
        }
        Ok((min, Some(max)))
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected number"));
        }
        let s: String = self.chars[start..self.pos].iter().collect();
        s.parse().map_err(|_| self.err("number too large"))
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseError> {
        match self.bump() {
            None => Err(self.err("unexpected end of pattern")),
            Some('^') => Ok(Ast::AnchorStart),
            Some('$') => Ok(Ast::AnchorEnd),
            Some('.') => Ok(Ast::Char(CharMatcher::Any)),
            Some('(') => {
                let capturing = if self.peek() == Some('?') {
                    self.pos += 1;
                    if !self.eat(':') {
                        return Err(self.err("only (?: groups are supported"));
                    }
                    false
                } else {
                    true
                };
                let idx = if capturing {
                    self.groups += 1;
                    self.groups
                } else {
                    0
                };
                let inner = self.parse_alt()?;
                if !self.eat(')') {
                    return Err(self.err("missing ')'"));
                }
                Ok(if capturing {
                    Ast::Group(idx, Box::new(inner))
                } else {
                    inner
                })
            }
            Some('[') => self.parse_class(),
            Some('\\') => self.parse_escape(),
            Some(c) if c == '*' || c == '+' || c == '?' => {
                Err(self.err("quantifier with nothing to repeat"))
            }
            Some(')') => {
                self.pos -= 1;
                Err(self.err("unbalanced ')'"))
            }
            Some(c) => Ok(Ast::Char(CharMatcher::Literal(c))),
        }
    }

    fn parse_escape(&mut self) -> Result<Ast, ParseError> {
        let Some(c) = self.bump() else {
            return Err(self.err("dangling escape"));
        };
        let m = match c {
            'd' => perl_class(false, &[('0', '9')]),
            'D' => perl_class(true, &[('0', '9')]),
            'w' => perl_class(false, &[('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            'W' => perl_class(true, &[('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
            's' => perl_class(
                false,
                &[(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
            ),
            'S' => perl_class(
                true,
                &[(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
            ),
            'n' => CharMatcher::Literal('\n'),
            't' => CharMatcher::Literal('\t'),
            'r' => CharMatcher::Literal('\r'),
            other => CharMatcher::Literal(other),
        };
        Ok(Ast::Char(m))
    }

    fn parse_class(&mut self) -> Result<Ast, ParseError> {
        let negated = self.eat('^');
        let mut ranges: Vec<(char, char)> = Vec::new();
        loop {
            let Some(c) = self.bump() else {
                return Err(self.err("unterminated class"));
            };
            if c == ']' {
                if ranges.is_empty() {
                    // First ']' is a literal, per tradition.
                    ranges.push((']', ']'));
                    continue;
                }
                break;
            }
            let lo = if c == '\\' {
                match self.bump() {
                    Some('d') => {
                        ranges.push(('0', '9'));
                        continue;
                    }
                    Some('w') => {
                        ranges.extend_from_slice(&[('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]);
                        continue;
                    }
                    Some('s') => {
                        ranges.extend_from_slice(&[(' ', ' '), ('\t', '\t'), ('\n', '\n')]);
                        continue;
                    }
                    Some('n') => '\n',
                    Some('t') => '\t',
                    Some(other) => other,
                    None => return Err(self.err("dangling escape in class")),
                }
            } else {
                c
            };
            if self.peek() == Some('-') && self.chars.get(self.pos + 1) != Some(&']') {
                self.pos += 1; // consume '-'
                let Some(mut hi) = self.bump() else {
                    return Err(self.err("unterminated range"));
                };
                if hi == '\\' {
                    hi = self.bump().ok_or_else(|| self.err("dangling escape"))?;
                }
                if hi < lo {
                    return Err(self.err("range out of order"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        Ok(Ast::Char(CharMatcher::Class { ranges, negated }))
    }
}

fn perl_class(negated: bool, ranges: &[(char, char)]) -> CharMatcher {
    CharMatcher::Class {
        ranges: ranges.to_vec(),
        negated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_groups() {
        let (_, n) = parse(r"(a)(?:b)(c(d))").unwrap();
        assert_eq!(n, 3);
    }

    #[test]
    fn class_with_leading_bracket() {
        let (ast, _) = parse(r"[]]").unwrap();
        match ast {
            Ast::Char(m) => {
                assert!(m.matches(']'));
                assert!(!m.matches('a'));
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn dash_at_class_end_is_literal() {
        let (ast, _) = parse(r"[a-]").unwrap();
        match ast {
            Ast::Char(m) => {
                assert!(m.matches('a'));
                assert!(m.matches('-'));
                assert!(!m.matches('b'));
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn rejects_unbalanced() {
        assert!(parse("(a").is_err());
        assert!(parse("a)").is_err());
        assert!(parse("[a").is_err());
    }

    #[test]
    fn rejects_quantified_anchor() {
        assert!(parse("^*").is_err());
    }
}
