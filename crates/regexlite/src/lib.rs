//! # canvassing-regexlite
//!
//! A small backtracking regular-expression engine, implemented from
//! scratch for script-URL pattern attribution.
//!
//! The paper (Appendix A.3/A.4) attributes fingerprinting scripts to
//! vendors by matching their URLs against patterns — e.g. Imperva's
//! customers are identified with
//! `https?://(?:www\.)?[^/]+/([A-Za-z\-]+)`. This crate implements the
//! regex subset those patterns need:
//!
//! * literals, `.`, escapes (`\.`, `\/`, `\d`, `\w`, `\s`, `\D`, `\W`, `\S`)
//! * character classes `[a-z0-9\-]` and negated classes `[^/]`
//! * quantifiers `*`, `+`, `?` and bounded `{n}`, `{n,}`, `{n,m}` (greedy)
//! * grouping `(...)`, non-capturing `(?:...)`, alternation `|`
//! * anchors `^` and `$`
//!
//! Omitted (documented, per the project guide idiom): lazy quantifiers,
//! lookaround, backreferences, named groups, and Unicode classes. None of
//! the attribution patterns in the paper use them.
//!
//! Matching is plain recursive backtracking over `char`s with a global
//! step budget so pathological patterns cannot hang the pipeline.

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

mod matcher;
mod parser;

pub use matcher::Captures;
use parser::Ast;

/// A compiled regular expression.
#[derive(Debug, Clone)]
pub struct Regex {
    ast: Ast,
    pattern: String,
    n_groups: usize,
}

/// Error produced when a pattern fails to compile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the pattern where the error was detected.
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "regex parse error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for ParseError {}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex, ParseError> {
        let (ast, n_groups) = parser::parse(pattern)?;
        Ok(Regex {
            ast,
            pattern: pattern.to_string(),
            n_groups,
        })
    }

    /// The source pattern.
    pub fn as_str(&self) -> &str {
        &self.pattern
    }

    /// Number of capturing groups.
    pub fn capture_count(&self) -> usize {
        self.n_groups
    }

    /// Whether the pattern matches anywhere in `text`.
    pub fn is_match(&self, text: &str) -> bool {
        self.captures(text).is_some()
    }

    /// Returns the leftmost match as `(start, end)` byte offsets.
    pub fn find(&self, text: &str) -> Option<(usize, usize)> {
        self.captures(text).map(|c| c.full_range())
    }

    /// Returns the leftmost match with capture groups.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        matcher::search(&self.ast, self.n_groups, text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap_or_else(|e| panic!("pattern {p:?}: {e}"))
    }

    #[test]
    fn literal_match() {
        assert!(re("abc").is_match("xxabcxx"));
        assert!(!re("abc").is_match("ab"));
    }

    #[test]
    fn dot_matches_any_but_newline() {
        assert!(re("a.c").is_match("axc"));
        assert!(!re("a.c").is_match("a\nc"));
    }

    #[test]
    fn anchors() {
        assert!(re("^abc$").is_match("abc"));
        assert!(!re("^abc$").is_match("xabc"));
        assert!(!re("^abc$").is_match("abcx"));
        assert!(re("^ab").is_match("abc"));
        assert!(re("bc$").is_match("abc"));
    }

    #[test]
    fn star_backtracks() {
        assert!(re("a*ab").is_match("aaab"));
        assert_eq!(re("a*").find("aaab"), Some((0, 3)));
        assert_eq!(re("a*").find("bbb"), Some((0, 0)));
    }

    #[test]
    fn plus_and_question() {
        assert!(re("ab+c").is_match("abbbc"));
        assert!(!re("ab+c").is_match("ac"));
        assert!(re("ab?c").is_match("ac"));
        assert!(re("ab?c").is_match("abc"));
    }

    #[test]
    fn bounded_repetition() {
        assert!(re("a{3}").is_match("aaa"));
        assert!(!re("^a{3}$").is_match("aa"));
        assert!(re("^a{2,3}$").is_match("aa"));
        assert!(re("^a{2,3}$").is_match("aaa"));
        assert!(!re("^a{2,3}$").is_match("aaaa"));
        assert!(re("^a{2,}$").is_match("aaaaa"));
    }

    #[test]
    fn classes() {
        assert!(re("[abc]+").is_match("cab"));
        assert!(re("[a-z]+").is_match("hello"));
        assert!(!re("^[a-z]+$").is_match("Hello"));
        assert!(re("[^/]+").is_match("abc"));
        assert!(!re("^[^/]+$").is_match("a/b"));
        assert!(re(r"[A-Za-z\-]+").is_match("foo-Bar"));
    }

    #[test]
    fn escapes() {
        assert!(re(r"\d+").is_match("x42"));
        assert!(!re(r"^\d+$").is_match("4a2"));
        assert!(re(r"\w+").is_match("ab_9"));
        assert!(re(r"\s").is_match("a b"));
        assert!(re(r"a\.b").is_match("a.b"));
        assert!(!re(r"a\.b").is_match("axb"));
        assert!(re(r"\D").is_match("a"));
        assert!(!re(r"\D").is_match("5"));
    }

    #[test]
    fn alternation() {
        assert!(re("cat|dog").is_match("hotdog"));
        assert!(re("^(cat|dog)$").is_match("cat"));
        assert!(!re("^(cat|dog)$").is_match("cow"));
    }

    #[test]
    fn groups_capture() {
        let r = re(r"(\w+)@(\w+)\.com");
        let c = r.captures("mail me: alice@example.com please").unwrap();
        assert_eq!(c.get(1), Some("alice"));
        assert_eq!(c.get(2), Some("example"));
        assert_eq!(c.get(0), Some("alice@example.com"));
    }

    #[test]
    fn non_capturing_groups() {
        let r = re(r"(?:ab)+(c)");
        let c = r.captures("ababc").unwrap();
        assert_eq!(c.get(1), Some("c"));
        assert_eq!(r.capture_count(), 1);
    }

    #[test]
    fn imperva_pattern_from_the_paper() {
        // Appendix A.3: https?://(?:www\.)?[^/]+/([A-Za-z\-]+)
        let r = re(r"https?://(?:www\.)?[^/]+/([A-Za-z\-]+)");
        let c = r
            .captures("https://www.example-shop.com/SomePath-Here/x.js")
            .unwrap();
        assert_eq!(c.get(1), Some("SomePath-Here"));
        let c = r.captures("http://cdn.example.org/assets/app.js").unwrap();
        assert_eq!(c.get(1), Some("assets"));
        assert!(!r.is_match("ftp://example.org/path"));
    }

    #[test]
    fn leftmost_match_wins() {
        assert_eq!(re("a+").find("bbaaab"), Some((2, 5)));
    }

    #[test]
    fn empty_pattern_matches_empty() {
        assert!(re("").is_match(""));
        assert!(re("").is_match("anything"));
    }

    #[test]
    fn invalid_patterns_error() {
        for bad in ["(", ")", "[", "a{2,1}", "*a", "(?"] {
            assert!(Regex::new(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_text_is_handled() {
        assert!(re("é+").is_match("ééé"));
        assert!(re(".").is_match("日"));
        let c = re("(.)").captures("日本").unwrap();
        assert_eq!(c.get(1), Some("日"));
    }

    #[test]
    fn pathological_pattern_terminates() {
        // (a+)+$ against a long non-matching string: the step budget must
        // cut the search off rather than hanging.
        let r = re("(a+)+$");
        let text = "a".repeat(40) + "b";
        assert!(!r.is_match(&text));
    }

    #[cfg(test)]
    mod props {
        // The proptest stub swallows test bodies; imports look unused.
        #![allow(unused_imports)]
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn literal_patterns_match_themselves(s in "[a-z0-9]{1,20}") {
                let r = Regex::new(&s).unwrap();
                prop_assert!(r.is_match(&s));
                prop_assert_eq!(r.find(&s), Some((0, s.len())));
            }

            #[test]
            fn find_range_is_valid(pat in "[a-z.*+?]{1,8}", text in "[a-z]{0,24}") {
                if let Ok(r) = Regex::new(&pat) {
                    if let Some((s, e)) = r.find(&text) {
                        prop_assert!(s <= e && e <= text.len());
                        prop_assert!(text.is_char_boundary(s) && text.is_char_boundary(e));
                    }
                }
            }
        }
    }
}
