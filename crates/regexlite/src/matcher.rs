//! Backtracking matcher over the parsed AST.

use crate::parser::Ast;

/// Maximum number of matcher steps per search before giving up. Keeps
/// pathological patterns (catastrophic backtracking) from hanging the
/// measurement pipeline; the attribution patterns used in practice stay
/// far below this.
const STEP_BUDGET: u64 = 1_000_000;

/// Capture results for one match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    text: &'t str,
    /// Byte-offset slots: index 0 is the whole match.
    slots: Vec<Option<(usize, usize)>>,
}

impl<'t> Captures<'t> {
    /// The matched text of group `i` (0 = whole match).
    pub fn get(&self, i: usize) -> Option<&'t str> {
        let (s, e) = (*self.slots.get(i)?)?;
        self.text.get(s..e)
    }

    /// The byte range of the whole match. Slot 0 is filled whenever a
    /// `Match` is constructed; an empty range means a corrupted match.
    pub fn full_range(&self) -> (usize, usize) {
        self.slots.first().copied().flatten().unwrap_or((0, 0))
    }
}

struct State<'a> {
    text: &'a [char],
    /// Byte offset of each char index (length = chars + 1).
    byte_offsets: Vec<usize>,
    slots: Vec<Option<(usize, usize)>>,
    steps: u64,
}

/// Searches for the leftmost match of `ast` in `text`.
pub fn search<'t>(ast: &Ast, n_groups: usize, text: &'t str) -> Option<Captures<'t>> {
    let chars: Vec<char> = text.chars().collect();
    let mut byte_offsets = Vec::with_capacity(chars.len() + 1);
    let mut off = 0;
    for c in &chars {
        byte_offsets.push(off);
        off += c.len_utf8();
    }
    byte_offsets.push(off);

    for start in 0..=chars.len() {
        let mut state = State {
            text: &chars,
            byte_offsets,
            slots: vec![None; n_groups + 1],
            steps: 0,
        };
        let matched = match_ast(ast, start, &mut state, &mut |_state, _pos| true);
        if let Some(end) = matched {
            let mut slots = state.slots;
            slots[0] = Some((state.byte_offsets[start], state.byte_offsets[end]));
            return Some(Captures { text, slots });
        }
        byte_offsets = state.byte_offsets;
    }
    None
}

/// Continuation-passing matcher: tries to match `ast` at char position
/// `pos`; on success calls `k` with the end position. Returns the final
/// end position of the overall match when the continuation chain
/// succeeds.
fn match_ast(
    ast: &Ast,
    pos: usize,
    state: &mut State<'_>,
    k: &mut dyn FnMut(&mut State<'_>, usize) -> bool,
) -> Option<usize> {
    state.steps += 1;
    if state.steps > STEP_BUDGET {
        return None;
    }
    match ast {
        Ast::Empty => {
            if k(state, pos) {
                Some(pos)
            } else {
                None
            }
        }
        Ast::AnchorStart => {
            if pos == 0 && k(state, pos) {
                Some(pos)
            } else {
                None
            }
        }
        Ast::AnchorEnd => {
            if pos == state.text.len() && k(state, pos) {
                Some(pos)
            } else {
                None
            }
        }
        Ast::Char(m) => {
            if pos < state.text.len() && m.matches(state.text[pos]) && k(state, pos + 1) {
                Some(pos + 1)
            } else {
                None
            }
        }
        Ast::Concat(items) => match_seq(items, pos, state, k),
        Ast::Alt(branches) => {
            for b in branches {
                let saved = state.slots.clone();
                if let Some(end) = match_ast(b, pos, state, k) {
                    return Some(end);
                }
                state.slots = saved;
            }
            None
        }
        Ast::Group(idx, inner) => {
            let idx = *idx;
            let start_byte = state.byte_offsets[pos];
            let saved = state.slots.clone();
            let result = match_ast(inner, pos, state, &mut |st, end| {
                let prev = st.slots[idx];
                st.slots[idx] = Some((start_byte, st.byte_offsets[end]));
                if k(st, end) {
                    true
                } else {
                    st.slots[idx] = prev;
                    false
                }
            });
            if result.is_none() {
                state.slots = saved;
            }
            result
        }
        Ast::Repeat { inner, min, max } => match_repeat(inner, *min, *max, 0, pos, state, k),
    }
}

fn match_seq(
    items: &[Ast],
    pos: usize,
    state: &mut State<'_>,
    k: &mut dyn FnMut(&mut State<'_>, usize) -> bool,
) -> Option<usize> {
    match items.split_first() {
        None => {
            if k(state, pos) {
                Some(pos)
            } else {
                None
            }
        }
        Some((head, rest)) => {
            // Match head, then the rest, then the outer continuation.
            // We need the *final* end position, so track it via a cell.
            let mut final_end: Option<usize> = None;
            let ok = match_ast(head, pos, state, &mut |st, mid| {
                if let Some(end) = match_seq(rest, mid, st, k) {
                    final_end = Some(end);
                    true
                } else {
                    false
                }
            });
            if ok.is_some() {
                final_end
            } else {
                None
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn match_repeat(
    inner: &Ast,
    min: u32,
    max: Option<u32>,
    count: u32,
    pos: usize,
    state: &mut State<'_>,
    k: &mut dyn FnMut(&mut State<'_>, usize) -> bool,
) -> Option<usize> {
    state.steps += 1;
    if state.steps > STEP_BUDGET {
        return None;
    }
    let can_more = max.is_none_or(|m| count < m);
    // Greedy: try one more iteration first.
    if can_more {
        let mut final_end: Option<usize> = None;
        let saved = state.slots.clone();
        let ok = match_ast(inner, pos, state, &mut |st, mid| {
            // Zero-width progress guard: an empty iteration must not recurse
            // forever.
            if mid == pos {
                return false;
            }
            if let Some(end) = match_repeat(inner, min, max, count + 1, mid, st, k) {
                final_end = Some(end);
                true
            } else {
                false
            }
        });
        if ok.is_some() {
            return final_end;
        }
        state.slots = saved;
    }
    // Then fall back to stopping here (if the minimum is satisfied).
    if count >= min {
        if k(state, pos) {
            return Some(pos);
        }
        return None;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn run(pattern: &str, text: &str) -> Option<(usize, usize)> {
        let (ast, n) = parse(pattern).unwrap();
        search(&ast, n, text).map(|c| c.full_range())
    }

    #[test]
    fn greedy_star_takes_longest() {
        assert_eq!(run("a*", "aaa"), Some((0, 3)));
    }

    #[test]
    fn backtracks_to_satisfy_suffix() {
        assert_eq!(run("a*a", "aaa"), Some((0, 3)));
        assert_eq!(run(r"(a*)(a)", "aa"), Some((0, 2)));
    }

    #[test]
    fn captures_report_last_iteration() {
        let (ast, n) = parse(r"(ab)+").unwrap();
        let c = search(&ast, n, "ababab").unwrap();
        assert_eq!(c.get(0), Some("ababab"));
        assert_eq!(c.get(1), Some("ab"));
    }

    #[test]
    fn unmatched_group_is_none() {
        let (ast, n) = parse(r"a(b)?c").unwrap();
        let c = search(&ast, n, "ac").unwrap();
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn zero_width_star_does_not_hang() {
        assert_eq!(run("(?:a?)*b", "b"), Some((0, 1)));
    }

    #[test]
    fn byte_offsets_are_char_boundaries() {
        let (ast, n) = parse("本").unwrap();
        let c = search(&ast, n, "日本語").unwrap();
        assert_eq!(c.get(0), Some("本"));
        assert_eq!(c.full_range(), (3, 6));
    }
}
