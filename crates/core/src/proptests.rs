//! Property tests on the analysis invariants.

#![cfg(test)]
// The proptest stub expands test bodies to nothing, so strategy
// helpers and imports look unused to rustc.
#![allow(unused_imports, dead_code)]

use proptest::prelude::*;

use canvassing_net::{Party, Url};

use crate::cluster::{Clustering, OverlapStats};
use crate::detect::{FpCanvas, SiteDetection};
use crate::prevalence::Prevalence;

/// Random site detections: site index → list of canvas ids.
fn detections_strategy() -> impl Strategy<Value = Vec<SiteDetection>> {
    proptest::collection::vec(proptest::collection::vec(0u8..24, 0..5), 0..30).prop_map(|sites| {
        sites
            .into_iter()
            .enumerate()
            .map(|(i, canvases)| SiteDetection {
                site: format!("site{i}.example"),
                canvases: canvases
                    .into_iter()
                    .map(|cid| FpCanvas {
                        site: format!("site{i}.example"),
                        data_url: format!("data:canvas-{cid}"),
                        hash: cid as u64,
                        script_url: Url::https("s.example", "/f.js"),
                        inline: false,
                        party: Party::ThirdParty,
                        cname_cloaked: false,
                        cdn: false,
                        width: 100,
                        height: 100,
                    })
                    .collect(),
                excluded: vec![],
                double_render_check: false,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clustering conservation laws: every observation lands in exactly
    /// one cluster; distinct canvases = distinct clusters; cluster order
    /// is non-increasing by site count.
    #[test]
    fn clustering_invariants(detections in detections_strategy()) {
        let clustering = Clustering::build(detections.iter());
        let total_obs: usize = detections.iter().map(|d| d.canvases.len()).sum();
        let clustered_obs: usize = clustering.clusters.iter().map(|c| c.extractions).sum();
        prop_assert_eq!(total_obs, clustered_obs);

        let distinct: std::collections::BTreeSet<&str> = detections
            .iter()
            .flat_map(|d| d.canvases.iter().map(|c| c.data_url.as_str()))
            .collect();
        prop_assert_eq!(clustering.unique_canvases(), distinct.len());

        for pair in clustering.clusters.windows(2) {
            prop_assert!(pair[0].site_count() >= pair[1].site_count());
        }

        // Top-k coverage is monotone in k and bounded by the site total.
        let all = clustering.all_sites().len();
        let mut prev = 0;
        for k in 0..=clustering.unique_canvases() {
            let covered = clustering.sites_covered_by_top(k);
            prop_assert!(covered >= prev);
            prop_assert!(covered <= all);
            prev = covered;
        }
        prop_assert_eq!(prev, all);
    }

    /// Overlap stats: sharing fraction is a probability and tail-only
    /// cluster sizes sum to at most the tail site-observation count.
    #[test]
    fn overlap_invariants(
        popular in detections_strategy(),
        tail in detections_strategy(),
    ) {
        let pc = Clustering::build(popular.iter());
        let tc = Clustering::build(tail.iter());
        let o = OverlapStats::compute(&pc, &tc);
        let f = o.sharing_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(o.tail_sites_sharing <= o.tail_sites_total);
        for pair in o.tail_only_cluster_sizes.windows(2) {
            prop_assert!(pair[0] >= pair[1]);
        }
    }

    /// Prevalence bookkeeping: sites partition into fingerprinting,
    /// fully-excluded, and silent; extraction counts add up.
    #[test]
    fn prevalence_invariants(detections in detections_strategy()) {
        let attempted = detections.len() + 5;
        let p = Prevalence::compute(&detections, attempted);
        prop_assert_eq!(p.successes, detections.len());
        prop_assert!(p.fingerprinting_sites + p.fully_excluded_sites <= p.successes);
        prop_assert_eq!(
            p.total_extractions,
            p.fingerprintable_extractions
                + p.excluded_by_reason.0
                + p.excluded_by_reason.1
                + p.excluded_by_reason.2
        );
        let rate = p.fingerprinting_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        if p.fingerprinting_sites > 0 {
            prop_assert!(p.mean_canvases >= 1.0);
            prop_assert!(p.max_canvases >= p.median_canvases);
        }
    }
}
