//! Prevalence statistics (§4.1 and Appendix A.2).

use serde::{Deserialize, Serialize};

use crate::detect::{ExclusionReason, SiteDetection};

/// Cohort-level prevalence numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prevalence {
    /// Sites attempted.
    pub sites_crawled: usize,
    /// Sites crawled successfully.
    pub successes: usize,
    /// Sites with at least one fingerprintable canvas.
    pub fingerprinting_sites: usize,
    /// Sites with only excluded canvas activity (Appendix A.2).
    pub fully_excluded_sites: usize,
    /// All extractions observed (fingerprintable + excluded).
    pub total_extractions: usize,
    /// Fingerprintable extraction count.
    pub fingerprintable_extractions: usize,
    /// Excluded extraction counts per reason:
    /// (lossy, too-small, animation).
    pub excluded_by_reason: (usize, usize, usize),
    /// Sites with at least one lossy-format (WebP/JPEG) exclusion —
    /// superset of the paper's WebP-probe population.
    pub lossy_probe_sites: usize,
    /// Sites with at least one small-canvas exclusion.
    pub small_canvas_sites: usize,
    /// Mean fingerprintable canvases per fingerprinting site.
    pub mean_canvases: f64,
    /// Median fingerprintable canvases per fingerprinting site.
    pub median_canvases: usize,
    /// Maximum fingerprintable canvases on a single site.
    pub max_canvases: usize,
}

impl Prevalence {
    /// Fraction of successfully crawled sites that fingerprint
    /// (the paper's 12.7% / 9.9%).
    pub fn fingerprinting_rate(&self) -> f64 {
        if self.successes == 0 {
            return 0.0;
        }
        self.fingerprinting_sites as f64 / self.successes as f64
    }

    /// Fraction of all extractions that are fingerprintable (the paper's
    /// 83% across both cohorts).
    pub fn fingerprintable_fraction(&self) -> f64 {
        if self.total_extractions == 0 {
            return 0.0;
        }
        self.fingerprintable_extractions as f64 / self.total_extractions as f64
    }

    /// Computes prevalence from successful-site detections plus the
    /// attempted-site total.
    pub fn compute(detections: &[SiteDetection], sites_crawled: usize) -> Prevalence {
        let successes = detections.len();
        let mut p = Prevalence {
            sites_crawled,
            successes,
            fingerprinting_sites: 0,
            fully_excluded_sites: 0,
            total_extractions: 0,
            fingerprintable_extractions: 0,
            excluded_by_reason: (0, 0, 0),
            lossy_probe_sites: 0,
            small_canvas_sites: 0,
            mean_canvases: 0.0,
            median_canvases: 0,
            max_canvases: 0,
        };
        let mut per_site: Vec<usize> = Vec::new();
        for d in detections {
            p.total_extractions += d.canvases.len() + d.excluded.len();
            p.fingerprintable_extractions += d.canvases.len();
            if d.is_fingerprinting() {
                p.fingerprinting_sites += 1;
                per_site.push(d.canvases.len());
            } else if d.is_fully_excluded() {
                p.fully_excluded_sites += 1;
            }
            let mut lossy_here = false;
            let mut small_here = false;
            for (reason, _) in &d.excluded {
                match reason {
                    ExclusionReason::LossyFormat => {
                        p.excluded_by_reason.0 += 1;
                        lossy_here = true;
                    }
                    ExclusionReason::TooSmall => {
                        p.excluded_by_reason.1 += 1;
                        small_here = true;
                    }
                    ExclusionReason::AnimationScript => p.excluded_by_reason.2 += 1,
                }
            }
            if lossy_here {
                p.lossy_probe_sites += 1;
            }
            if small_here {
                p.small_canvas_sites += 1;
            }
        }
        if !per_site.is_empty() {
            per_site.sort_unstable();
            p.mean_canvases = per_site.iter().sum::<usize>() as f64 / per_site.len() as f64;
            p.median_canvases = per_site[per_site.len() / 2];
            p.max_canvases = per_site.last().copied().unwrap_or(0);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::FpCanvas;
    use canvassing_net::{Party, Url};

    fn fp_site(host: &str, n: usize) -> SiteDetection {
        SiteDetection {
            site: host.into(),
            canvases: (0..n)
                .map(|i| FpCanvas {
                    site: host.into(),
                    data_url: format!("data:{i}"),
                    hash: i as u64,
                    script_url: Url::https("s.net", "/f.js"),
                    inline: false,
                    party: Party::ThirdParty,
                    cname_cloaked: false,
                    cdn: false,
                    width: 100,
                    height: 100,
                })
                .collect(),
            excluded: vec![],
            double_render_check: false,
        }
    }

    fn excluded_site(host: &str, reason: ExclusionReason) -> SiteDetection {
        SiteDetection {
            site: host.into(),
            canvases: vec![],
            excluded: vec![(reason, "https://x.com/s.js".into())],
            double_render_check: false,
        }
    }

    #[test]
    fn rates_and_central_tendency() {
        let detections = vec![
            fp_site("a.com", 1),
            fp_site("b.com", 2),
            fp_site("c.com", 9),
            excluded_site("d.com", ExclusionReason::LossyFormat),
            SiteDetection::default(),
        ];
        let p = Prevalence::compute(&detections, 10);
        assert_eq!(p.sites_crawled, 10);
        assert_eq!(p.successes, 5);
        assert_eq!(p.fingerprinting_sites, 3);
        assert_eq!(p.fully_excluded_sites, 1);
        assert!((p.fingerprinting_rate() - 0.6).abs() < 1e-9);
        assert!((p.mean_canvases - 4.0).abs() < 1e-9);
        assert_eq!(p.median_canvases, 2);
        assert_eq!(p.max_canvases, 9);
        assert_eq!(p.excluded_by_reason.0, 1);
        assert_eq!(p.lossy_probe_sites, 1);
    }

    #[test]
    fn fingerprintable_fraction() {
        let detections = vec![
            fp_site("a.com", 4),
            excluded_site("d.com", ExclusionReason::TooSmall),
        ];
        let p = Prevalence::compute(&detections, 2);
        assert!((p.fingerprintable_fraction() - 0.8).abs() < 1e-9);
        assert_eq!(p.small_canvas_sites, 1);
    }

    #[test]
    fn empty_cohort_is_all_zeroes() {
        let p = Prevalence::compute(&[], 0);
        assert_eq!(p.fingerprinting_rate(), 0.0);
        assert_eq!(p.fingerprintable_fraction(), 0.0);
    }
}
