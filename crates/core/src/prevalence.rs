//! Prevalence statistics (§4.1 and Appendix A.2).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::detect::{ExclusionReason, SiteDetection};

/// Cohort-level prevalence numbers.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prevalence {
    /// Sites attempted.
    pub sites_crawled: usize,
    /// Sites crawled successfully.
    pub successes: usize,
    /// Sites with at least one fingerprintable canvas.
    pub fingerprinting_sites: usize,
    /// Sites with only excluded canvas activity (Appendix A.2).
    pub fully_excluded_sites: usize,
    /// All extractions observed (fingerprintable + excluded).
    pub total_extractions: usize,
    /// Fingerprintable extraction count.
    pub fingerprintable_extractions: usize,
    /// Excluded extraction counts per reason:
    /// (lossy, too-small, animation).
    pub excluded_by_reason: (usize, usize, usize),
    /// Sites with at least one lossy-format (WebP/JPEG) exclusion —
    /// superset of the paper's WebP-probe population.
    pub lossy_probe_sites: usize,
    /// Sites with at least one small-canvas exclusion.
    pub small_canvas_sites: usize,
    /// Mean fingerprintable canvases per fingerprinting site.
    pub mean_canvases: f64,
    /// Median fingerprintable canvases per fingerprinting site.
    pub median_canvases: usize,
    /// Maximum fingerprintable canvases on a single site.
    pub max_canvases: usize,
}

impl Prevalence {
    /// Fraction of successfully crawled sites that fingerprint
    /// (the paper's 12.7% / 9.9%).
    pub fn fingerprinting_rate(&self) -> f64 {
        if self.successes == 0 {
            return 0.0;
        }
        self.fingerprinting_sites as f64 / self.successes as f64
    }

    /// Fraction of all extractions that are fingerprintable (the paper's
    /// 83% across both cohorts).
    pub fn fingerprintable_fraction(&self) -> f64 {
        if self.total_extractions == 0 {
            return 0.0;
        }
        self.fingerprintable_extractions as f64 / self.total_extractions as f64
    }

    /// Computes prevalence from successful-site detections plus the
    /// attempted-site total.
    pub fn compute(detections: &[SiteDetection], sites_crawled: usize) -> Prevalence {
        let mut acc = PrevalenceAccumulator::default();
        for d in detections {
            acc.absorb(d);
        }
        acc.finish(sites_crawled)
    }
}

/// Streaming fold for [`Prevalence`]: absorbs one detection at a time,
/// merges with sibling accumulators in any order, and finishes into the
/// exact batch result. The per-fingerprinting-site canvas counts are held
/// as a histogram (count → sites), so memory is bounded by the number of
/// *distinct* canvas counts, not the number of sites.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct PrevalenceAccumulator {
    successes: usize,
    fingerprinting_sites: usize,
    fully_excluded_sites: usize,
    total_extractions: usize,
    fingerprintable_extractions: usize,
    excluded_by_reason: (usize, usize, usize),
    lossy_probe_sites: usize,
    small_canvas_sites: usize,
    /// Canvases-per-fingerprinting-site histogram: canvas count → sites.
    canvas_histogram: BTreeMap<usize, usize>,
}

impl PrevalenceAccumulator {
    /// Folds one successful-site detection into the accumulator.
    pub fn absorb(&mut self, d: &SiteDetection) {
        self.successes += 1;
        self.total_extractions += d.canvases.len() + d.excluded.len();
        self.fingerprintable_extractions += d.canvases.len();
        if d.is_fingerprinting() {
            self.fingerprinting_sites += 1;
            *self.canvas_histogram.entry(d.canvases.len()).or_insert(0) += 1;
        } else if d.is_fully_excluded() {
            self.fully_excluded_sites += 1;
        }
        let mut lossy_here = false;
        let mut small_here = false;
        for (reason, _) in &d.excluded {
            match reason {
                ExclusionReason::LossyFormat => {
                    self.excluded_by_reason.0 += 1;
                    lossy_here = true;
                }
                ExclusionReason::TooSmall => {
                    self.excluded_by_reason.1 += 1;
                    small_here = true;
                }
                ExclusionReason::AnimationScript => self.excluded_by_reason.2 += 1,
            }
        }
        if lossy_here {
            self.lossy_probe_sites += 1;
        }
        if small_here {
            self.small_canvas_sites += 1;
        }
    }

    /// Merges a sibling accumulator (e.g. from another frontier shard).
    pub fn merge(&mut self, other: &PrevalenceAccumulator) {
        self.successes += other.successes;
        self.fingerprinting_sites += other.fingerprinting_sites;
        self.fully_excluded_sites += other.fully_excluded_sites;
        self.total_extractions += other.total_extractions;
        self.fingerprintable_extractions += other.fingerprintable_extractions;
        self.excluded_by_reason.0 += other.excluded_by_reason.0;
        self.excluded_by_reason.1 += other.excluded_by_reason.1;
        self.excluded_by_reason.2 += other.excluded_by_reason.2;
        self.lossy_probe_sites += other.lossy_probe_sites;
        self.small_canvas_sites += other.small_canvas_sites;
        for (&count, &sites) in &other.canvas_histogram {
            *self.canvas_histogram.entry(count).or_insert(0) += sites;
        }
    }

    /// Finalizes into [`Prevalence`]. The mean is the exact integer sum
    /// Σ(count·sites) divided once, and the median walks the histogram to
    /// zero-based index `len/2` — both byte-identical to sorting the full
    /// per-site vector as the batch path used to.
    pub fn finish(&self, sites_crawled: usize) -> Prevalence {
        let mut p = Prevalence {
            sites_crawled,
            successes: self.successes,
            fingerprinting_sites: self.fingerprinting_sites,
            fully_excluded_sites: self.fully_excluded_sites,
            total_extractions: self.total_extractions,
            fingerprintable_extractions: self.fingerprintable_extractions,
            excluded_by_reason: self.excluded_by_reason,
            lossy_probe_sites: self.lossy_probe_sites,
            small_canvas_sites: self.small_canvas_sites,
            mean_canvases: 0.0,
            median_canvases: 0,
            max_canvases: 0,
        };
        let len: usize = self.canvas_histogram.values().sum();
        if len > 0 {
            let total: usize = self
                .canvas_histogram
                .iter()
                .map(|(&count, &sites)| count * sites)
                .sum();
            p.mean_canvases = total as f64 / len as f64;
            let mut cumulative = 0;
            for (&count, &sites) in &self.canvas_histogram {
                cumulative += sites;
                if cumulative > len / 2 {
                    p.median_canvases = count;
                    break;
                }
            }
            p.max_canvases = self
                .canvas_histogram
                .keys()
                .next_back()
                .copied()
                .unwrap_or(0);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::FpCanvas;
    use canvassing_net::{Party, Url};

    fn fp_site(host: &str, n: usize) -> SiteDetection {
        SiteDetection {
            site: host.into(),
            canvases: (0..n)
                .map(|i| FpCanvas {
                    site: host.into(),
                    data_url: format!("data:{i}"),
                    hash: i as u64,
                    script_url: Url::https("s.net", "/f.js"),
                    inline: false,
                    party: Party::ThirdParty,
                    cname_cloaked: false,
                    cdn: false,
                    width: 100,
                    height: 100,
                })
                .collect(),
            excluded: vec![],
            double_render_check: false,
        }
    }

    fn excluded_site(host: &str, reason: ExclusionReason) -> SiteDetection {
        SiteDetection {
            site: host.into(),
            canvases: vec![],
            excluded: vec![(reason, "https://x.com/s.js".into())],
            double_render_check: false,
        }
    }

    #[test]
    fn rates_and_central_tendency() {
        let detections = vec![
            fp_site("a.com", 1),
            fp_site("b.com", 2),
            fp_site("c.com", 9),
            excluded_site("d.com", ExclusionReason::LossyFormat),
            SiteDetection::default(),
        ];
        let p = Prevalence::compute(&detections, 10);
        assert_eq!(p.sites_crawled, 10);
        assert_eq!(p.successes, 5);
        assert_eq!(p.fingerprinting_sites, 3);
        assert_eq!(p.fully_excluded_sites, 1);
        assert!((p.fingerprinting_rate() - 0.6).abs() < 1e-9);
        assert!((p.mean_canvases - 4.0).abs() < 1e-9);
        assert_eq!(p.median_canvases, 2);
        assert_eq!(p.max_canvases, 9);
        assert_eq!(p.excluded_by_reason.0, 1);
        assert_eq!(p.lossy_probe_sites, 1);
    }

    #[test]
    fn fingerprintable_fraction() {
        let detections = vec![
            fp_site("a.com", 4),
            excluded_site("d.com", ExclusionReason::TooSmall),
        ];
        let p = Prevalence::compute(&detections, 2);
        assert!((p.fingerprintable_fraction() - 0.8).abs() < 1e-9);
        assert_eq!(p.small_canvas_sites, 1);
    }

    #[test]
    fn empty_cohort_is_all_zeroes() {
        let p = Prevalence::compute(&[], 0);
        assert_eq!(p.fingerprinting_rate(), 0.0);
        assert_eq!(p.fingerprintable_fraction(), 0.0);
    }

    #[test]
    fn accumulator_merge_matches_batch_compute() {
        let detections = vec![
            fp_site("a.com", 1),
            fp_site("b.com", 2),
            fp_site("c.com", 9),
            fp_site("e.com", 2),
            excluded_site("d.com", ExclusionReason::LossyFormat),
            excluded_site("f.com", ExclusionReason::TooSmall),
            SiteDetection::default(),
        ];
        let batch = Prevalence::compute(&detections, 12);
        // Split across two shards, absorb in reversed order, then merge.
        let (left, right) = detections.split_at(3);
        let mut a = PrevalenceAccumulator::default();
        for d in left.iter().rev() {
            a.absorb(d);
        }
        let mut b = PrevalenceAccumulator::default();
        for d in right.iter().rev() {
            b.absorb(d);
        }
        b.merge(&a);
        let merged = b.finish(12);
        assert_eq!(
            serde_json::to_string(&merged).unwrap(),
            serde_json::to_string(&batch).unwrap()
        );
    }
}
