//! Fingerprintable-canvas detection (§3.2).
//!
//! Every `toDataURL` extraction is judged against the paper's three
//! heuristics, adapted from Englehardt & Narayanan (2016):
//!
//! 1. **lossy format** — JPEG/WebP extractions cannot carry the sub-pixel
//!    detail fingerprinting needs, and excluding WebP also removes WebP
//!    compatibility probes;
//! 2. **small canvas** — anything under 16×16 px lacks entropy (and this
//!    conveniently removes emoji probes and tiny badges);
//! 3. **animation script** — extractions by scripts that also invoke
//!    animation-associated methods (`save`, `restore`) are drawing UI,
//!    not test canvases.

use canvassing_browser::PageVisit;
use canvassing_dom::{ApiInterface, CallKind};
use canvassing_net::{classify_party, is_popular_cdn, Party, Url};
use serde::{Deserialize, Serialize};

/// Why an extraction was excluded from the fingerprintable set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExclusionReason {
    /// Extracted as JPEG or WebP.
    LossyFormat,
    /// Smaller than 16×16 pixels.
    TooSmall,
    /// The extracting script also called animation-associated methods.
    AnimationScript,
}

/// Methods whose use marks a script as animating rather than
/// fingerprinting ("save, restore, etc." — §3.2).
const ANIMATION_METHODS: &[&str] = &["save", "restore"];

/// Minimum edge length for a fingerprintable canvas.
pub const MIN_CANVAS_EDGE: u32 = 16;

/// One fingerprintable canvas observation on one site.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FpCanvas {
    /// Host of the page the canvas was extracted on.
    pub site: String,
    /// The full data URL (the clustering key).
    pub data_url: String,
    /// Stable content hash of the data URL.
    pub hash: u64,
    /// URL of the extracting script (page URL for bundled code).
    pub script_url: Url,
    /// Whether the script was inline/bundled first-party code.
    pub inline: bool,
    /// Party of the script relative to the page.
    pub party: Party,
    /// Whether the script's host CNAME-resolves off-site.
    pub cname_cloaked: bool,
    /// Whether the script was served from an Appendix A.5 CDN.
    pub cdn: bool,
    /// Canvas dimensions at extraction.
    pub width: u32,
    /// Canvas height at extraction.
    pub height: u32,
}

/// Detection output for one visited page.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SiteDetection {
    /// Page host.
    pub site: String,
    /// Fingerprintable canvases (may repeat a data URL when a script
    /// performs the double-render check).
    pub canvases: Vec<FpCanvas>,
    /// Excluded extractions with reasons.
    pub excluded: Vec<(ExclusionReason, String)>,
    /// Whether at least one identical canvas was extracted twice — the
    /// §5.3 randomization-detection signature.
    pub double_render_check: bool,
}

impl SiteDetection {
    /// Whether the site rendered at least one fingerprintable canvas.
    pub fn is_fingerprinting(&self) -> bool {
        !self.canvases.is_empty()
    }

    /// Whether the site only had excluded (benign) canvas activity —
    /// the Appendix A.2 "fully excluded" population.
    pub fn is_fully_excluded(&self) -> bool {
        self.canvases.is_empty() && !self.excluded.is_empty()
    }

    /// Distinct fingerprintable data URLs on this site.
    pub fn unique_canvases(&self) -> std::collections::BTreeSet<&str> {
        self.canvases.iter().map(|c| c.data_url.as_str()).collect()
    }
}

/// Judges every extraction of a visit against the three heuristics.
pub fn detect(visit: &PageVisit) -> SiteDetection {
    // Scripts (by attributed URL) that invoked animation methods.
    let mut animating: std::collections::BTreeSet<&str> = Default::default();
    for call in &visit.api_calls {
        if call.interface == ApiInterface::Context2D
            && call.kind == CallKind::Method
            && ANIMATION_METHODS.contains(&call.name.as_str())
        {
            animating.insert(call.script_url.as_str());
        }
    }

    // Script metadata lookup by attributed URL.
    let script_info = |url_str: &str| -> (bool, bool) {
        // returns (inline, cname_cloaked)
        for s in &visit.scripts {
            if s.url.to_string() == url_str {
                return (s.inline, s.cname_cloaked);
            }
        }
        (false, false)
    };

    let page_str = visit.page.to_string();
    let mut out = SiteDetection {
        site: visit.page.host.clone(),
        ..SiteDetection::default()
    };

    for e in &visit.extractions {
        let verdict = if e.mime != "image/png" {
            Err(ExclusionReason::LossyFormat)
        } else if e.width < MIN_CANVAS_EDGE || e.height < MIN_CANVAS_EDGE {
            Err(ExclusionReason::TooSmall)
        } else if animating.contains(e.script_url.as_str()) {
            Err(ExclusionReason::AnimationScript)
        } else {
            Ok(())
        };
        match verdict {
            Err(reason) => out.excluded.push((reason, e.script_url.clone())),
            Ok(()) => {
                let script_url = Url::parse(&e.script_url).unwrap_or_else(|_| visit.page.clone());
                let (mut inline, cloaked) = script_info(&e.script_url);
                if e.script_url == page_str {
                    inline = true;
                }
                let party = if inline {
                    Party::FirstParty
                } else {
                    classify_party(&visit.page, &script_url)
                };
                out.canvases.push(FpCanvas {
                    site: visit.page.host.clone(),
                    hash: canvassing_raster::content_hash(e.data_url.as_bytes()),
                    data_url: e.data_url.clone(),
                    cdn: !inline && is_popular_cdn(&script_url.host),
                    script_url,
                    inline,
                    party,
                    cname_cloaked: cloaked,
                    width: e.width,
                    height: e.height,
                });
            }
        }
    }

    // Double-render signature: an identical fingerprintable canvas
    // extracted at least twice on this page.
    let mut counts: std::collections::BTreeMap<&str, usize> = Default::default();
    for c in &out.canvases {
        *counts.entry(c.data_url.as_str()).or_default() += 1;
    }
    out.double_render_check = counts.values().any(|&n| n >= 2);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_browser::Browser;
    use canvassing_net::{Network, PageResource, Resource, ScriptRef, ScriptResource};
    use canvassing_raster::DeviceProfile;

    fn run(source: &str) -> SiteDetection {
        let mut network = Network::new();
        let script_url = Url::https("scripts.example.net", "/s.js");
        network.host(
            &script_url,
            Resource::Script(ScriptResource {
                source: source.to_string(),
                label: "t".into(),
            }),
        );
        network.host(
            &Url::https("page.com", "/"),
            Resource::Page(PageResource {
                scripts: vec![ScriptRef::External(script_url)],
                consent_banner: false,
                bot_check: false,
            }),
        );
        let visit = Browser::new(DeviceProfile::intel_ubuntu())
            .visit(&network, &Url::https("page.com", "/"))
            .unwrap();
        detect(&visit)
    }

    #[test]
    fn plain_png_extraction_is_fingerprintable() {
        let d = run(r##"
            let c = document.createElement("canvas");
            c.width = 100; c.height = 30;
            let x = c.getContext("2d");
            x.fillStyle = "#069";
            x.fillText("probe", 2, 12);
            c.toDataURL();
        "##);
        assert!(d.is_fingerprinting());
        assert_eq!(d.canvases.len(), 1);
        assert!(d.excluded.is_empty());
        assert!(!d.double_render_check);
        assert_eq!(d.canvases[0].party, Party::ThirdParty);
    }

    #[test]
    fn webp_extraction_is_excluded_as_lossy() {
        let d = run(r#"
            let c = document.createElement("canvas");
            c.toDataURL("image/webp");
        "#);
        assert!(!d.is_fingerprinting());
        assert!(d.is_fully_excluded());
        assert_eq!(d.excluded[0].0, ExclusionReason::LossyFormat);
    }

    #[test]
    fn jpeg_extraction_is_excluded_as_lossy() {
        let d = run(r#"
            let c = document.createElement("canvas");
            c.width = 300; c.height = 200;
            c.toDataURL("image/jpeg", 0.8);
        "#);
        assert_eq!(d.excluded[0].0, ExclusionReason::LossyFormat);
    }

    #[test]
    fn small_canvas_is_excluded() {
        let d = run(r#"
            let c = document.createElement("canvas");
            c.width = 12; c.height = 12;
            let x = c.getContext("2d");
            x.fillStyle = "red";
            x.fillRect(0, 0, 12, 12);
            c.toDataURL();
        "#);
        assert_eq!(d.excluded[0].0, ExclusionReason::TooSmall);
        // 15x300 also fails (either edge).
        let d = run(r#"
            let c = document.createElement("canvas");
            c.width = 15; c.height = 300;
            c.toDataURL();
        "#);
        assert_eq!(d.excluded[0].0, ExclusionReason::TooSmall);
    }

    #[test]
    fn sixteen_square_is_large_enough() {
        let d = run(r#"
            let c = document.createElement("canvas");
            c.width = 16; c.height = 16;
            c.toDataURL();
        "#);
        assert!(d.is_fingerprinting());
    }

    #[test]
    fn animating_script_is_excluded() {
        let d = run(r#"
            let c = document.createElement("canvas");
            c.width = 300; c.height = 150;
            let x = c.getContext("2d");
            x.save();
            x.translate(10, 10);
            x.fillRect(0, 0, 20, 20);
            x.restore();
            c.toDataURL();
        "#);
        assert_eq!(d.excluded[0].0, ExclusionReason::AnimationScript);
    }

    #[test]
    fn double_render_is_flagged() {
        let d = run(r#"
            fn render() {
                let c = document.createElement("canvas");
                c.width = 40; c.height = 20;
                let x = c.getContext("2d");
                x.fillStyle = "teal";
                x.fillRect(0, 0, 40, 20);
                return c.toDataURL();
            }
            let a = render();
            let b = render();
        "#);
        assert!(d.double_render_check);
        assert_eq!(d.canvases.len(), 2);
        assert_eq!(d.unique_canvases().len(), 1);
    }

    #[test]
    fn fingerprintable_fraction_is_tracked_per_reason() {
        let d = run(r#"
            let c = document.createElement("canvas");
            c.width = 100; c.height = 100;
            c.toDataURL();
            c.toDataURL("image/webp");
        "#);
        assert_eq!(d.canvases.len(), 1);
        assert_eq!(d.excluded.len(), 1);
        assert!(!d.is_fully_excluded());
    }
}
