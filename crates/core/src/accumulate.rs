//! Constant-memory cohort aggregation: the streaming counterpart of
//! [`analyze_cohort`](crate::study::analyze_cohort).
//!
//! The batch path materializes every [`SiteRecord`] before computing the
//! cohort's statistics — at scale 25.0 (1M sites) that is gigabytes of
//! visit data held live. [`CohortAccumulator`] folds each record into
//! bounded state as it streams off the scheduler instead:
//!
//! * prevalence scalars plus a canvases-per-site **histogram** (not the
//!   per-site vector);
//! * a mergeable cluster map keyed by canvas bytes;
//! * evasion / blocklist-coverage counters;
//! * the static-vs-dynamic vote map keyed by unique script body;
//! * fidelity-tier bias accounting;
//! * only the **fingerprinting-site** detections are retained (for
//!   attribution and Table 2), keyed by site — roughly a tenth of the
//!   stream, carrying canvases rather than full visits.
//!
//! `absorb` is associative and commutative up to the record stream being
//! a set of distinct sites: any fold order and any shard partition merge
//! to the same state (gated by the seeded sweep below and by
//! `tests/streaming_equivalence.rs` at study level).

use std::collections::BTreeMap;

use canvassing_blocklist::{DisconnectList, FilterList};
use canvassing_crawler::{CrawlStats, FailureKind, SiteOutcome, SiteRecord};
use canvassing_webgen::Cohort;
use serde::{Deserialize, Serialize};

use crate::bias::BiasAccounting;
use crate::blocklist_coverage::CoverageCounts;
use crate::cluster::ClusterAccumulator;
use crate::detect::{detect, SiteDetection};
use crate::evasion::EvasionStats;
use crate::prevalence::PrevalenceAccumulator;
use crate::study::CohortAnalysis;
use crate::validation::{BytecodeTriageStats, ScriptVotes};

/// Streaming cohort state: everything [`CohortAnalysis`] needs, foldable
/// one record at a time and mergeable across frontier shards.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CohortAccumulator {
    attempted: usize,
    failures: BTreeMap<FailureKind, usize>,
    prevalence: PrevalenceAccumulator,
    clusters: ClusterAccumulator,
    evasion: EvasionStats,
    coverage: CoverageCounts,
    votes: ScriptVotes,
    bias: BiasAccounting,
    /// Fingerprinting-site detections, keyed by site. Downstream
    /// consumers of `CohortAnalysis::detections` (attribution, Table 2
    /// counts) are insensitive to both this projection (non-fingerprinting
    /// detections carry no canvases) and the site ordering.
    retained: BTreeMap<String, SiteDetection>,
}

impl Default for CohortAccumulator {
    fn default() -> Self {
        CohortAccumulator::new()
    }
}

impl CohortAccumulator {
    /// An empty accumulator (fidelity tiers pre-zeroed).
    pub fn new() -> CohortAccumulator {
        CohortAccumulator {
            attempted: 0,
            failures: BTreeMap::new(),
            prevalence: PrevalenceAccumulator::default(),
            clusters: ClusterAccumulator::default(),
            evasion: EvasionStats::default(),
            coverage: CoverageCounts::default(),
            votes: ScriptVotes::default(),
            bias: BiasAccounting::empty(),
            retained: BTreeMap::new(),
        }
    }

    /// Folds one site record into the cohort state. The record can be
    /// dropped immediately afterwards — nothing keeps a reference.
    pub fn absorb(
        &mut self,
        record: &SiteRecord,
        easylist: &FilterList,
        easyprivacy: &FilterList,
        disconnect: &DisconnectList,
    ) {
        self.attempted += 1;
        match &record.outcome {
            SiteOutcome::Success(visit) => {
                let det = detect(visit);
                self.prevalence.absorb(&det);
                self.clusters.absorb(&det);
                self.evasion.absorb(&det);
                self.coverage
                    .absorb(&det, easylist, easyprivacy, disconnect);
                self.votes.absorb(visit, &det);
                self.bias.absorb(record, Some(&det));
                if det.is_fingerprinting() {
                    self.retained.insert(det.site.clone(), det);
                }
            }
            SiteOutcome::Failure(failure) => {
                *self.failures.entry(failure.kind).or_insert(0) += 1;
                self.bias.absorb(record, None);
            }
        }
    }

    /// Merges a sibling accumulator built over a disjoint frontier shard.
    /// Merge order never changes the result: every component is either a
    /// sum or a keyed union.
    pub fn merge(&mut self, other: &CohortAccumulator) {
        self.attempted += other.attempted;
        for (&kind, &n) in &other.failures {
            *self.failures.entry(kind).or_insert(0) += n;
        }
        self.prevalence.merge(&other.prevalence);
        self.clusters.merge(&other.clusters);
        self.evasion.merge(&other.evasion);
        self.coverage.merge(&other.coverage);
        self.votes.merge(&other.votes);
        self.bias.merge(&other.bias);
        for (site, det) in &other.retained {
            self.retained.insert(site.clone(), det.clone());
        }
    }

    /// Records absorbed so far.
    pub fn attempted(&self) -> usize {
        self.attempted
    }

    /// Finalizes into a [`CohortAnalysis`]. `perf` and `bytecode` are
    /// zeroed — they come from the crawl scheduler and the corpus pass,
    /// not the record stream — and `detections` holds the retained
    /// fingerprinting-site projection in site order.
    pub fn finish(&self, cohort: Cohort) -> CohortAnalysis {
        CohortAnalysis {
            cohort,
            attempted: self.attempted,
            detections: self.retained.values().cloned().collect(),
            clustering: self.clusters.finish(),
            prevalence: self.prevalence.finish(self.attempted),
            evasion: self.evasion.clone(),
            coverage: self.coverage.clone(),
            failures: self.failures.clone(),
            bias: self.bias.clone(),
            static_dynamic: self.votes.finish(),
            perf: CrawlStats::default(),
            bytecode: BytecodeTriageStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::study::analyze_cohort;
    use canvassing_crawler::{crawl, CrawlConfig, CrawlDataset, RetryPolicy};
    use canvassing_net::FaultMatrix;
    use canvassing_webgen::{SyntheticWeb, WebConfig};

    /// Deterministic 64-bit LCG (Knuth MMIX constants) so the sweep
    /// replays exactly from its literal seed.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 16
        }

        fn below(&mut self, bound: usize) -> usize {
            (self.next() % bound as u64) as usize
        }
    }

    /// A record pool with the full outcome mix: successes (some
    /// fingerprinting), typed failures, and salvaged visits.
    fn record_pool() -> (SyntheticWeb, Vec<SiteRecord>, CrawlConfig) {
        let mut web = SyntheticWeb::generate(WebConfig {
            seed: 11,
            scale: 0.02,
        });
        let mut frontier = web.frontier(Cohort::Popular);
        frontier.truncate(72);
        let targets: Vec<String> = frontier
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(_, u)| u.host.clone())
            .collect();
        FaultMatrix::new(7).inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));
        let mut config = CrawlConfig::control();
        config.workers = 4;
        config.retry = RetryPolicy::retries(1);
        let dataset = crawl(&web.network, &frontier, &config);
        (web, dataset.records, config)
    }

    fn absorb_all(records: &[&SiteRecord], web: &SyntheticWeb) -> CohortAccumulator {
        let easylist = FilterList::parse("EasyList", &web.lists.easylist);
        let easyprivacy = FilterList::parse("EasyPrivacy", &web.lists.easyprivacy);
        let disconnect = DisconnectList::parse(&web.lists.disconnect);
        let mut acc = CohortAccumulator::new();
        for r in records {
            acc.absorb(r, &easylist, &easyprivacy, &disconnect);
        }
        acc
    }

    fn fingerprint(acc: &CohortAccumulator) -> String {
        serde_json::to_string(&acc.finish(Cohort::Popular)).unwrap()
    }

    /// The accumulator reproduces the batch `analyze_cohort` output
    /// exactly, apart from `detections` holding only the fingerprinting
    /// sites (compared here as a set against the batch projection).
    #[test]
    fn finish_matches_batch_analyze_cohort() {
        let (web, records, config) = record_pool();
        let easylist = FilterList::parse("EasyList", &web.lists.easylist);
        let easyprivacy = FilterList::parse("EasyPrivacy", &web.lists.easyprivacy);
        let disconnect = DisconnectList::parse(&web.lists.disconnect);
        let dataset = CrawlDataset {
            label: config.label.clone(),
            device_id: config.device.id.clone(),
            records: records.clone(),
        };
        let batch = analyze_cohort(
            Cohort::Popular,
            &dataset,
            &easylist,
            &easyprivacy,
            &disconnect,
        );
        let refs: Vec<&SiteRecord> = records.iter().collect();
        let streamed = absorb_all(&refs, &web).finish(Cohort::Popular);

        assert_eq!(streamed.attempted, batch.attempted);
        // Component-wise equality via JSON (no PartialEq on the structs).
        let eq = |a: &str, b: &str, what: &str| assert_eq!(a, b, "{what} diverged");
        eq(
            &serde_json::to_string(&streamed.clustering).unwrap(),
            &serde_json::to_string(&batch.clustering).unwrap(),
            "clustering",
        );
        eq(
            &serde_json::to_string(&streamed.prevalence).unwrap(),
            &serde_json::to_string(&batch.prevalence).unwrap(),
            "prevalence",
        );
        eq(
            &serde_json::to_string(&streamed.evasion).unwrap(),
            &serde_json::to_string(&batch.evasion).unwrap(),
            "evasion",
        );
        eq(
            &serde_json::to_string(&streamed.coverage).unwrap(),
            &serde_json::to_string(&batch.coverage).unwrap(),
            "coverage",
        );
        eq(
            &serde_json::to_string(&streamed.failures).unwrap(),
            &serde_json::to_string(&batch.failures).unwrap(),
            "failures",
        );
        eq(
            &serde_json::to_string(&streamed.bias).unwrap(),
            &serde_json::to_string(&batch.bias).unwrap(),
            "bias",
        );
        assert_eq!(streamed.static_dynamic, batch.static_dynamic);
        // Retained detections = the batch detections that fingerprint,
        // as a site-keyed set.
        let batch_fp: BTreeMap<String, String> = batch
            .detections
            .iter()
            .filter(|d| d.is_fingerprinting())
            .map(|d| (d.site.clone(), serde_json::to_string(d).unwrap()))
            .collect();
        let streamed_fp: BTreeMap<String, String> = streamed
            .detections
            .iter()
            .map(|d| (d.site.clone(), serde_json::to_string(d).unwrap()))
            .collect();
        assert_eq!(streamed_fp, batch_fp);
        assert!(!streamed_fp.is_empty(), "pool has fingerprinting sites");
    }

    /// Satellite property sweep (hand-rolled: the environment ships a
    /// no-op `proptest` stub): 400 seeded cases asserting that absorb
    /// order and shard-partition choice never change the merged state —
    /// the associativity/commutativity contract the sharded streaming
    /// path relies on.
    #[test]
    fn fold_order_and_shard_partition_never_change_merged_state() {
        let (web, pool, _config) = record_pool();
        assert!(pool.len() >= 60, "pool of {} records", pool.len());
        let mut rng = Lcg(0x5EED_CA5E);
        for case in 0..400 {
            // Random subset (distinct sites, random size ≥ 1).
            let size = 1 + rng.below(pool.len());
            let mut picked: Vec<usize> = (0..pool.len()).collect();
            // Fisher–Yates prefix shuffle to pick `size` distinct indices.
            for i in 0..size {
                let j = i + rng.below(picked.len() - i);
                picked.swap(i, j);
            }
            let subset: Vec<&SiteRecord> = picked[..size].iter().map(|&i| &pool[i]).collect();

            let reference = fingerprint(&absorb_all(&subset, &web));

            // (1) Commutativity: a random permutation absorbs to the
            // same state.
            let mut permuted = subset.clone();
            for i in (1..permuted.len()).rev() {
                let j = rng.below(i + 1);
                permuted.swap(i, j);
            }
            let shuffled = fingerprint(&absorb_all(&permuted, &web));
            assert_eq!(
                shuffled, reference,
                "case {case}: permutation changed state"
            );

            // (2) Associativity: a random shard partition, merged in a
            // random order, reaches the same state.
            let shards = 1 + rng.below(4);
            let mut parts: Vec<Vec<&SiteRecord>> = vec![Vec::new(); shards];
            for r in &subset {
                parts[rng.below(shards)].push(r);
            }
            let mut accs: Vec<CohortAccumulator> =
                parts.iter().map(|p| absorb_all(p, &web)).collect();
            let mut merged = CohortAccumulator::new();
            while !accs.is_empty() {
                let next = accs.remove(rng.below(accs.len()));
                merged.merge(&next);
            }
            let sharded = fingerprint(&merged);
            assert_eq!(
                sharded, reference,
                "case {case}: shard partition ({shards} shards) changed state"
            );
        }
    }
}
