//! The end-to-end study pipeline: crawl → detect → cluster → attribute →
//! analyze, producing every table and figure of the paper from a
//! [`SyntheticWeb`].

use canvassing_blocklist::{DisconnectList, FilterList};
use canvassing_browser::AdBlockerKind;
use canvassing_crawler::{
    crawl, crawl_streamed_range_until, crawl_with_stats, shard_range, supervise_crawl, CrawlConfig,
    CrawlDataset, CrawlStats, FailureKind, FaultScript, SegmentWriter, SupervisionReport,
    SupervisorConfig,
};
use canvassing_raster::DeviceProfile;
use canvassing_webgen::{Cohort, SyntheticWeb};
use serde::{Deserialize, Serialize};

use crate::accumulate::CohortAccumulator;
use crate::attribution::{attribute, gather_ground_truth, AttributionResult, AttributionSources};
use crate::bias::BiasAccounting;
use crate::blocklist_coverage::{coverage, CoverageCounts};
use crate::cluster::{Clustering, OverlapStats};
use crate::detect::{detect, SiteDetection};
use crate::evasion::EvasionStats;
use crate::figures::Figure1;
use crate::prevalence::Prevalence;
use crate::validation::{
    bytecode_triage, cross_validate, vendor_static_rows, verdict_label, BytecodeTriageStats,
    ConfusionMatrix, VendorStaticRow,
};

/// What to run beyond the control crawl.
#[derive(Debug, Clone, Copy)]
pub struct StudyOptions {
    /// Crawl worker threads.
    pub workers: usize,
    /// Re-crawl with Adblock Plus and uBlock Origin (Table 2).
    pub adblock_crawls: bool,
    /// Re-crawl the popular cohort on the M1 profile and validate
    /// cross-device grouping (§3.1).
    pub m1_validation: bool,
    /// Extension experiment (E13): re-crawl the popular cohort under
    /// canvas-randomization defenses and measure the collapse of the
    /// clustering methodology (§5.3 discussion).
    pub defense_sweep: bool,
    /// Record per-visit traces on the control crawls (a counting sink, so
    /// the trace totals show up in the report's observability section).
    /// Off by default: visits then run with disabled recorders, the
    /// near-zero-overhead path.
    pub trace: bool,
    /// Replay the standard overload schedule against the verdict-serving
    /// daemon over a corpus harvested from the popular frontier, with a
    /// mid-run blocklist reload (EasyList → +EasyPrivacy). Off by
    /// default: serving is a deployment story layered on the study, not
    /// part of the paper's measurements.
    pub serving: bool,
    /// Script execution engine for every crawl the study runs. The
    /// bytecode VM and the tree-walking oracle produce byte-identical
    /// reports (gated in `tests/engine_identity.rs`), so this is an A/B
    /// switch for that gate, not a result-affecting option.
    pub engine: canvassing_browser::ExecEngine,
}

impl Default for StudyOptions {
    fn default() -> Self {
        StudyOptions {
            workers: 8,
            adblock_crawls: true,
            m1_validation: true,
            defense_sweep: false,
            trace: false,
            serving: false,
            engine: canvassing_browser::ExecEngine::default(),
        }
    }
}

/// Everything measured for one cohort under one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CohortAnalysis {
    /// Which cohort.
    pub cohort: Cohort,
    /// Sites attempted.
    pub attempted: usize,
    /// Per-site detections (successful crawls only).
    pub detections: Vec<SiteDetection>,
    /// Canvas clustering.
    pub clustering: Clustering,
    /// §4.1 prevalence.
    pub prevalence: Prevalence,
    /// §5.2/§5.3 evasion stats.
    pub evasion: EvasionStats,
    /// Table 4 coverage.
    pub coverage: CoverageCounts,
    /// §3.1 crawl-failure breakdown by typed kind.
    pub failures: std::collections::BTreeMap<FailureKind, usize>,
    /// Failure-bias accounting: fidelity-tier counts and the strict /
    /// salvage-inclusive / worst-case-interval prevalence estimators.
    pub bias: BiasAccounting,
    /// Static-triage vs dynamic-detection confusion matrix over the
    /// cohort's unique script bodies.
    pub static_dynamic: ConfusionMatrix,
    /// Crawl cache-efficiency counters (parse/memo hit rates). Zeroed
    /// when the analysis was built from a dataset alone.
    pub perf: CrawlStats,
    /// Second-engine (bytecode abstract interpretation) triage over the
    /// cohort's script corpus: AST-inconclusive bodies recovered, seeded
    /// evasion recovery, verifier statistics. Zeroed when the analysis
    /// was built from a dataset alone (no corpus to enumerate).
    pub bytecode: BytecodeTriageStats,
}

/// Analyzes one crawl dataset into a cohort analysis.
pub fn analyze_cohort(
    cohort: Cohort,
    dataset: &CrawlDataset,
    easylist: &FilterList,
    easyprivacy: &FilterList,
    disconnect: &DisconnectList,
) -> CohortAnalysis {
    let detections: Vec<SiteDetection> = dataset
        .successful()
        .map(|(_, visit)| detect(visit))
        .collect();
    let clustering = Clustering::build(detections.iter());
    let prevalence = Prevalence::compute(&detections, dataset.records.len());
    let evasion = EvasionStats::compute(&detections);
    let coverage = coverage(&detections, easylist, easyprivacy, disconnect);
    let static_dynamic = cross_validate(dataset, &detections);
    let bias = BiasAccounting::compute(dataset, &detections);
    CohortAnalysis {
        cohort,
        attempted: dataset.records.len(),
        detections,
        clustering,
        prevalence,
        evasion,
        coverage,
        failures: dataset.failure_breakdown(),
        bias,
        static_dynamic,
        perf: CrawlStats::default(),
        bytecode: BytecodeTriageStats::default(),
    }
}

/// One Table 2 row: a crawl configuration's canvas/site counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Row {
    /// Configuration label.
    pub label: String,
    /// Fingerprintable canvases (popular, tail).
    pub canvases: (usize, usize),
    /// Fingerprinting sites (popular, tail).
    pub sites: (usize, usize),
}

/// §3.1 cross-device validation output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ValidationResult {
    /// Whether the two devices produced different canvas bytes.
    pub canvases_differ: bool,
    /// Whether the induced site groupings agree.
    pub partitions_match: bool,
    /// Unique canvases seen on each device.
    pub unique_canvases: (usize, usize),
}

/// E13 (extension): how the measurement itself degrades when the crawl
/// client randomizes canvases — one row per defense mode.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DefenseSweepRow {
    /// Defense label.
    pub label: String,
    /// Unique canvases observed in the popular cohort under the defense.
    pub unique_canvases: usize,
    /// Sites whose fingerprinters detected instability (double-render
    /// check failed), i.e. would discard the canvas component.
    pub unstable_sites: usize,
    /// Fingerprinting sites observed (per the §3.2 heuristics).
    pub fingerprinting_sites: usize,
}

/// Full study output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyResults {
    /// Popular cohort, control configuration.
    pub popular: CohortAnalysis,
    /// Tail cohort, control configuration.
    pub tail: CohortAnalysis,
    /// Figure 1.
    pub figure1: Figure1,
    /// §4.2 overlap stats.
    pub overlap: OverlapStats,
    /// Table 1 attribution.
    pub attribution: AttributionResult,
    /// Table 2 rows (control first), empty when ad-block crawls are off.
    pub table2: Vec<Table2Row>,
    /// §3.1 validation, when run.
    pub validation: Option<ValidationResult>,
    /// Per-vendor static-classifier rows (static verdict vs the vendor's
    /// known runtime behavior).
    pub vendor_static: Vec<VendorStaticRow>,
    /// E13 defense sweep rows (control first), empty unless requested.
    pub defense_sweep: Vec<DefenseSweepRow>,
    /// Verdict-daemon overload replay summary, when requested.
    pub serving: Option<canvassing_serve::ServeStats>,
}

/// A script that rendered two same-sized canvases with different bytes —
/// the signature a §5.3 stability check sees under per-render
/// randomization.
fn count_unstable_sites(detections: &[SiteDetection]) -> usize {
    detections
        .iter()
        .filter(|d| {
            let mut groups: std::collections::BTreeMap<(String, u32, u32), Vec<&str>> =
                Default::default();
            for c in &d.canvases {
                groups
                    .entry((c.script_url.to_string(), c.width, c.height))
                    .or_default()
                    .push(c.data_url.as_str());
            }
            groups
                .values()
                .any(|urls| urls.len() >= 2 && urls.iter().any(|u| *u != urls[0]))
        })
        .count()
}

fn fingerprintable_canvases(detections: &[SiteDetection]) -> usize {
    detections.iter().map(|d| d.canvases.len()).sum()
}

fn fingerprinting_sites(detections: &[SiteDetection]) -> usize {
    detections.iter().filter(|d| d.is_fingerprinting()).count()
}

/// Runs the full study against a synthetic web.
pub fn run_study(web: &SyntheticWeb, options: &StudyOptions) -> StudyResults {
    let easylist = FilterList::parse("EasyList", &web.lists.easylist);
    let easyprivacy = FilterList::parse("EasyPrivacy", &web.lists.easyprivacy);
    let disconnect = DisconnectList::parse(&web.lists.disconnect);

    let popular_frontier = web.frontier(Cohort::Popular);
    let tail_frontier = web.frontier(Cohort::Tail);

    let mut control = CrawlConfig::control();
    control.workers = options.workers;
    control.engine = options.engine;
    if options.trace {
        control.trace = Some(std::sync::Arc::new(canvassing_trace::CountingSink::new()));
    }
    let (popular_ds, popular_stats) = crawl_with_stats(&web.network, &popular_frontier, &control);
    let (tail_ds, tail_stats) = crawl_with_stats(&web.network, &tail_frontier, &control);

    let mut popular = analyze_cohort(
        Cohort::Popular,
        &popular_ds,
        &easylist,
        &easyprivacy,
        &disconnect,
    );
    popular.perf = popular_stats;
    let mut tail = analyze_cohort(Cohort::Tail, &tail_ds, &easylist, &easyprivacy, &disconnect);
    tail.perf = tail_stats;
    popular.bytecode = bytecode_triage(&web.network, &popular_frontier);
    tail.bytecode = bytecode_triage(&web.network, &tail_frontier);

    finish_study(
        web,
        options,
        &popular_frontier,
        &tail_frontier,
        popular,
        tail,
    )
}

/// How [`run_study_streamed`] bounds memory and (optionally) spills.
#[derive(Debug, Clone)]
pub struct StreamingOptions {
    /// Sites in flight per scheduler chunk — the working-set bound.
    pub chunk_sites: usize,
    /// Records per spilled segment file.
    pub segment_sites: usize,
    /// Spill directory: when set, every control-crawl record is also
    /// appended to CRC-framed segment files under
    /// `<dir>/popular` / `<dir>/tail`, mergeable back into a full
    /// dataset with [`canvassing_crawler::merge_segments`].
    pub spill_dir: Option<std::path::PathBuf>,
    /// Frontier shards per cohort, crawled one after another here (or by
    /// N independent processes via
    /// [`canvassing_crawler::crawl_shard_to_segments`]).
    pub shards: usize,
}

impl Default for StreamingOptions {
    fn default() -> Self {
        StreamingOptions {
            chunk_sites: 512,
            segment_sites: 4096,
            spill_dir: None,
            shards: 1,
        }
    }
}

fn add_stats(into: &mut CrawlStats, from: &CrawlStats) {
    into.sites += from.sites;
    into.script_parses += from.script_parses;
    into.script_compiles += from.script_compiles;
    into.script_cache_hits += from.script_cache_hits;
    into.script_executions += from.script_executions;
    into.memo_hits += from.memo_hits;
    into.memo_computes += from.memo_computes;
    into.memo_bypasses += from.memo_bypasses;
    into.static_analyses += from.static_analyses;
    into.analysis_hits += from.analysis_hits;
    into.trace_visits += from.trace_visits;
    into.trace_spans += from.trace_spans;
    into.trace_events += from.trace_events;
    into.breaker_opens += from.breaker_opens;
    into.breaker_short_circuits += from.breaker_short_circuits;
    into.salvaged_visits += from.salvaged_visits;
}

/// Streams one cohort's control crawl through a [`CohortAccumulator`],
/// optionally spilling records to bounded segments, and finishes into a
/// cohort analysis. Memory is bounded by `chunk_sites` plus the
/// accumulator's fingerprinting-site state — never the cohort size.
#[allow(clippy::too_many_arguments)]
fn stream_cohort(
    web: &SyntheticWeb,
    cohort: Cohort,
    frontier: &[canvassing_net::Url],
    config: &CrawlConfig,
    easylist: &FilterList,
    easyprivacy: &FilterList,
    disconnect: &DisconnectList,
    streaming: &StreamingOptions,
) -> std::io::Result<CohortAnalysis> {
    let caches = config.build_caches();
    let mut acc = CohortAccumulator::new();
    let mut perf = CrawlStats::default();
    let shards = streaming.shards.max(1);
    let spill_dir = streaming.spill_dir.as_ref().map(|d| match cohort {
        Cohort::Popular => d.join("popular"),
        Cohort::Tail => d.join("tail"),
    });
    for shard in 0..shards {
        let mut writer = match &spill_dir {
            Some(dir) => Some(SegmentWriter::create(
                dir,
                &config.label,
                &config.device.id,
                shard,
                streaming.segment_sites,
            )?),
            None => None,
        };
        let mut io_err: Option<std::io::Error> = None;
        let stats = crawl_streamed_range_until(
            &web.network,
            frontier,
            config,
            &caches,
            shard_range(frontier.len(), shard, shards),
            streaming.chunk_sites,
            |_, record| {
                // Spill before absorbing: a record the segment files will
                // never durably hold must not reach the accumulator either,
                // or the streamed analysis and the spilled dataset diverge.
                if let Some(w) = writer.as_mut() {
                    if let Err(e) = w.append(&record) {
                        io_err = Some(e);
                        return std::ops::ControlFlow::Break(());
                    }
                }
                acc.absorb(&record, easylist, easyprivacy, disconnect);
                std::ops::ControlFlow::Continue(())
            },
        );
        if let Some(e) = io_err {
            // Abort, don't limp: drop the unsealed partial segment so the
            // spill directory holds only complete, sealed segments.
            if let Some(w) = writer {
                w.abort().ok();
            }
            return Err(e);
        }
        if let Some(w) = writer {
            w.finish()?;
        }
        add_stats(&mut perf, &stats);
    }
    let mut analysis = acc.finish(cohort);
    analysis.perf = perf;
    analysis.bytecode = bytecode_triage(&web.network, frontier);
    Ok(analysis)
}

/// [`run_study`] on the constant-memory path: the two control crawls
/// stream through [`CohortAccumulator`]s in bounded chunks (optionally
/// spilling to segment files) instead of materializing datasets.
///
/// The rendered report is byte-identical to [`run_study`]'s — the
/// accumulator folds are exact, and the only [`StudyResults`] field that
/// differs is `detections`, which the streamed path projects down to
/// fingerprinting sites (everything the report and downstream analyses
/// read is preserved; `tests/streaming_equivalence.rs` gates the bytes).
/// Errors only on spill I/O; with `spill_dir: None` it is infallible in
/// practice.
pub fn run_study_streamed(
    web: &SyntheticWeb,
    options: &StudyOptions,
    streaming: &StreamingOptions,
) -> std::io::Result<StudyResults> {
    let easylist = FilterList::parse("EasyList", &web.lists.easylist);
    let easyprivacy = FilterList::parse("EasyPrivacy", &web.lists.easyprivacy);
    let disconnect = DisconnectList::parse(&web.lists.disconnect);

    let popular_frontier = web.frontier(Cohort::Popular);
    let tail_frontier = web.frontier(Cohort::Tail);

    let mut control = CrawlConfig::control();
    control.workers = options.workers;
    control.engine = options.engine;
    if options.trace {
        control.trace = Some(std::sync::Arc::new(canvassing_trace::CountingSink::new()));
    }

    let popular = stream_cohort(
        web,
        Cohort::Popular,
        &popular_frontier,
        &control,
        &easylist,
        &easyprivacy,
        &disconnect,
        streaming,
    )?;
    let tail = stream_cohort(
        web,
        Cohort::Tail,
        &tail_frontier,
        &control,
        &easylist,
        &easyprivacy,
        &disconnect,
        streaming,
    )?;

    Ok(finish_study(
        web,
        options,
        &popular_frontier,
        &tail_frontier,
        popular,
        tail,
    ))
}

/// Per-cohort supervision accounting from [`run_study_supervised`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SupervisionSummary {
    /// Popular-cohort supervision report.
    pub popular: SupervisionReport,
    /// Tail-cohort supervision report.
    pub tail: SupervisionReport,
}

/// [`run_study`] on the crash-tolerant path: both control crawls run
/// under the shard supervisor ([`supervise_crawl`]) with `faults`
/// injected, spilling leased, epoch-qualified segments under
/// `<dir>/popular` / `<dir>/tail`, then merging duplicate-safely.
///
/// The [`StudyResults`] are byte-identical to [`run_study`]'s for ANY
/// fault script — crashes, stalls, duplicate launches, and speculation
/// never show up in the science — with two deliberate exceptions, both
/// perf-only: `popular.perf`/`tail.perf` stay zeroed (supervised re-work
/// would otherwise perturb cache counters by the fault script), and
/// crawl traces are not recorded (supervision instants go to
/// [`SupervisorConfig::trace`] instead). `tests/supervisor_chaos.rs`
/// gates the faults-vs-none identity.
pub fn run_study_supervised(
    web: &SyntheticWeb,
    options: &StudyOptions,
    sup: &SupervisorConfig,
    faults: &FaultScript,
    dir: &std::path::Path,
) -> std::io::Result<(StudyResults, SupervisionSummary)> {
    let easylist = FilterList::parse("EasyList", &web.lists.easylist);
    let easyprivacy = FilterList::parse("EasyPrivacy", &web.lists.easyprivacy);
    let disconnect = DisconnectList::parse(&web.lists.disconnect);

    let popular_frontier = web.frontier(Cohort::Popular);
    let tail_frontier = web.frontier(Cohort::Tail);

    let mut control = CrawlConfig::control();
    control.workers = options.workers;
    control.engine = options.engine;

    let (popular_ds, popular_sup) = supervise_crawl(
        &web.network,
        &popular_frontier,
        &control,
        &dir.join("popular"),
        sup,
        faults,
    )?;
    let (tail_ds, tail_sup) = supervise_crawl(
        &web.network,
        &tail_frontier,
        &control,
        &dir.join("tail"),
        sup,
        faults,
    )?;

    let mut popular = analyze_cohort(
        Cohort::Popular,
        &popular_ds,
        &easylist,
        &easyprivacy,
        &disconnect,
    );
    let mut tail = analyze_cohort(Cohort::Tail, &tail_ds, &easylist, &easyprivacy, &disconnect);
    popular.bytecode = bytecode_triage(&web.network, &popular_frontier);
    tail.bytecode = bytecode_triage(&web.network, &tail_frontier);

    let results = finish_study(
        web,
        options,
        &popular_frontier,
        &tail_frontier,
        popular,
        tail,
    );
    Ok((
        results,
        SupervisionSummary {
            popular: popular_sup,
            tail: tail_sup,
        },
    ))
}

/// Everything downstream of the two control-cohort analyses: figures,
/// attribution, the optional re-crawl experiments, and assembly. Shared
/// verbatim by [`run_study`] and [`run_study_streamed`] so the two paths
/// cannot drift.
fn finish_study(
    web: &SyntheticWeb,
    options: &StudyOptions,
    popular_frontier: &[canvassing_net::Url],
    tail_frontier: &[canvassing_net::Url],
    popular: CohortAnalysis,
    tail: CohortAnalysis,
) -> StudyResults {
    let figure1 = Figure1::build(&popular.clustering, &tail.clustering, 50);
    let overlap = OverlapStats::compute(&popular.clustering, &tail.clustering);

    // Ground truth crawls (demo pages + known customers) on the same
    // device as the main crawl.
    let sources = AttributionSources {
        demos: web.demo_pages(),
        customers: web.known_customers(),
    };
    let truth = gather_ground_truth(&web.network, &sources, &DeviceProfile::intel_ubuntu());
    let attribution = attribute(
        &web.network,
        &truth,
        &popular.detections,
        &tail.detections,
        &popular.clustering,
        &tail.clustering,
    );

    // Table 2: ad-blocker re-crawls.
    let mut table2 = vec![Table2Row {
        label: "Control".into(),
        canvases: (
            fingerprintable_canvases(&popular.detections),
            fingerprintable_canvases(&tail.detections),
        ),
        sites: (
            fingerprinting_sites(&popular.detections),
            fingerprinting_sites(&tail.detections),
        ),
    }];
    if options.adblock_crawls {
        for kind in [AdBlockerKind::AdblockPlus, AdBlockerKind::UblockOrigin] {
            let mut config = CrawlConfig::with_adblocker(kind, &web.lists.easylist);
            config.workers = options.workers;
            config.engine = options.engine;
            let p = crawl(&web.network, popular_frontier, &config);
            let t = crawl(&web.network, tail_frontier, &config);
            let p_det: Vec<SiteDetection> = p.successful().map(|(_, v)| detect(v)).collect();
            let t_det: Vec<SiteDetection> = t.successful().map(|(_, v)| detect(v)).collect();
            table2.push(Table2Row {
                label: kind.name().into(),
                canvases: (
                    fingerprintable_canvases(&p_det),
                    fingerprintable_canvases(&t_det),
                ),
                sites: (fingerprinting_sites(&p_det), fingerprinting_sites(&t_det)),
            });
        }
    }

    // §3.1 validation: M1 re-crawl of the popular cohort.
    let validation = if options.m1_validation {
        let mut config = CrawlConfig::with_device(DeviceProfile::apple_m1());
        config.workers = options.workers;
        config.engine = options.engine;
        let m1_ds = crawl(&web.network, popular_frontier, &config);
        let m1_det: Vec<SiteDetection> = m1_ds.successful().map(|(_, v)| detect(v)).collect();
        let m1_clustering = Clustering::build(m1_det.iter());
        let intel_urls: std::collections::BTreeSet<&str> = popular
            .clustering
            .clusters
            .iter()
            .map(|c| c.data_url.as_str())
            .collect();
        let m1_urls: std::collections::BTreeSet<&str> = m1_clustering
            .clusters
            .iter()
            .map(|c| c.data_url.as_str())
            .collect();
        Some(ValidationResult {
            canvases_differ: intel_urls.is_disjoint(&m1_urls) || intel_urls != m1_urls,
            partitions_match: popular.clustering.site_partition() == m1_clustering.site_partition(),
            unique_canvases: (
                popular.clustering.unique_canvases(),
                m1_clustering.unique_canvases(),
            ),
        })
    } else {
        None
    };

    // E13 (extension): crawl the popular cohort under randomization
    // defenses and watch the clustering methodology degrade.
    let mut defense_sweep = Vec::new();
    if options.defense_sweep {
        use canvassing_browser::DefenseMode;
        let sweep = [
            ("control", DefenseMode::None),
            (
                "per-render noise",
                DefenseMode::RandomizePerRender { seed: 1 },
            ),
            (
                "per-session noise",
                DefenseMode::RandomizePerSession { seed: 1 },
            ),
            ("canvas blocking", DefenseMode::Block),
        ];
        for (label, defense) in sweep {
            let mut config = CrawlConfig::control();
            config.label = format!("defense-{label}");
            config.workers = options.workers;
            config.engine = options.engine;
            config.defense = defense;
            let ds = crawl(&web.network, popular_frontier, &config);
            let detections: Vec<SiteDetection> = ds.successful().map(|(_, v)| detect(v)).collect();
            let clustering = Clustering::build(detections.iter());
            defense_sweep.push(DefenseSweepRow {
                label: label.to_string(),
                unique_canvases: clustering.unique_canvases(),
                unstable_sites: count_unstable_sites(&detections),
                fingerprinting_sites: fingerprinting_sites(&detections),
            });
        }
    }

    // Serving replay: the daemon answers the standard overload schedule
    // from a corpus harvested off the popular frontier, with EasyPrivacy
    // hot-reloaded on top of the boot list halfway through.
    let serving = if options.serving {
        use canvassing_serve::{
            generate, harvest_corpus, LoadProfile, ReloadEvent, RuleSnapshot, ServeConfig,
            ServeStats, VerdictService,
        };
        let corpus = harvest_corpus(&web.network, popular_frontier, 256);
        let mut profile = LoadProfile::standard(2025);
        for phase in &mut profile.phases {
            // Compressed durations, full offered rates: the replay keeps
            // the burst and overload phases above lane capacity.
            phase.duration_ms = (phase.duration_ms / 10).max(20);
        }
        let total_ms: u64 = profile.phases.iter().map(|p| p.duration_ms).sum();
        let requests = generate(&profile, &corpus);
        let reloads = vec![ReloadEvent {
            at_ms: total_ms / 2,
            name: "easylist+easyprivacy".into(),
            list_text: format!("{}\n{}", web.lists.easylist, web.lists.easyprivacy),
            vendor_patterns: None,
        }];
        let boot = RuleSnapshot::new(
            0,
            "easylist-boot",
            &web.lists.easylist,
            RuleSnapshot::standard_vendor_patterns(),
        );
        let service = VerdictService::new(ServeConfig {
            workers: options.workers,
            ..ServeConfig::default()
        });
        let out = service.serve(&requests, &reloads, boot, Some(&web.network), None);
        let labels: Vec<String> = profile.phases.iter().map(|p| p.label.clone()).collect();
        Some(ServeStats::compute(&requests, &out, &labels))
    } else {
        None
    };

    StudyResults {
        popular,
        tail,
        figure1,
        overlap,
        attribution,
        table2,
        validation,
        vendor_static: vendor_static_rows(),
        defense_sweep,
        serving,
    }
}

impl StudyResults {
    /// Renders the full study as a plain-text report (every table and
    /// figure, paper-style).
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let pct = |n: usize, base: usize| -> f64 {
            if base == 0 {
                0.0
            } else {
                100.0 * n as f64 / base as f64
            }
        };

        out.push_str("== Prevalence (Section 4.1) ==\n");
        for a in [&self.popular, &self.tail] {
            out.push_str(&format!(
                "{:?}: {} crawled, {} successful, {} fingerprinting ({:.1}%), \
                 per-site canvases mean {:.2} / median {} / max {}\n",
                a.cohort,
                a.attempted,
                a.prevalence.successes,
                a.prevalence.fingerprinting_sites,
                100.0 * a.prevalence.fingerprinting_rate(),
                a.prevalence.mean_canvases,
                a.prevalence.median_canvases,
                a.prevalence.max_canvases,
            ));
        }
        out.push_str(&format!(
            "fingerprintable fraction of extractions: {:.1}% (popular), {:.1}% (tail)\n",
            100.0 * self.popular.prevalence.fingerprintable_fraction(),
            100.0 * self.tail.prevalence.fingerprintable_fraction(),
        ));

        out.push_str("\n== Crawl failures by kind (Section 3.1) ==\n");
        out.push_str("Kind | Popular | Tail\n");
        let mut kinds: Vec<FailureKind> = self
            .popular
            .failures
            .keys()
            .chain(self.tail.failures.keys())
            .copied()
            .collect();
        kinds.sort();
        kinds.dedup();
        for kind in kinds {
            out.push_str(&format!(
                "{} | {} | {}\n",
                kind,
                self.popular.failures.get(&kind).copied().unwrap_or(0),
                self.tail.failures.get(&kind).copied().unwrap_or(0),
            ));
        }

        out.push_str("\n== Failure bias (fidelity tiers) ==\n");
        out.push_str("Tier | Popular | Tail\n");
        for tier in canvassing_crawler::VisitFidelity::all() {
            out.push_str(&format!(
                "{} | {} | {}\n",
                tier,
                self.popular.bias.tiers.get(&tier).copied().unwrap_or(0),
                self.tail.bias.tiers.get(&tier).copied().unwrap_or(0),
            ));
        }
        for a in [&self.popular, &self.tail] {
            let b = &a.bias;
            out.push_str(&format!(
                "{:?}: strict {:.1}%, salvage-inclusive {:.1}%, \
                 worst-case interval [{:.1}%, {:.1}%] over {} sites\n",
                a.cohort,
                100.0 * b.strict_rate(),
                100.0 * b.salvage_rate(),
                100.0 * b.bias_low(),
                100.0 * b.bias_high(),
                b.population,
            ));
        }
        if self.popular.perf.breaker_opens > 0
            || self.tail.perf.breaker_opens > 0
            || self.popular.perf.salvaged_visits > 0
            || self.tail.perf.salvaged_visits > 0
        {
            out.push_str("\n== Resilience (breakers and salvage) ==\n");
            for a in [&self.popular, &self.tail] {
                let p = &a.perf;
                out.push_str(&format!(
                    "{:?}: {} circuit opens, {} short-circuited references, \
                     {} salvaged visits\n",
                    a.cohort, p.breaker_opens, p.breaker_short_circuits, p.salvaged_visits,
                ));
            }
        }

        out.push_str("\n== Crawl cache efficiency ==\n");
        for a in [&self.popular, &self.tail] {
            let p = &a.perf;
            out.push_str(&format!(
                "{:?}: {} sites; {} parses, {} bytecode compiles, \
                 {:.0}% compile-cache hits; \
                 {} canonical renders, {:.0}% memo hits\n",
                a.cohort,
                p.sites,
                p.script_parses,
                p.script_compiles,
                100.0 * p.script_cache_hit_rate(),
                p.memo_computes,
                100.0 * p.memo_hit_rate(),
            ));
        }

        if self.popular.perf.trace_visits > 0 || self.tail.perf.trace_visits > 0 {
            out.push_str("\n== Observability (trace layer) ==\n");
            for a in [&self.popular, &self.tail] {
                let p = &a.perf;
                out.push_str(&format!(
                    "{:?}: {} visit traces, {} spans, {} events delivered\n",
                    a.cohort, p.trace_visits, p.trace_spans, p.trace_events,
                ));
                // Compile amortization: each unique executed body is
                // lowered to bytecode once; every run — canonical memo
                // renders and in-place executions alike — reuses it.
                let runs = p.script_executions + p.memo_computes;
                out.push_str(&format!(
                    "{:?}: {} bytecode compiles amortized over {} engine runs ({:.1}x reuse)\n",
                    a.cohort,
                    p.script_compiles,
                    runs,
                    runs as f64 / (p.script_compiles.max(1)) as f64,
                ));
            }
        }

        if let Some(serving) = &self.serving {
            out.push_str("\n== Serving (verdict daemon overload replay) ==\n");
            out.push_str(&serving.render());
        }

        out.push_str("\n== Reach (Section 4.2) ==\n");
        out.push_str(&format!(
            "unique canvases: {} popular, {} tail\n",
            self.popular.clustering.unique_canvases(),
            self.tail.clustering.unique_canvases()
        ));
        let top6 = self.popular.clustering.sites_covered_by_top(6);
        out.push_str(&format!(
            "top-6 canvases cover {} popular fingerprinting sites ({:.1}%)\n",
            top6,
            pct(top6, self.popular.prevalence.fingerprinting_sites)
        ));
        out.push_str(&format!(
            "tail sites sharing a canvas with popular: {:.1}%\n",
            100.0 * self.overlap.sharing_fraction()
        ));
        out.push_str(&format!(
            "largest tail-only clusters: {:?}\n",
            &self.overlap.tail_only_cluster_sizes
                [..self.overlap.tail_only_cluster_sizes.len().min(3)]
        ));

        out.push_str("\n== Figure 1 ==\n");
        out.push_str(&self.figure1.render_ascii(30));

        out.push_str("\n== Table 1: vendor attribution ==\n");
        out.push_str("Service | Top 20k | Tail 20k\n");
        let fp = self.attribution.fingerprinting_sites;
        for v in &self.attribution.vendors {
            out.push_str(&format!(
                "{}{} | {} ({:.0}%) | {} ({:.0}%)\n",
                v.name,
                if v.security { " [security]" } else { "" },
                v.popular_sites,
                pct(v.popular_sites, fp.0),
                v.tail_sites,
                pct(v.tail_sites, fp.1),
            ));
        }
        out.push_str(&format!(
            "Total attributed: {} ({:.0}%) | {} ({:.0}%)\n",
            self.attribution.attributed_sites.0,
            100.0 * self.attribution.popular_coverage(),
            self.attribution.attributed_sites.1,
            100.0 * self.attribution.tail_coverage(),
        ));
        out.push_str(&format!(
            "FingerprintJS commercial customers: {} popular, {} tail\n",
            self.attribution.fpjs_commercial_sites.0, self.attribution.fpjs_commercial_sites.1
        ));

        if !self.table2.is_empty() {
            out.push_str("\n== Table 2: ad-blocker crawls ==\n");
            out.push_str("Config | canvases (pop/tail) | sites (pop/tail)\n");
            for row in &self.table2 {
                out.push_str(&format!(
                    "{} | {} / {} | {} / {}\n",
                    row.label, row.canvases.0, row.canvases.1, row.sites.0, row.sites.1
                ));
            }
        }

        out.push_str("\n== Table 4: blocklist coverage (canvases) ==\n");
        for a in [&self.popular, &self.tail] {
            let c = &a.coverage;
            out.push_str(&format!(
                "{:?}: EL {} ({:.0}%), EP {} ({:.0}%), Disconnect {} ({:.0}%), \
                 Any {} ({:.0}%), All {} ({:.0}%) of {} canvases\n",
                a.cohort,
                c.easylist,
                CoverageCounts::pct(c.easylist, c.total),
                c.easyprivacy,
                CoverageCounts::pct(c.easyprivacy, c.total),
                c.disconnect,
                CoverageCounts::pct(c.disconnect, c.total),
                c.any,
                CoverageCounts::pct(c.any, c.total),
                c.all,
                CoverageCounts::pct(c.all, c.total),
                c.total,
            ));
        }

        out.push_str("\n== Evasion (Section 5.2) and randomization checks (5.3) ==\n");
        for a in [&self.popular, &self.tail] {
            let e = &a.evasion;
            out.push_str(&format!(
                "{:?}: first-party {:.1}%, subdomain {:.1}%, CDN {:.1}%, \
                 CNAME-cloaked {:.1}%, bundled {:.1}%, double-render check {:.1}%\n",
                a.cohort,
                e.pct(e.first_party_sites),
                e.pct(e.subdomain_sites),
                e.pct(e.cdn_sites),
                e.pct(e.cname_sites),
                e.pct(e.bundled_sites),
                e.pct(e.double_render_sites),
            ));
        }

        if let Some(v) = &self.validation {
            out.push_str("\n== Cross-device validation (Section 3.1) ==\n");
            out.push_str(&format!(
                "canvases differ across devices: {}; site groupings match: {}; \
                 unique canvases {} (Intel) vs {} (M1)\n",
                v.canvases_differ, v.partitions_match, v.unique_canvases.0, v.unique_canvases.1
            ));
        }

        out.push_str("\n== Static vs dynamic: confusion matrix over unique scripts ==\n");
        out.push_str("Cohort | TP | FP | FN | TN | inconclusive | precision | recall | F1\n");
        for a in [&self.popular, &self.tail] {
            let m = &a.static_dynamic;
            out.push_str(&format!(
                "{:?} | {} | {} | {} | {} | {} | {:.3} | {:.3} | {:.3}\n",
                a.cohort,
                m.tp,
                m.fp,
                m.fn_,
                m.tn,
                m.inconclusive,
                m.precision(),
                m.recall(),
                m.f1(),
            ));
        }
        if !self.vendor_static.is_empty() {
            out.push_str("Vendor | static verdict | double-render agrees\n");
            for row in &self.vendor_static {
                out.push_str(&format!(
                    "{} | {} | {}\n",
                    row.name,
                    verdict_label(row.verdict),
                    if row.double_render_agrees {
                        "yes"
                    } else {
                        "NO"
                    },
                ));
            }
        }

        if self.popular.bytecode.unique_bodies > 0 || self.tail.bytecode.unique_bodies > 0 {
            out.push_str("\n== Bytecode engine: recovered verdicts and verifier ==\n");
            out.push_str(
                "Cohort | bodies | AST-inconclusive | recovered (fp) | evasive recovered | verifier\n",
            );
            for a in [&self.popular, &self.tail] {
                let b = &a.bytecode;
                out.push_str(&format!(
                    "{:?} | {} | {} | {} ({}) | {}/{} | {} chunks, {} insns, depth {}, {} rejected\n",
                    a.cohort,
                    b.unique_bodies,
                    b.ast_inconclusive,
                    b.recovered,
                    b.recovered_fingerprinting,
                    b.evasive_recovered,
                    b.evasive_bodies,
                    b.verified_chunks,
                    b.verified_insns,
                    b.verifier_max_stack,
                    b.verifier_rejections,
                ));
            }
        }

        if !self.defense_sweep.is_empty() {
            out.push_str("\n== E13 (extension): crawling under canvas defenses ==\n");
            out.push_str("defense | unique canvases | unstable-check sites | fp sites\n");
            for row in &self.defense_sweep {
                out.push_str(&format!(
                    "{} | {} | {} | {}\n",
                    row.label, row.unique_canvases, row.unstable_sites, row.fingerprinting_sites
                ));
            }
        }
        out
    }

    /// Serializes the full results as JSON (for downstream analysis and
    /// plotting).
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_webgen::WebConfig;

    /// A tiny-but-full study exercising every stage. Kept small so the
    /// whole suite stays fast; the paper-scale run lives in the repro
    /// binary.
    #[test]
    fn tiny_study_end_to_end() {
        let web = SyntheticWeb::generate(WebConfig {
            seed: 99,
            scale: 0.02,
        });
        let results = run_study(
            &web,
            &StudyOptions {
                workers: 4,
                adblock_crawls: true,
                m1_validation: true,
                defense_sweep: false,
                trace: true,
                serving: true,
                engine: Default::default(),
            },
        );

        // Prevalence in the right ballpark (targets: 12.7% / 9.9%).
        let p_rate = results.popular.prevalence.fingerprinting_rate();
        let t_rate = results.tail.prevalence.fingerprinting_rate();
        assert!((0.08..=0.18).contains(&p_rate), "popular rate {p_rate}");
        assert!((0.06..=0.14).contains(&t_rate), "tail rate {t_rate}");
        assert!(p_rate > t_rate, "popular should fingerprint more");

        // Clustering found shared canvases.
        assert!(results.popular.clustering.unique_canvases() > 5);
        assert!(results.figure1.bars.len() > 3);

        // Attribution found the major vendors.
        let akamai = results
            .attribution
            .vendors
            .iter()
            .find(|v| v.name == "Akamai")
            .unwrap();
        assert!(akamai.popular_sites > 0);
        let coverage = results.attribution.popular_coverage();
        assert!(
            (0.4..=1.0).contains(&coverage),
            "attribution coverage {coverage}"
        );

        // Table 2: blockers help only slightly.
        assert_eq!(results.table2.len(), 3);
        let control_sites = results.table2[0].sites.0;
        for row in &results.table2[1..] {
            assert!(row.sites.0 <= control_sites);
            assert!(
                row.sites.0 as f64 >= control_sites as f64 * 0.80,
                "{}: too effective {} vs {}",
                row.label,
                row.sites.0,
                control_sites
            );
        }

        // Validation: different bytes, same grouping.
        let v = results.validation.as_ref().unwrap();
        assert!(v.canvases_differ);
        assert!(v.partitions_match);

        // The typed failure breakdown accounts for every failed site.
        for a in [&results.popular, &results.tail] {
            let failed: usize = a.failures.values().sum();
            assert_eq!(
                failed,
                a.attempted - a.prevalence.successes,
                "{:?}: breakdown must cover every failure",
                a.cohort
            );
            assert!(!a.failures.is_empty(), "down sites exist at this scale");
        }

        // Failure-bias accounting: fidelity tiers partition the site
        // population, and the crawl's failures widen the worst-case
        // interval beyond zero.
        for a in [&results.popular, &results.tail] {
            let b = &a.bias;
            assert_eq!(b.tiers.values().sum::<usize>(), a.attempted);
            assert_eq!(
                b.tiers[&canvassing_crawler::VisitFidelity::Full],
                a.prevalence.successes
            );
            assert_eq!(b.full_fingerprinting, a.prevalence.fingerprinting_sites);
            assert!(b.interval_width() > 0.0, "{:?}: failures exist", a.cohort);
            assert!(b.bias_high() >= b.bias_low());
            assert!((0.0..=1.0).contains(&b.strict_rate()));
            assert!((0.0..=1.0).contains(&b.salvage_rate()));
        }

        // Cache counters are populated and show heavy reuse: many sites
        // share each vendor script, so memo hits dominate renders.
        for a in [&results.popular, &results.tail] {
            let p = &a.perf;
            assert_eq!(p.sites as usize, a.attempted);
            assert!(p.script_parses > 0);
            assert!(
                p.memo_hits > p.memo_computes,
                "{:?}: hits {} vs computes {}",
                a.cohort,
                p.memo_hits,
                p.memo_computes
            );
        }

        // Second-engine triage: the corpus enumerated, the verifier clean,
        // and every deployed evasion variant recovered to a decisive
        // verdict by the bytecode engine.
        for a in [&results.popular, &results.tail] {
            let b = &a.bytecode;
            assert!(b.unique_bodies > 0, "{:?}: empty corpus", a.cohort);
            assert!(b.verified_chunks >= b.unique_bodies);
            assert_eq!(b.verifier_rejections, 0, "{:?}", a.cohort);
            assert!(b.evasive_bodies > 0, "{:?}: no evasives deployed", a.cohort);
            assert_eq!(
                b.evasive_recovered, b.evasive_bodies,
                "{:?}: an evasion variant escaped the bytecode engine",
                a.cohort
            );
            assert!(b.recovered >= b.evasive_recovered);
            assert!(b.recovered_fingerprinting >= b.evasive_recovered);
        }

        // Static-vs-dynamic cross-validation: the two detectors agree
        // almost everywhere, and every vendor row is a true positive.
        for a in [&results.popular, &results.tail] {
            let m = &a.static_dynamic;
            assert!(
                m.decided() > 10,
                "{:?}: only {} decided",
                a.cohort,
                m.decided()
            );
            assert!(m.f1() >= 0.95, "{:?}: F1 {:.3} ({:?})", a.cohort, m.f1(), m);
        }
        assert!(!results.vendor_static.is_empty());
        for row in &results.vendor_static {
            assert!(row.true_positive, "{}: {:?}", row.name, row.verdict);
        }

        // Tracing was on for the control crawls: every attempted site
        // delivered exactly one trace, and the report says so.
        for a in [&results.popular, &results.tail] {
            assert_eq!(a.perf.trace_visits as usize, a.attempted);
            assert!(a.perf.trace_spans > 0);
            assert!(a.perf.trace_events >= a.perf.trace_spans * 2);
        }

        // The report renders.
        let report = results.render_report();
        assert!(report.contains("Table 1"));
        assert!(report.contains("Akamai"));
        assert!(report.contains("Crawl failures by kind"));
        assert!(report.contains("Failure bias (fidelity tiers)"));
        assert!(report.contains("worst-case interval"));
        assert!(report.contains("cache efficiency"));
        assert!(report.contains("Observability (trace layer)"));
        assert!(report.contains("confusion matrix over unique scripts"));
        assert!(report.contains("double-render agrees"));

        // The serving replay ran, kept its partition exact, and rendered.
        let serving = results.serving.as_ref().expect("serving replay ran");
        assert!(serving.partition_exact(), "{serving:?}");
        assert_eq!(serving.deadline_violations, 0);
        assert!(serving.reloads == 1 && serving.offered > 0);
        assert!(report.contains("Serving (verdict daemon overload replay)"));
    }
}

#[cfg(test)]
mod defense_sweep_tests {
    use super::*;
    use canvassing_webgen::WebConfig;

    #[test]
    fn defense_sweep_shows_clustering_collapse() {
        let web = SyntheticWeb::generate(WebConfig {
            seed: 31,
            scale: 0.02,
        });
        let results = run_study(
            &web,
            &StudyOptions {
                workers: 4,
                adblock_crawls: false,
                m1_validation: false,
                defense_sweep: true,
                trace: false,
                serving: false,
                engine: Default::default(),
            },
        );
        assert_eq!(results.defense_sweep.len(), 4);
        let by_label = |label: &str| {
            results
                .defense_sweep
                .iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("row {label}"))
        };
        let control = by_label("control");
        let per_render = by_label("per-render noise");
        let per_session = by_label("per-session noise");
        let blocking = by_label("canvas blocking");

        // Per-render noise explodes unique canvases and trips the §5.3
        // stability check on many sites.
        assert!(
            per_render.unique_canvases > control.unique_canvases * 2,
            "per-render {} vs control {}",
            per_render.unique_canvases,
            control.unique_canvases
        );
        assert!(per_render.unstable_sites > control.unstable_sites + 3);
        // Per-session noise also splinters cross-site clusters (each
        // session gets its own noise), but stays invisible to the
        // double-render check — footnote 7's point.
        assert!(per_session.unique_canvases > control.unique_canvases * 2);
        assert_eq!(per_session.unstable_sites, control.unstable_sites);
        // Blocking collapses everything to the constant data URL — which
        // the size heuristic then excludes entirely (toDataURL returns
        // "data:," regardless of canvas size, carrying no PNG payload).
        assert!(blocking.unique_canvases <= 1);
    }
}
