//! Figure regeneration: Figure 1's canvas-popularity distribution, with a
//! plain-text renderer for terminal output.

use serde::{Deserialize, Serialize};

use crate::cluster::Clustering;

/// One bar of Figure 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1Bar {
    /// Popularity rank among top-20k canvases (1-based).
    pub rank: usize,
    /// Popular sites using the canvas.
    pub popular_sites: usize,
    /// Tail sites using the same canvas.
    pub tail_sites: usize,
}

/// Figure 1 data: the top-`k` most frequent canvases in the popular
/// cohort with their tail-cohort frequencies, plus the Shopify outlier —
/// the canvas most frequent among *tail* sites, shown with its (small)
/// popular-cohort frequency.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure1 {
    /// Bars in popular-rank order.
    pub bars: Vec<Fig1Bar>,
    /// The tail outlier: (popular sites, tail sites) of the most frequent
    /// tail canvas, when it is not already in the top-`k` head.
    pub tail_outlier: Option<(usize, usize)>,
}

impl Figure1 {
    /// Builds Figure 1 from both cohorts' clusterings.
    pub fn build(popular: &Clustering, tail: &Clustering, k: usize) -> Figure1 {
        let tail_count =
            |data_url: &str| -> usize { tail.find(data_url).map(|c| c.site_count()).unwrap_or(0) };
        let bars: Vec<Fig1Bar> = popular
            .clusters
            .iter()
            .take(k)
            .enumerate()
            .map(|(i, c)| Fig1Bar {
                rank: i + 1,
                popular_sites: c.site_count(),
                tail_sites: tail_count(&c.data_url),
            })
            .collect();

        // The §4.2 outlier: most frequent tail canvas vs its popular use.
        let tail_outlier = tail.clusters.first().map(|c| {
            let popular_sites = popular
                .find(&c.data_url)
                .map(|p| p.site_count())
                .unwrap_or(0);
            (popular_sites, c.site_count())
        });
        Figure1 { bars, tail_outlier }
    }

    /// Renders an ASCII version of the figure for terminal reports.
    pub fn render_ascii(&self, width: usize) -> String {
        let max = self
            .bars
            .iter()
            .map(|b| b.popular_sites.max(b.tail_sites))
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        out.push_str("rank | popular (#) / tail (o)\n");
        for b in &self.bars {
            let p = (b.popular_sites * width) / max;
            let t = (b.tail_sites * width) / max;
            out.push_str(&format!(
                "{:4} | {:<w$} {:4}  {:<w$} {:4}\n",
                b.rank,
                "#".repeat(p),
                b.popular_sites,
                "o".repeat(t),
                b.tail_sites,
                w = width,
            ));
        }
        if let Some((p, t)) = self.tail_outlier {
            out.push_str(&format!(
                "tail outlier (Shopify-style): {p} popular sites, {t} tail sites\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::{FpCanvas, SiteDetection};
    use canvassing_net::{Party, Url};

    fn site(host: &str, datas: &[&str]) -> SiteDetection {
        SiteDetection {
            site: host.into(),
            canvases: datas
                .iter()
                .map(|d| FpCanvas {
                    site: host.into(),
                    data_url: (*d).into(),
                    hash: canvassing_raster::content_hash(d.as_bytes()),
                    script_url: Url::https("s.net", "/f.js"),
                    inline: false,
                    party: Party::ThirdParty,
                    cname_cloaked: false,
                    cdn: false,
                    width: 100,
                    height: 100,
                })
                .collect(),
            excluded: vec![],
            double_render_check: false,
        }
    }

    #[test]
    fn figure_ranks_by_popular_frequency() {
        let popular = Clustering::build(
            [
                site("p1.com", &["A"]),
                site("p2.com", &["A"]),
                site("p3.com", &["B"]),
            ]
            .iter(),
        );
        let tail = Clustering::build(
            [
                site("t1.com", &["B"]),
                site("t2.com", &["S"]),
                site("t3.com", &["S"]),
                site("t4.com", &["S"]),
            ]
            .iter(),
        );
        let fig = Figure1::build(&popular, &tail, 10);
        assert_eq!(fig.bars.len(), 2);
        assert_eq!(fig.bars[0].popular_sites, 2); // A
        assert_eq!(fig.bars[0].tail_sites, 0);
        assert_eq!(fig.bars[1].popular_sites, 1); // B
        assert_eq!(fig.bars[1].tail_sites, 1);
        // S is the tail's most frequent canvas and absent from popular.
        assert_eq!(fig.tail_outlier, Some((0, 3)));
    }

    #[test]
    fn ascii_render_contains_counts() {
        let popular = Clustering::build([site("p.com", &["A"])].iter());
        let tail = Clustering::build([site("t.com", &["A"])].iter());
        let fig = Figure1::build(&popular, &tail, 5);
        let text = fig.render_ascii(20);
        assert!(text.contains("rank"));
        assert!(text.contains('1'));
    }
}
