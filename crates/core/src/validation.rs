//! Static-vs-dynamic cross-validation.
//!
//! The crawl records two independent judgments of every script: the
//! pre-execution static triage verdict ([`canvassing_analysis::Verdict`],
//! stored on each `LoadedScript`) and the post-execution dynamic §3.2
//! detection (a [`FpCanvas`](crate::detect::FpCanvas) attributed to the
//! script's URL). This module folds the two into a per-cohort
//! [`ConfusionMatrix`] keyed by unique script body (FNV-1a hash), plus a
//! per-vendor table checking the classifier against each vendor's known
//! runtime behavior — the two detectors validate each other.

use std::collections::{BTreeMap, BTreeSet};

use canvassing_analysis::{classify, classify_merged, classify_source, Verdict};
use canvassing_browser::PageVisit;
use canvassing_crawler::CrawlDataset;
use canvassing_net::{Network, Resource, ScriptRef, Url};
use canvassing_vendors::{all_vendors, scripts};
use serde::{Deserialize, Serialize};

use crate::detect::SiteDetection;

/// A 2×2 confusion matrix over unique script bodies: static verdict
/// (rows) against dynamic detection (columns). `Inconclusive` scripts
/// are tallied separately — they abstain rather than vote.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Statically `Fingerprinting`, dynamically detected.
    pub tp: usize,
    /// Statically `Fingerprinting`, dynamically silent.
    pub fp: usize,
    /// Statically `Benign`, dynamically detected.
    pub fn_: usize,
    /// Statically `Benign`, dynamically silent.
    pub tn: usize,
    /// Statically `Inconclusive` (excluded from the four cells).
    pub inconclusive: usize,
}

impl ConfusionMatrix {
    /// Adds one unique script to the matrix.
    pub fn record(&mut self, verdict: Verdict, dynamic_positive: bool) {
        if verdict == Verdict::Inconclusive {
            self.inconclusive += 1;
            return;
        }
        match (verdict.is_fingerprinting(), dynamic_positive) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, true) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Accumulates another matrix cell-by-cell (e.g. to pool cohorts).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.tp += other.tp;
        self.fp += other.fp;
        self.fn_ += other.fn_;
        self.tn += other.tn;
        self.inconclusive += other.inconclusive;
    }

    /// Unique scripts that cast a vote (everything but `Inconclusive`).
    pub fn decided(&self) -> usize {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// All unique scripts seen, including abstentions.
    pub fn total(&self) -> usize {
        self.decided() + self.inconclusive
    }

    /// TP / (TP + FP); 1.0 when the static pass never fired.
    pub fn precision(&self) -> f64 {
        Self::ratio(self.tp, self.tp + self.fp)
    }

    /// TP / (TP + FN); 1.0 when nothing fired dynamically.
    pub fn recall(&self) -> f64 {
        Self::ratio(self.tp, self.tp + self.fn_)
    }

    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        let (p, r) = (self.precision(), self.recall());
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// (TP + TN) / decided — raw static-dynamic agreement.
    pub fn agreement(&self) -> f64 {
        Self::ratio(self.tp + self.tn, self.decided())
    }

    fn ratio(num: usize, den: usize) -> f64 {
        if den == 0 {
            1.0
        } else {
            num as f64 / den as f64
        }
    }
}

/// Cross-validates one cohort's crawl: for every unique script body, the
/// static triage verdict versus whether the dynamic detector attributed a
/// fingerprintable canvas to that script's URL on any visit.
///
/// `detections` must be in [`CrawlDataset::successful`] order (as
/// produced by `analyze_cohort`). Scripts whose body was never fetched
/// carry no verdict and are skipped — neither detector saw them.
pub fn cross_validate(dataset: &CrawlDataset, detections: &[SiteDetection]) -> ConfusionMatrix {
    let mut votes = ScriptVotes::default();
    for ((_, visit), det) in dataset.successful().zip(detections) {
        votes.absorb(visit, det);
    }
    votes.finish()
}

/// Streaming fold for [`cross_validate`]: per unique script body, the
/// static verdict and whether the dynamic detector fired anywhere. The
/// verdict is a pure function of the body (any occurrence serves) and the
/// dynamic bit ORs across sites, so absorb order and shard partitioning
/// never change the finished matrix.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ScriptVotes {
    /// hash → (static verdict, dynamically detected anywhere).
    votes: BTreeMap<u64, (Verdict, bool)>,
}

impl ScriptVotes {
    /// Folds one successful visit and its detection into the vote map.
    pub fn absorb(&mut self, visit: &PageVisit, det: &SiteDetection) {
        let fired: BTreeSet<&Url> = det.canvases.iter().map(|c| &c.script_url).collect();
        for script in &visit.scripts {
            let Some(verdict) = script.verdict else {
                continue;
            };
            let entry = self
                .votes
                .entry(script.source_hash)
                .or_insert((verdict, false));
            entry.1 |= fired.contains(&script.url);
        }
    }

    /// Merges a sibling accumulator: OR of the dynamic bits per body.
    pub fn merge(&mut self, other: &ScriptVotes) {
        for (&hash, &(verdict, fired)) in &other.votes {
            let entry = self.votes.entry(hash).or_insert((verdict, false));
            entry.1 |= fired;
        }
    }

    /// Unique script bodies voted so far.
    pub fn unique_scripts(&self) -> usize {
        self.votes.len()
    }

    /// Finalizes the vote map into a [`ConfusionMatrix`].
    pub fn finish(&self) -> ConfusionMatrix {
        let mut matrix = ConfusionMatrix::default();
        for (verdict, dynamic_positive) in self.votes.values() {
            matrix.record(*verdict, *dynamic_positive);
        }
        matrix
    }
}

/// Per-cohort summary of the bytecode second engine: how many unique
/// script bodies the AST pass left `Inconclusive`, how many of those the
/// bytecode abstract interpreter resolved (and to what), recovery on the
/// ground-truth seeded evasion corpus, and aggregate statistics from the
/// bytecode verifier run over every compiled body.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BytecodeTriageStats {
    /// Unique script bodies reachable from the cohort's frontier.
    pub unique_bodies: usize,
    /// Bodies the AST engine left `Inconclusive` (including parse
    /// failures, which neither engine can judge).
    pub ast_inconclusive: usize,
    /// AST-inconclusive bodies the merged cascade resolved decisively.
    pub recovered: usize,
    /// Recovered bodies whose resolved verdict is `Fingerprinting`.
    pub recovered_fingerprinting: usize,
    /// Bodies carrying a ground-truth `evasive:` provenance label.
    pub evasive_bodies: usize,
    /// Evasive bodies recovered to a decisive verdict.
    pub evasive_recovered: usize,
    /// Chunks accepted by the bytecode verifier.
    pub verified_chunks: usize,
    /// Instructions checked by the verifier.
    pub verified_insns: usize,
    /// Peak verified operand-stack depth across all bodies.
    pub verifier_max_stack: u32,
    /// Compiled bodies the verifier rejected (always 0 in a healthy
    /// build: compile output is verified-by-construction).
    pub verifier_rejections: usize,
}

/// Runs the second-engine triage over every unique script body reachable
/// from a cohort's frontier pages (inline bundles plus externally served
/// scripts), deduplicated by FNV-1a body hash exactly like the crawl's
/// analysis cache.
///
/// This is a corpus-side validation pass, like [`vendor_static_rows`]:
/// it may read ground-truth provenance labels (`evasive:`), which the
/// crawl-side analyses never see.
pub fn bytecode_triage(network: &Network, frontier: &[Url]) -> BytecodeTriageStats {
    // hash → (source, label); first sighting wins (labels agree for
    // identical bodies by construction).
    let mut bodies: BTreeMap<u64, (String, String)> = BTreeMap::new();
    for page_url in frontier {
        let Some(Resource::Page(page)) = network.peek(page_url) else {
            continue;
        };
        for r in &page.scripts {
            match r {
                ScriptRef::Inline { source, label } => {
                    bodies
                        .entry(canvassing_script::source_hash(source))
                        .or_insert_with(|| (source.clone(), label.clone()));
                }
                ScriptRef::External(url) => {
                    if let Some(Resource::Script(s)) = network.peek(url) {
                        bodies
                            .entry(canvassing_script::source_hash(&s.source))
                            .or_insert_with(|| (s.source.clone(), s.label.clone()));
                    }
                }
            }
        }
    }

    let mut stats = BytecodeTriageStats::default();
    for (source, label) in bodies.values() {
        stats.unique_bodies += 1;
        let evasive = label.starts_with("evasive:");
        if evasive {
            stats.evasive_bodies += 1;
        }
        let Ok(program) = canvassing_script::parse(source) else {
            stats.ast_inconclusive += 1;
            continue;
        };
        if classify(&program).verdict == Verdict::Inconclusive {
            stats.ast_inconclusive += 1;
            let merged = classify_merged(&program).verdict;
            if merged != Verdict::Inconclusive {
                stats.recovered += 1;
                if merged.is_fingerprinting() {
                    stats.recovered_fingerprinting += 1;
                }
                if evasive {
                    stats.evasive_recovered += 1;
                }
            }
        }
        let compiled = canvassing_script::compile(&program);
        match canvassing_script::verify(&compiled) {
            Ok(v) => {
                stats.verified_chunks += v.chunks;
                stats.verified_insns += v.insns;
                stats.verifier_max_stack = stats.verifier_max_stack.max(v.max_stack);
            }
            Err(_) => stats.verifier_rejections += 1,
        }
    }
    stats
}

/// One per-vendor cross-validation row: the static verdict on the
/// vendor's script body against the vendor's known runtime behavior
/// (every modeled vendor fingerprints dynamically; `double_render` comes
/// from its metadata).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VendorStaticRow {
    /// Vendor display name.
    pub name: String,
    /// Static verdict on the vendor's script.
    pub verdict: Verdict,
    /// True positive: the static pass calls the script fingerprinting.
    pub true_positive: bool,
    /// Whether the static §5.3 double-render flag matches the vendor's
    /// metadata (its actual runtime behavior).
    pub double_render_agrees: bool,
}

/// Classifies every modeled vendor script statically and scores it
/// against the vendor's metadata.
pub fn vendor_static_rows() -> Vec<VendorStaticRow> {
    all_vendors()
        .iter()
        .map(|v| {
            let source = scripts::source(v.id, &scripts::site_token("validation.example"), false);
            let verdict = classify_source(&source).verdict;
            let static_double = matches!(
                verdict,
                Verdict::Fingerprinting {
                    double_render: true,
                    ..
                }
            );
            VendorStaticRow {
                name: v.name.to_string(),
                verdict,
                true_positive: verdict.is_fingerprinting(),
                double_render_agrees: static_double == v.double_render,
            }
        })
        .collect()
}

/// Short report label for a verdict.
pub fn verdict_label(verdict: Verdict) -> &'static str {
    match verdict {
        Verdict::Fingerprinting {
            exfil: true,
            double_render: true,
        } => "fingerprinting (exfil, double-render)",
        Verdict::Fingerprinting {
            exfil: true,
            double_render: false,
        } => "fingerprinting (exfil)",
        Verdict::Fingerprinting {
            exfil: false,
            double_render: true,
        } => "fingerprinting (double-render)",
        Verdict::Fingerprinting {
            exfil: false,
            double_render: false,
        } => "fingerprinting",
        Verdict::Benign => "benign",
        Verdict::Inconclusive => "inconclusive",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_rates_handle_empty_and_full_cells() {
        let mut m = ConfusionMatrix::default();
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f1(), 1.0);
        m.record(
            Verdict::Fingerprinting {
                exfil: true,
                double_render: false,
            },
            true,
        );
        m.record(Verdict::Benign, false);
        m.record(Verdict::Inconclusive, true);
        assert_eq!((m.tp, m.fp, m.fn_, m.tn, m.inconclusive), (1, 0, 0, 1, 1));
        assert_eq!(m.decided(), 2);
        assert_eq!(m.total(), 3);
        assert_eq!(m.f1(), 1.0);
        assert_eq!(m.agreement(), 1.0);
        m.record(Verdict::Benign, true); // a miss
        assert!(m.recall() < 1.0);
        assert!(m.f1() < 1.0);
    }

    #[test]
    fn bytecode_triage_recovers_an_evasive_inline_body() {
        use canvassing_net::{PageResource, ScriptResource};
        let mut network = Network::new();
        let script_url = Url::https("cdn.test", "/benign.js");
        network.host(
            &script_url,
            Resource::Script(ScriptResource {
                source: canvassing_vendors::benign::source(
                    canvassing_vendors::benign::BenignKind::SmallBadge,
                    1,
                ),
                label: "badge".into(),
            }),
        );
        let page = Url::https("site.test", "/");
        network.host(
            &page,
            Resource::Page(PageResource {
                scripts: vec![
                    ScriptRef::Inline {
                        source: canvassing_webgen::evasive_script(0),
                        label: canvassing_webgen::evasion_label(0),
                    },
                    ScriptRef::External(script_url),
                ],
                consent_banner: false,
                bot_check: false,
            }),
        );
        let stats = bytecode_triage(&network, &[page]);
        assert_eq!(stats.unique_bodies, 2);
        assert_eq!(stats.evasive_bodies, 1);
        assert_eq!(stats.ast_inconclusive, 1);
        assert_eq!(stats.recovered, 1);
        assert_eq!(stats.recovered_fingerprinting, 1);
        assert_eq!(stats.evasive_recovered, 1);
        assert!(stats.verified_chunks >= 2, "{stats:?}");
        assert!(stats.verified_insns > 0);
        assert!(stats.verifier_max_stack > 0);
        assert_eq!(stats.verifier_rejections, 0);
    }

    #[test]
    fn every_vendor_row_is_a_true_positive_with_matching_double_render() {
        let rows = vendor_static_rows();
        assert_eq!(rows.len(), all_vendors().len());
        for row in rows {
            assert!(row.true_positive, "{}: {:?}", row.name, row.verdict);
            assert!(row.double_render_agrees, "{}: {:?}", row.name, row.verdict);
        }
    }
}
