//! Failure-bias accounting for prevalence estimates.
//!
//! The paper's prevalence numbers (§4.1) condition on *successfully
//! crawled* sites — the 12.7% / 9.9% rates silently assume failed sites
//! fingerprint at the same rate as crawled ones. That assumption is
//! untestable from the data, but its worst case is boundable: every site
//! the crawl lost either fingerprints or it doesn't. This module makes
//! the conditioning explicit with three estimators over the fidelity
//! tiers ([`VisitFidelity`]):
//!
//! * **strict** — fingerprinting rate among `Full` visits only (what the
//!   paper reports);
//! * **salvage-inclusive** — adds `StaticSalvage` sites whose fetched
//!   scripts the static classifier (PR 3) flags, over `Full +
//!   StaticSalvage` — recovering signal from visits that died
//!   mid-pipeline;
//! * **worst-case interval** — over the whole site population, the
//!   prevalence if *no* undetermined site fingerprints (`bias_low`)
//!   versus if *all* of them do (`bias_high`). A salvaged site with no
//!   flagged script stays undetermined in the upper bound: the
//!   fingerprinting script may simply not have been fetched before the
//!   visit died.
//!
//! The interval brackets the fault-free ground truth by construction:
//! confirmed fingerprinters are real (planned faults never fabricate a
//! canvas extraction), and everything unconfirmed is free to go either
//! way.

use std::collections::BTreeMap;

use canvassing_browser::Verdict;
use canvassing_crawler::{CrawlDataset, SiteOutcome, SiteRecord, VisitFidelity};
use serde::{Deserialize, Serialize};

use crate::detect::SiteDetection;

/// Per-fidelity-tier site counts plus the fingerprinting evidence each
/// tier contributes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BiasAccounting {
    /// Total sites attempted (all tiers sum to this).
    pub population: usize,
    /// Sites per fidelity tier (every tier present, zero-filled).
    pub tiers: BTreeMap<VisitFidelity, usize>,
    /// `Full` sites the dynamic detector flags as fingerprinting.
    pub full_fingerprinting: usize,
    /// `StaticSalvage` sites with at least one fetched script the static
    /// classifier flags as fingerprinting.
    pub salvage_fingerprinting: usize,
}

impl BiasAccounting {
    /// Computes the accounting for one cohort. `detections` must be the
    /// per-site detections of the dataset's successful visits (the same
    /// slice [`crate::prevalence::Prevalence::compute`] consumes).
    pub fn compute(dataset: &CrawlDataset, detections: &[SiteDetection]) -> BiasAccounting {
        let mut acc = BiasAccounting::empty();
        let mut det = detections.iter();
        for record in &dataset.records {
            let d = match &record.outcome {
                SiteOutcome::Success(_) => det.next(),
                SiteOutcome::Failure(_) => None,
            };
            acc.absorb(record, d);
        }
        acc
    }

    /// An accumulator with every fidelity tier present and zero-filled —
    /// the streaming-path starting point.
    pub fn empty() -> BiasAccounting {
        BiasAccounting {
            population: 0,
            tiers: VisitFidelity::all().iter().map(|&t| (t, 0)).collect(),
            full_fingerprinting: 0,
            salvage_fingerprinting: 0,
        }
    }

    /// Folds one site record into the accounting. `detection` must be the
    /// record's detection when the visit succeeded (and is ignored for
    /// failures).
    pub fn absorb(&mut self, record: &SiteRecord, detection: Option<&SiteDetection>) {
        self.population += 1;
        *self.tiers.entry(record.fidelity()).or_insert(0) += 1;
        match &record.outcome {
            SiteOutcome::Success(_) => {
                if detection.is_some_and(|d| d.is_fingerprinting()) {
                    self.full_fingerprinting += 1;
                }
            }
            SiteOutcome::Failure(failure) => {
                if let Some(partial) = &failure.salvage {
                    if partial
                        .scripts
                        .iter()
                        .any(|s| matches!(s.verdict, Some(Verdict::Fingerprinting { .. })))
                    {
                        self.salvage_fingerprinting += 1;
                    }
                }
            }
        }
    }

    /// Merges a sibling accumulator (disjoint site sets): plain sums.
    pub fn merge(&mut self, other: &BiasAccounting) {
        self.population += other.population;
        for (&tier, &count) in &other.tiers {
            *self.tiers.entry(tier).or_insert(0) += count;
        }
        self.full_fingerprinting += other.full_fingerprinting;
        self.salvage_fingerprinting += other.salvage_fingerprinting;
    }

    fn tier(&self, t: VisitFidelity) -> usize {
        self.tiers.get(&t).copied().unwrap_or(0)
    }

    /// Sites whose fingerprinting status is confirmed positive.
    pub fn confirmed(&self) -> usize {
        self.full_fingerprinting + self.salvage_fingerprinting
    }

    /// Sites whose status the crawl could not determine: everything
    /// below `Full` except salvaged sites already confirmed positive.
    pub fn undetermined(&self) -> usize {
        self.population - self.tier(VisitFidelity::Full) - self.salvage_fingerprinting
    }

    /// The paper's estimator: fingerprinting rate among `Full` visits.
    pub fn strict_rate(&self) -> f64 {
        ratio(self.full_fingerprinting, self.tier(VisitFidelity::Full))
    }

    /// Salvage-inclusive estimator: static-classifier positives from
    /// salvaged visits join the numerator, salvaged sites the denominator.
    pub fn salvage_rate(&self) -> f64 {
        ratio(
            self.confirmed(),
            self.tier(VisitFidelity::Full) + self.tier(VisitFidelity::StaticSalvage),
        )
    }

    /// Lower bound of the worst-case interval over the whole population:
    /// no undetermined site fingerprints.
    pub fn bias_low(&self) -> f64 {
        ratio(self.confirmed(), self.population)
    }

    /// Upper bound: every undetermined site fingerprints (including
    /// salvaged sites with no flagged script — their fingerprinting
    /// script may not have been fetched).
    pub fn bias_high(&self) -> f64 {
        ratio(self.confirmed() + self.undetermined(), self.population)
    }

    /// Width of the worst-case interval — the prevalence uncertainty the
    /// crawl's failures introduce. 0 when every visit was `Full`.
    pub fn interval_width(&self) -> f64 {
        self.bias_high() - self.bias_low()
    }

    /// Whether a population-level rate (e.g. the fault-free ground truth)
    /// falls inside the worst-case interval.
    pub fn brackets(&self, rate: f64) -> bool {
        self.bias_low() - 1e-12 <= rate && rate <= self.bias_high() + 1e-12
    }
}

fn ratio(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        n as f64 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use canvassing_browser::{LoadedScript, PageVisit};
    use canvassing_crawler::{FailureKind, SiteFailure, SiteOutcome, SiteRecord};
    use canvassing_net::Url;

    fn salvaged_visit(fp: bool) -> Box<PageVisit> {
        Box::new(PageVisit {
            page: Url::https("x.com", "/"),
            api_calls: vec![],
            extractions: vec![],
            scripts: vec![LoadedScript {
                url: Url::https("cdn.net", "/s.js"),
                inline: false,
                canonical_host: "cdn.net".into(),
                cname_cloaked: false,
                source_hash: 1,
                verdict: Some(if fp {
                    Verdict::Fingerprinting {
                        exfil: true,
                        double_render: false,
                    }
                } else {
                    Verdict::Benign
                }),
                error: None,
            }],
            blocked: vec![],
            consent_banner: false,
        })
    }

    fn dataset() -> CrawlDataset {
        let success = |host: &str| SiteRecord {
            url: Url::https(host, "/"),
            outcome: SiteOutcome::Success(Box::new(PageVisit {
                page: Url::https(host, "/"),
                api_calls: vec![],
                extractions: vec![],
                scripts: vec![],
                blocked: vec![],
                consent_banner: false,
            })),
        };
        let failure = |host: &str, salvage: Option<Box<PageVisit>>| SiteRecord {
            url: Url::https(host, "/"),
            outcome: SiteOutcome::Failure(SiteFailure {
                kind: FailureKind::Timeout,
                error: "t".into(),
                attempts: 1,
                salvage,
            }),
        };
        CrawlDataset {
            label: "t".into(),
            device_id: "d".into(),
            records: vec![
                success("a.com"),
                success("b.com"),
                success("c.com"),
                success("d.com"),
                failure("e.com", Some(salvaged_visit(true))),
                failure("f.com", Some(salvaged_visit(false))),
                failure("g.com", None),
                failure("h.com", None),
            ],
        }
    }

    fn detections(fp_sites: usize, total: usize) -> Vec<SiteDetection> {
        use crate::detect::FpCanvas;
        use canvassing_net::Party;
        (0..total)
            .map(|i| SiteDetection {
                site: format!("s{i}.com"),
                canvases: if i < fp_sites {
                    vec![FpCanvas {
                        site: format!("s{i}.com"),
                        data_url: "data:png".into(),
                        hash: 1,
                        script_url: Url::https("cdn.net", "/s.js"),
                        inline: false,
                        party: Party::ThirdParty,
                        cname_cloaked: false,
                        cdn: false,
                        width: 100,
                        height: 100,
                    }]
                } else {
                    vec![]
                },
                excluded: vec![],
                double_render_check: false,
            })
            .collect()
    }

    #[test]
    fn estimators_and_interval() {
        // 8 sites: 4 Full (2 fp), 1 salvaged-fp, 1 salvaged-benign,
        // 2 lost.
        let b = BiasAccounting::compute(&dataset(), &detections(2, 4));
        assert_eq!(b.population, 8);
        assert_eq!(b.tiers[&VisitFidelity::Full], 4);
        assert_eq!(b.tiers[&VisitFidelity::StaticSalvage], 2);
        assert_eq!(b.tiers[&VisitFidelity::Lost], 2);
        assert_eq!(b.full_fingerprinting, 2);
        assert_eq!(b.salvage_fingerprinting, 1);

        assert!((b.strict_rate() - 0.5).abs() < 1e-9);
        assert!((b.salvage_rate() - 0.5).abs() < 1e-9);
        // Confirmed 3 of 8; undetermined: 1 salvaged-benign + 2 lost.
        assert!((b.bias_low() - 3.0 / 8.0).abs() < 1e-9);
        assert!((b.bias_high() - 6.0 / 8.0).abs() < 1e-9);
        assert!((b.interval_width() - 3.0 / 8.0).abs() < 1e-9);
        assert!(b.brackets(0.5));
        assert!(!b.brackets(0.2));
        assert!(!b.brackets(0.9));
    }

    #[test]
    fn all_full_collapses_the_interval() {
        let ds = CrawlDataset {
            label: "t".into(),
            device_id: "d".into(),
            records: (0..4)
                .map(|i| SiteRecord {
                    url: Url::https(&format!("s{i}.com"), "/"),
                    outcome: SiteOutcome::Success(Box::new(PageVisit {
                        page: Url::https(&format!("s{i}.com"), "/"),
                        api_calls: vec![],
                        extractions: vec![],
                        scripts: vec![],
                        blocked: vec![],
                        consent_banner: false,
                    })),
                })
                .collect(),
        };
        let b = BiasAccounting::compute(&ds, &detections(1, 4));
        assert_eq!(b.interval_width(), 0.0);
        assert_eq!(b.strict_rate(), b.bias_low());
        assert_eq!(b.strict_rate(), b.bias_high());
        assert!(b.brackets(b.strict_rate()));
    }

    #[test]
    fn empty_population_is_all_zero() {
        let ds = CrawlDataset {
            label: "t".into(),
            device_id: "d".into(),
            records: vec![],
        };
        let b = BiasAccounting::compute(&ds, &[]);
        assert_eq!(b.strict_rate(), 0.0);
        assert_eq!(b.bias_high(), 0.0);
    }
}
