//! Serving-strategy evasion analysis (§5.2) and the §5.3 randomization
//! check detection.

use canvassing_net::Party;
use serde::{Deserialize, Serialize};

use crate::detect::SiteDetection;

/// §5.2 evasion statistics for one cohort (site-level: a site counts when
/// at least one of its fingerprintable canvases exhibits the property).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct EvasionStats {
    /// Fingerprinting sites total.
    pub fingerprinting_sites: usize,
    /// Sites with ≥1 canvas from a first-party-served script (incl.
    /// bundled code and first-party subdomains).
    pub first_party_sites: usize,
    /// Sites with ≥1 canvas from a script on a subdomain of the site.
    pub subdomain_sites: usize,
    /// Sites with ≥1 canvas from a script on an Appendix A.5 CDN.
    pub cdn_sites: usize,
    /// Sites with ≥1 canvas from a CNAME-cloaked script host.
    pub cname_sites: usize,
    /// Sites with ≥1 canvas from bundled (inline) first-party code.
    pub bundled_sites: usize,
    /// §5.3: sites performing the double-render randomization check.
    pub double_render_sites: usize,
}

impl EvasionStats {
    /// Percentage helper against the fingerprinting-site base.
    pub fn pct(&self, n: usize) -> f64 {
        if self.fingerprinting_sites == 0 {
            0.0
        } else {
            100.0 * n as f64 / self.fingerprinting_sites as f64
        }
    }

    /// Computes stats over a cohort's detections.
    pub fn compute(detections: &[SiteDetection]) -> EvasionStats {
        let mut s = EvasionStats::default();
        for d in detections {
            s.absorb(d);
        }
        s
    }

    /// Folds one site's detection into the counters. Every counter is a
    /// per-site flag, so absorb order never matters.
    pub fn absorb(&mut self, d: &SiteDetection) {
        if !d.is_fingerprinting() {
            return;
        }
        self.fingerprinting_sites += 1;
        let mut first_party = false;
        let mut subdomain = false;
        let mut cdn = false;
        let mut cname = false;
        let mut bundled = false;
        for c in &d.canvases {
            match c.party {
                Party::FirstParty => first_party = true,
                Party::FirstPartySubdomain => {
                    first_party = true;
                    subdomain = true;
                }
                Party::ThirdParty => {}
            }
            if c.cdn {
                cdn = true;
            }
            if c.cname_cloaked {
                cname = true;
            }
            if c.inline {
                bundled = true;
            }
        }
        if first_party {
            self.first_party_sites += 1;
        }
        if subdomain {
            self.subdomain_sites += 1;
        }
        if cdn {
            self.cdn_sites += 1;
        }
        if cname {
            self.cname_sites += 1;
        }
        if bundled {
            self.bundled_sites += 1;
        }
        if d.double_render_check {
            self.double_render_sites += 1;
        }
    }

    /// Merges a sibling accumulator (disjoint site sets): plain sums.
    pub fn merge(&mut self, other: &EvasionStats) {
        self.fingerprinting_sites += other.fingerprinting_sites;
        self.first_party_sites += other.first_party_sites;
        self.subdomain_sites += other.subdomain_sites;
        self.cdn_sites += other.cdn_sites;
        self.cname_sites += other.cname_sites;
        self.bundled_sites += other.bundled_sites;
        self.double_render_sites += other.double_render_sites;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::FpCanvas;
    use canvassing_net::Url;

    fn canvas(site: &str, party: Party, inline: bool, cdn: bool, cname: bool) -> FpCanvas {
        FpCanvas {
            site: site.into(),
            data_url: format!("data:{site}"),
            hash: 0,
            script_url: Url::https("s.net", "/f.js"),
            inline,
            party,
            cname_cloaked: cname,
            cdn,
            width: 100,
            height: 100,
        }
    }

    fn det(site: &str, canvases: Vec<FpCanvas>, double: bool) -> SiteDetection {
        SiteDetection {
            site: site.into(),
            canvases,
            excluded: vec![],
            double_render_check: double,
        }
    }

    #[test]
    fn site_level_flags() {
        let detections = vec![
            det(
                "a.com",
                vec![
                    canvas("a.com", Party::FirstParty, true, false, false),
                    canvas("a.com", Party::ThirdParty, false, true, false),
                ],
                true,
            ),
            det(
                "b.com",
                vec![canvas(
                    "b.com",
                    Party::FirstPartySubdomain,
                    false,
                    false,
                    false,
                )],
                false,
            ),
            det(
                "c.com",
                vec![canvas("c.com", Party::ThirdParty, false, false, true)],
                false,
            ),
            det("skip.com", vec![], false),
        ];
        let s = EvasionStats::compute(&detections);
        assert_eq!(s.fingerprinting_sites, 3);
        assert_eq!(s.first_party_sites, 2); // a (bundled) + b (subdomain)
        assert_eq!(s.subdomain_sites, 1);
        assert_eq!(s.cdn_sites, 1);
        assert_eq!(s.cname_sites, 1);
        assert_eq!(s.bundled_sites, 1);
        assert_eq!(s.double_render_sites, 1);
        assert!((s.pct(s.first_party_sites) - 66.666).abs() < 0.01);
    }

    #[test]
    fn empty_detections_all_zero() {
        let s = EvasionStats::compute(&[]);
        assert_eq!(s.fingerprinting_sites, 0);
        assert_eq!(s.pct(0), 0.0);
    }
}
