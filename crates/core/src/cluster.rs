//! Canvas clustering (§4.2): group sites by *identical* extracted canvas
//! bytes. On one crawl machine, every site running the same fingerprinting
//! script produces byte-identical `toDataURL` output, so equality of the
//! data URL is the grouping key.

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::detect::SiteDetection;

/// One canvas cluster: a distinct data URL and everything observed about
/// its use.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    /// Content hash of the data URL (cluster identity in reports; the
    /// full data URL is kept for exactness).
    pub hash: u64,
    /// The canvas bytes (data URL).
    pub data_url: String,
    /// Sites on which the canvas was extracted.
    pub sites: BTreeSet<String>,
    /// Total extractions (≥ `sites.len()` when double-rendered).
    pub extractions: usize,
    /// Script URLs observed generating this canvas.
    pub script_urls: BTreeSet<String>,
}

impl Cluster {
    /// Number of sites using this canvas.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }
}

/// All clusters from one cohort's detections, sorted by descending site
/// count (stable tie-break on hash).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Clustering {
    /// Clusters, most-shared first.
    pub clusters: Vec<Cluster>,
}

impl Clustering {
    /// Builds clusters from per-site detections.
    pub fn build<'a, I: IntoIterator<Item = &'a SiteDetection>>(detections: I) -> Clustering {
        let mut acc = ClusterAccumulator::default();
        for d in detections {
            acc.absorb(d);
        }
        acc.finish()
    }

    /// Number of distinct canvases.
    pub fn unique_canvases(&self) -> usize {
        self.clusters.len()
    }

    /// Looks up the cluster for a data URL.
    pub fn find(&self, data_url: &str) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.data_url == data_url)
    }

    /// Number of distinct sites covered by the `k` most-shared clusters.
    pub fn sites_covered_by_top(&self, k: usize) -> usize {
        let mut sites: BTreeSet<&str> = BTreeSet::new();
        for c in self.clusters.iter().take(k) {
            sites.extend(c.sites.iter().map(String::as_str));
        }
        sites.len()
    }

    /// All distinct sites across all clusters.
    pub fn all_sites(&self) -> BTreeSet<&str> {
        self.clusters
            .iter()
            .flat_map(|c| c.sites.iter().map(String::as_str))
            .collect()
    }

    /// The partition of sites induced by canvas-sharing: for validation
    /// across devices (§3.1), two clusterings computed from crawls on
    /// different machines must induce the same site groups even though
    /// the canvas bytes differ.
    pub fn site_partition(&self) -> BTreeSet<Vec<String>> {
        self.clusters
            .iter()
            .map(|c| c.sites.iter().cloned().collect::<Vec<String>>())
            .collect()
    }
}

/// Streaming fold for [`Clustering`]: a mergeable map keyed by canvas
/// bytes (data URL). Cluster membership is pure set union plus an
/// extraction counter, so absorb order and shard partitioning never
/// change the finished clustering.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClusterAccumulator {
    clusters: BTreeMap<String, Cluster>,
}

impl ClusterAccumulator {
    /// Folds one site's detection into the cluster map.
    pub fn absorb(&mut self, d: &SiteDetection) {
        for c in &d.canvases {
            let entry = self
                .clusters
                .entry(c.data_url.clone())
                .or_insert_with(|| Cluster {
                    hash: c.hash,
                    data_url: c.data_url.clone(),
                    sites: BTreeSet::new(),
                    extractions: 0,
                    script_urls: BTreeSet::new(),
                });
            entry.sites.insert(c.site.clone());
            entry.extractions += 1;
            entry.script_urls.insert(c.script_url.to_string());
        }
    }

    /// Merges a sibling accumulator: union of sites and script URLs per
    /// canvas, summed extraction counts.
    pub fn merge(&mut self, other: &ClusterAccumulator) {
        for (data_url, c) in &other.clusters {
            let entry = self
                .clusters
                .entry(data_url.clone())
                .or_insert_with(|| Cluster {
                    hash: c.hash,
                    data_url: c.data_url.clone(),
                    sites: BTreeSet::new(),
                    extractions: 0,
                    script_urls: BTreeSet::new(),
                });
            entry.sites.extend(c.sites.iter().cloned());
            entry.extractions += c.extractions;
            entry.script_urls.extend(c.script_urls.iter().cloned());
        }
    }

    /// Number of distinct canvases absorbed so far.
    pub fn unique_canvases(&self) -> usize {
        self.clusters.len()
    }

    /// Finalizes into a [`Clustering`], sorted exactly as the batch path:
    /// descending site count with a stable tie-break on hash.
    pub fn finish(&self) -> Clustering {
        let mut clusters: Vec<Cluster> = self.clusters.values().cloned().collect();
        clusters.sort_by(|a, b| {
            b.site_count()
                .cmp(&a.site_count())
                .then(a.hash.cmp(&b.hash))
        });
        Clustering { clusters }
    }
}

/// Cross-cohort overlap statistics (§4.2 "Overlap of test canvases
/// between the tail and top sites").
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverlapStats {
    /// Fingerprinting tail sites sharing at least one canvas with a
    /// popular site.
    pub tail_sites_sharing: usize,
    /// Total fingerprinting tail sites.
    pub tail_sites_total: usize,
    /// Sizes of tail-only clusters, descending.
    pub tail_only_cluster_sizes: Vec<usize>,
}

impl OverlapStats {
    /// Computes overlap between popular and tail clusterings.
    pub fn compute(popular: &Clustering, tail: &Clustering) -> OverlapStats {
        let popular_urls: BTreeSet<&str> = popular
            .clusters
            .iter()
            .map(|c| c.data_url.as_str())
            .collect();
        let mut sharing: BTreeSet<&str> = BTreeSet::new();
        let mut tail_sites: BTreeSet<&str> = BTreeSet::new();
        let mut tail_only_sizes = Vec::new();
        for c in &tail.clusters {
            tail_sites.extend(c.sites.iter().map(String::as_str));
            if popular_urls.contains(c.data_url.as_str()) {
                sharing.extend(c.sites.iter().map(String::as_str));
            } else {
                tail_only_sizes.push(c.site_count());
            }
        }
        tail_only_sizes.sort_unstable_by(|a, b| b.cmp(a));
        OverlapStats {
            tail_sites_sharing: sharing.len(),
            tail_sites_total: tail_sites.len(),
            tail_only_cluster_sizes: tail_only_sizes,
        }
    }

    /// Fraction of tail fingerprinting sites sharing a canvas with a
    /// popular site (the paper's 91.4%).
    pub fn sharing_fraction(&self) -> f64 {
        if self.tail_sites_total == 0 {
            return 0.0;
        }
        self.tail_sites_sharing as f64 / self.tail_sites_total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::FpCanvas;
    use canvassing_net::{Party, Url};

    fn canvas(site: &str, data: &str) -> FpCanvas {
        FpCanvas {
            site: site.into(),
            data_url: data.into(),
            hash: canvassing_raster::content_hash(data.as_bytes()),
            script_url: Url::https("s.net", "/fp.js"),
            inline: false,
            party: Party::ThirdParty,
            cname_cloaked: false,
            cdn: false,
            width: 100,
            height: 50,
        }
    }

    fn site(host: &str, datas: &[&str]) -> SiteDetection {
        SiteDetection {
            site: host.into(),
            canvases: datas.iter().map(|d| canvas(host, d)).collect(),
            excluded: vec![],
            double_render_check: false,
        }
    }

    #[test]
    fn clusters_group_identical_data_urls() {
        let sites = [
            site("a.com", &["X", "Y"]),
            site("b.com", &["X"]),
            site("c.com", &["Z"]),
        ];
        let c = Clustering::build(sites.iter());
        assert_eq!(c.unique_canvases(), 3);
        let x = c.find("X").unwrap();
        assert_eq!(x.site_count(), 2);
        // Sorted by site count: X first.
        assert_eq!(c.clusters[0].data_url, "X");
    }

    #[test]
    fn double_render_counts_extractions_not_sites() {
        let sites = [site("a.com", &["X", "X"])];
        let c = Clustering::build(sites.iter());
        let x = c.find("X").unwrap();
        assert_eq!(x.site_count(), 1);
        assert_eq!(x.extractions, 2);
    }

    #[test]
    fn top_k_site_coverage_deduplicates() {
        let sites = [site("a.com", &["X", "Y"]), site("b.com", &["X"])];
        let c = Clustering::build(sites.iter());
        assert_eq!(c.sites_covered_by_top(1), 2); // X covers a and b
        assert_eq!(c.sites_covered_by_top(2), 2); // Y adds no new site
        assert_eq!(c.all_sites().len(), 2);
    }

    #[test]
    fn overlap_stats() {
        let popular = Clustering::build([site("p1.com", &["X"]), site("p2.com", &["Y"])].iter());
        let tail = Clustering::build(
            [
                site("t1.com", &["X"]),
                site("t2.com", &["T"]),
                site("t3.com", &["T"]),
                site("t4.com", &["X", "U"]),
            ]
            .iter(),
        );
        let o = OverlapStats::compute(&popular, &tail);
        assert_eq!(o.tail_sites_total, 4);
        assert_eq!(o.tail_sites_sharing, 2); // t1 and t4
        assert_eq!(o.tail_only_cluster_sizes, vec![2, 1]); // T(2), U(1)
        assert!((o.sharing_fraction() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn partitions_compare_across_devices() {
        // Same grouping, different canvas bytes.
        let dev1 = Clustering::build([site("a.com", &["X1"]), site("b.com", &["X1"])].iter());
        let dev2 = Clustering::build([site("a.com", &["X2"]), site("b.com", &["X2"])].iter());
        assert_eq!(dev1.site_partition(), dev2.site_partition());
        assert_ne!(dev1.clusters[0].data_url, dev2.clusters[0].data_url);
    }

    #[test]
    fn empty_input_is_empty_clustering() {
        let c = Clustering::build(std::iter::empty());
        assert_eq!(c.unique_canvases(), 0);
        assert_eq!(c.sites_covered_by_top(5), 0);
    }

    #[test]
    fn accumulator_merge_matches_batch_build() {
        let sites = [
            site("a.com", &["X", "Y"]),
            site("b.com", &["X"]),
            site("c.com", &["Z"]),
            site("d.com", &["X", "X"]),
        ];
        let batch = Clustering::build(sites.iter());
        let mut left = ClusterAccumulator::default();
        left.absorb(&sites[3]);
        left.absorb(&sites[0]);
        let mut right = ClusterAccumulator::default();
        right.absorb(&sites[2]);
        right.absorb(&sites[1]);
        left.merge(&right);
        let merged = left.finish();
        assert_eq!(
            serde_json::to_string(&merged.clusters).unwrap(),
            serde_json::to_string(&batch.clusters).unwrap()
        );
        assert_eq!(merged.find("X").unwrap().extractions, 4);
    }
}
