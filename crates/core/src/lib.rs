//! # canvassing
//!
//! The measurement pipeline of *Canvassing the Fingerprinters:
//! Characterizing Canvas Fingerprinting Use Across the Web* (IMC 2025),
//! reproduced end to end over a simulated Web.
//!
//! The pipeline mirrors the paper's methodology section by section:
//!
//! * [`mod@detect`] — §3.2's three heuristics turn raw `toDataURL`
//!   extractions into *fingerprintable test canvases*;
//! * [`cluster`] — §4.2's grouping of sites by byte-identical canvases;
//! * [`prevalence`] — §4.1's rates and per-site canvas distribution;
//! * [`attribution`] — §4.3 / Appendix A.3's demo, known-customer, and
//!   script-pattern attribution (including the Imperva per-site regex and
//!   the FingerprintJS open-source/commercial split);
//! * [`blocklist_coverage`] — §5.1 / Table 4's adblockparser-style static
//!   list coverage;
//! * [`evasion`] — §5.2's first-party / subdomain / CDN / CNAME serving
//!   analysis and §5.3's double-render randomization-check detection;
//! * [`figures`] — Figure 1 regeneration;
//! * [`validation`] — cross-validation of the static AST classifier
//!   (`canvassing-analysis`) against the dynamic detector: a per-cohort
//!   confusion matrix over unique script bodies plus per-vendor rows;
//! * [`accumulate`] — constant-memory streaming aggregation
//!   ([`accumulate::CohortAccumulator`]): folds visit records into
//!   cohort state one at a time, mergeable across frontier shards, so
//!   million-site crawls never materialize a dataset;
//! * [`study`] — the orchestrator that runs every crawl and produces all
//!   tables and figures ([`study::run_study`],
//!   [`study::run_study_streamed`] for the bounded-memory path, or
//!   [`study::run_study_supervised`] for the crash-tolerant path that
//!   runs both control crawls under the leased shard supervisor with
//!   injected process faults and proves the results unchanged).
//!
//! ```no_run
//! use canvassing::study::{run_study, StudyOptions};
//! use canvassing_webgen::{SyntheticWeb, WebConfig};
//!
//! let web = SyntheticWeb::generate(WebConfig::paper_scale(2025));
//! let results = run_study(&web, &StudyOptions::default());
//! println!("{}", results.render_report());
//! ```
//!
//! Every crawl can also record a deterministic per-visit trace (spans,
//! instants, and shared counters — see `canvassing-trace`); attach a sink
//! to the crawl config to capture timelines:
//!
//! ```no_run
//! use std::sync::Arc;
//! use canvassing_crawler::{crawl_with_stats, CrawlConfig};
//! use canvassing_trace::{render_timeline, RingSink, TraceSink};
//! use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};
//!
//! let web = SyntheticWeb::generate(WebConfig { seed: 7, scale: 0.1 });
//! let sink = Arc::new(RingSink::new(64));
//! let mut config = CrawlConfig::control();
//! config.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
//! let (_, stats) = crawl_with_stats(&web.network, &web.frontier(Cohort::Popular), &config);
//! assert_eq!(stats.trace_visits, sink.len() as u64);
//! for trace in sink.traces() {
//!     println!("{}", render_timeline(&trace));
//! }
//! ```

#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod accumulate;
pub mod attribution;
pub mod bias;
pub mod blocklist_coverage;
pub mod cluster;
pub mod detect;
pub mod evasion;
pub mod figures;
pub mod prevalence;
#[cfg(test)]
mod proptests;
pub mod study;
pub mod validation;

pub use accumulate::CohortAccumulator;
pub use bias::BiasAccounting;
pub use cluster::{Cluster, ClusterAccumulator, Clustering, OverlapStats};
pub use detect::{detect, ExclusionReason, FpCanvas, SiteDetection};
pub use evasion::EvasionStats;
pub use figures::Figure1;
pub use prevalence::{Prevalence, PrevalenceAccumulator};
pub use study::{
    run_study, run_study_streamed, run_study_supervised, CohortAnalysis, StreamingOptions,
    StudyOptions, StudyResults, SupervisionSummary,
};
pub use validation::{
    cross_validate, vendor_static_rows, ConfusionMatrix, ScriptVotes, VendorStaticRow,
};
