//! Vendor attribution (§4.3, Appendix A.3).
//!
//! Ground truth is gathered exactly the way the paper describes, in order
//! of precedence:
//!
//! 1. **Demo** — crawl the vendor's public demo page and record the test
//!    canvases it renders;
//! 2. **Known customer** — crawl a publicly advertised customer site and
//!    keep the canvases whose script URL the vendor's Script Pattern
//!    confirms;
//! 3. **Script pattern** — attribute canvases whose generating script URL
//!    contains the vendor's pattern.
//!
//! Imperva is special (§4.3.2): every deployment renders a unique canvas,
//! so grouping cannot find customers. Instead, singleton clusters whose
//! first-party script URL matches the Table 3 regex (with the captured
//! token spanning the full first path segment) are attributed to Imperva.
//!
//! FingerprintJS open-source vs. commercial is separated by script URL
//! (`fpnpmcdn.net`) and script *content* (the Pro build's extra surface
//! probes), mirroring footnote 2.

use std::collections::{BTreeMap, BTreeSet};

use canvassing_net::{Network, Resource, Url};
use canvassing_raster::DeviceProfile;
use canvassing_regexlite::Regex;
use canvassing_vendors::{all_vendors, VendorId, IMPERVA_URL_REGEX};
use serde::{Deserialize, Serialize};

use crate::cluster::Clustering;
use crate::detect::SiteDetection;

/// Ground-truth canvas sets per vendor.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Vendor → set of test-canvas data URLs.
    pub canvases: BTreeMap<VendorId, BTreeSet<String>>,
    /// How each vendor's truth was obtained (for Table 3).
    pub methods: BTreeMap<VendorId, &'static str>,
}

/// Attribution engine inputs that stand in for the paper's "public
/// knowledge": demo pages and advertised customers.
pub struct AttributionSources {
    /// `(vendor, demo page URL)` pairs.
    pub demos: Vec<(VendorId, Url)>,
    /// `(vendor, known customer homepage)` pairs.
    pub customers: Vec<(VendorId, Url)>,
}

/// Gathers ground truth by crawling demos and known customers on the
/// given device (the same device as the main crawl, so canvases match).
pub fn gather_ground_truth(
    network: &Network,
    sources: &AttributionSources,
    device: &DeviceProfile,
) -> GroundTruth {
    let mut truth = GroundTruth::default();
    for (vendor_id, demo_url) in &sources.demos {
        if let Ok(visit) = canvassing_crawler::visit_once(network, demo_url, device.clone()) {
            let det = crate::detect::detect(&visit);
            let set = truth.canvases.entry(*vendor_id).or_default();
            for c in det.canvases {
                set.insert(c.data_url);
            }
            truth.methods.entry(*vendor_id).or_insert("demo");
        }
    }
    for (vendor_id, customer_url) in &sources.customers {
        if truth.canvases.contains_key(vendor_id) {
            // Demo takes precedence; customers confirm but don't extend.
            continue;
        }
        let Some(pattern) = canvassing_vendors::vendor(*vendor_id).url_pattern else {
            continue;
        };
        if let Ok(visit) = canvassing_crawler::visit_once(network, customer_url, device.clone()) {
            let det = crate::detect::detect(&visit);
            let set = truth.canvases.entry(*vendor_id).or_default();
            for c in det.canvases {
                // Keep only canvases the Script Pattern confirms (the
                // site may run several fingerprinters).
                if c.script_url.to_string().contains(pattern) {
                    set.insert(c.data_url);
                }
            }
            truth.methods.entry(*vendor_id).or_insert("known-customer");
        }
    }
    truth
}

/// One Table 1 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VendorReach {
    /// Vendor display name.
    pub name: String,
    /// Whether the vendor is a security application (bold in Table 1).
    pub security: bool,
    /// Fingerprinting popular sites linked to the vendor.
    pub popular_sites: usize,
    /// Fingerprinting tail sites linked to the vendor.
    pub tail_sites: usize,
    /// Attribution method used.
    pub method: String,
}

/// Full attribution output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AttributionResult {
    /// Per-vendor reach, Table 1 order.
    pub vendors: Vec<VendorReach>,
    /// Distinct attributed sites (popular, tail).
    pub attributed_sites: (usize, usize),
    /// Fingerprinting sites (popular, tail) — the percentage base.
    pub fingerprinting_sites: (usize, usize),
    /// FingerprintJS commercial customers (popular, tail) — §4.3.1.
    pub fpjs_commercial_sites: (usize, usize),
}

impl AttributionResult {
    /// Fraction of fingerprinting popular sites attributed to any vendor
    /// (the paper's 73%).
    pub fn popular_coverage(&self) -> f64 {
        if self.fingerprinting_sites.0 == 0 {
            return 0.0;
        }
        self.attributed_sites.0 as f64 / self.fingerprinting_sites.0 as f64
    }

    /// Fraction of fingerprinting tail sites attributed (the paper's 71%).
    pub fn tail_coverage(&self) -> f64 {
        if self.fingerprinting_sites.1 == 0 {
            return 0.0;
        }
        self.attributed_sites.1 as f64 / self.fingerprinting_sites.1 as f64
    }
}

/// Runs attribution over both cohorts.
///
/// `network` is used for script-content inspection (the FingerprintJS
/// commercial split) and must be the crawled network.
pub fn attribute(
    network: &Network,
    truth: &GroundTruth,
    popular: &[SiteDetection],
    tail: &[SiteDetection],
    popular_clusters: &Clustering,
    tail_clusters: &Clustering,
) -> AttributionResult {
    // The pattern is static and covered by unit tests; if it ever fails
    // to compile, Imperva simply gets no per-site-regex attribution.
    let imperva_re = Regex::new(IMPERVA_URL_REGEX).ok();

    let mut vendors = Vec::new();
    let mut attributed_popular: BTreeSet<&str> = BTreeSet::new();
    let mut attributed_tail: BTreeSet<&str> = BTreeSet::new();

    for vendor in all_vendors() {
        let mut popular_sites: BTreeSet<&str> = BTreeSet::new();
        let mut tail_sites: BTreeSet<&str> = BTreeSet::new();
        let mut method = "script-pattern";

        if vendor.id == VendorId::Imperva {
            if let Some(re) = &imperva_re {
                collect_imperva_sites(re, popular, popular_clusters, &mut popular_sites);
                collect_imperva_sites(re, tail, tail_clusters, &mut tail_sites);
            }
            method = "script-pattern (per-site regex)";
        } else if let Some(set) = truth.canvases.get(&vendor.id) {
            method = truth.methods.get(&vendor.id).copied().unwrap_or("demo");
            collect_sites_by_canvas(popular, set, &mut popular_sites);
            collect_sites_by_canvas(tail, set, &mut tail_sites);
        } else if let Some(pattern) = vendor.url_pattern {
            // Pure script-pattern attribution (mail.ru, AWS WAF): find the
            // canvases produced by matching scripts, then group.
            let mut canvas_set: BTreeSet<String> = BTreeSet::new();
            for d in popular.iter().chain(tail.iter()) {
                for c in &d.canvases {
                    if c.script_url.to_string().contains(pattern) {
                        canvas_set.insert(c.data_url.clone());
                    }
                }
            }
            collect_sites_by_canvas(popular, &canvas_set, &mut popular_sites);
            collect_sites_by_canvas(tail, &canvas_set, &mut tail_sites);
        }

        attributed_popular.extend(popular_sites.iter());
        attributed_tail.extend(tail_sites.iter());
        vendors.push(VendorReach {
            name: vendor.name.to_string(),
            security: vendor.security,
            popular_sites: popular_sites.len(),
            tail_sites: tail_sites.len(),
            method: method.to_string(),
        });
    }

    // FingerprintJS commercial split: among sites rendering the FPJS
    // canvas set, commercial customers are identified by script URL
    // (fpnpmcdn.net) or by fetching the script and finding the Pro build
    // marker (footnote 2's extra surfaces).
    let fpjs_commercial = if let Some(fpjs_set) = truth.canvases.get(&VendorId::FingerprintJs) {
        (
            count_commercial_fpjs(network, popular, fpjs_set),
            count_commercial_fpjs(network, tail, fpjs_set),
        )
    } else {
        (0, 0)
    };

    let fp_popular = popular.iter().filter(|d| d.is_fingerprinting()).count();
    let fp_tail = tail.iter().filter(|d| d.is_fingerprinting()).count();

    AttributionResult {
        vendors,
        attributed_sites: (attributed_popular.len(), attributed_tail.len()),
        fingerprinting_sites: (fp_popular, fp_tail),
        fpjs_commercial_sites: fpjs_commercial,
    }
}

fn collect_imperva_sites<'a>(
    re: &Regex,
    detections: &'a [SiteDetection],
    clustering: &Clustering,
    out: &mut BTreeSet<&'a str>,
) {
    for d in detections {
        for c in &d.canvases {
            if imperva_matches(re, c, clustering) {
                out.insert(d.site.as_str());
            }
        }
    }
}

fn collect_sites_by_canvas<'a>(
    detections: &'a [SiteDetection],
    canvas_set: &BTreeSet<String>,
    out: &mut BTreeSet<&'a str>,
) {
    for d in detections {
        if d.canvases.iter().any(|c| canvas_set.contains(&c.data_url)) {
            out.insert(d.site.as_str());
        }
    }
}

/// Imperva signature: singleton canvas cluster, first-party script, and
/// the Table 3 regex captures the entire first path segment.
fn imperva_matches(re: &Regex, canvas: &crate::detect::FpCanvas, clustering: &Clustering) -> bool {
    if canvas.inline {
        return false;
    }
    if canvas.script_url.host != canvas.site {
        return false;
    }
    let singleton = clustering
        .find(&canvas.data_url)
        .map(|cl| cl.site_count() == 1)
        .unwrap_or(false);
    if !singleton {
        return false;
    }
    let url_str = canvas.script_url.to_string();
    let Some(caps) = re.captures(&url_str) else {
        return false;
    };
    let Some(token) = caps.get(1) else {
        return false;
    };
    let first_segment = canvas
        .script_url
        .path
        .trim_start_matches('/')
        .split('/')
        .next()
        .unwrap_or("");
    token == first_segment && !token.is_empty()
}

fn count_commercial_fpjs(
    network: &Network,
    detections: &[SiteDetection],
    fpjs_canvases: &BTreeSet<String>,
) -> usize {
    let mut commercial_sites: BTreeSet<&str> = BTreeSet::new();
    for d in detections {
        for c in &d.canvases {
            if !fpjs_canvases.contains(&c.data_url) {
                continue;
            }
            let url_str = c.script_url.to_string();
            let by_url = url_str.contains("fpnpmcdn.net");
            let by_content = !c.inline
                && matches!(
                    network.peek(&c.script_url),
                    Some(Resource::Script(s)) if s.source.contains("Fingerprint Pro")
                );
            if by_url || by_content {
                commercial_sites.insert(d.site.as_str());
            }
        }
    }
    commercial_sites.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::FpCanvas;
    use canvassing_net::Party;

    fn canvas(site: &str, data: &str, script: Url, inline: bool) -> FpCanvas {
        FpCanvas {
            site: site.into(),
            data_url: data.into(),
            hash: canvassing_raster::content_hash(data.as_bytes()),
            script_url: script,
            inline,
            party: Party::ThirdParty,
            cname_cloaked: false,
            cdn: false,
            width: 200,
            height: 50,
        }
    }

    fn det(site: &str, canvases: Vec<FpCanvas>) -> SiteDetection {
        SiteDetection {
            site: site.into(),
            canvases,
            excluded: vec![],
            double_render_check: false,
        }
    }

    #[test]
    fn canvas_set_attribution_groups_sites() {
        let truth_set: BTreeSet<String> = ["data:akamai".to_string()].into();
        let detections = vec![
            det(
                "a.com",
                vec![canvas(
                    "a.com",
                    "data:akamai",
                    Url::https("a.com", "/akam/1.js"),
                    false,
                )],
            ),
            det(
                "b.com",
                vec![canvas(
                    "b.com",
                    "data:other",
                    Url::https("x.net", "/f.js"),
                    false,
                )],
            ),
        ];
        let mut out = BTreeSet::new();
        collect_sites_by_canvas(&detections, &truth_set, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out.contains("a.com"));
    }

    #[test]
    fn imperva_requires_singleton_first_party_full_segment() {
        let re = Regex::new(IMPERVA_URL_REGEX).unwrap();
        let mk = |site: &str, data: &str, url: Url, inline: bool| canvas(site, data, url, inline);
        // Proper Imperva shape.
        let c1 = mk(
            "shop.com",
            "data:unique1",
            Url::https("shop.com", "/Valen-Torke/init.js"),
            false,
        );
        // Shared cluster (akamai-like) — same path shape, not singleton.
        let c2a = mk(
            "x.com",
            "data:shared",
            Url::https("x.com", "/akam/s.js"),
            false,
        );
        let c2b = mk(
            "y.com",
            "data:shared",
            Url::https("y.com", "/akam/s.js"),
            false,
        );
        // Third-party singleton — not Imperva.
        let c3 = mk(
            "z.com",
            "data:unique2",
            Url::https("cdn.net", "/Token-Like/init.js"),
            false,
        );
        let detections = [
            det("shop.com", vec![c1.clone()]),
            det("x.com", vec![c2a.clone()]),
            det("y.com", vec![c2b.clone()]),
            det("z.com", vec![c3.clone()]),
        ];
        let clustering = Clustering::build(detections.iter());
        assert!(imperva_matches(&re, &c1, &clustering));
        assert!(!imperva_matches(&re, &c2a, &clustering), "shared cluster");
        assert!(!imperva_matches(&re, &c3, &clustering), "third-party");
    }

    #[test]
    fn imperva_rejects_numeric_segments() {
        let re = Regex::new(IMPERVA_URL_REGEX).unwrap();
        let c = canvas(
            "a.com",
            "data:u",
            Url::https("a.com", "/v2cache/init.js"),
            false,
        );
        let detections = [det("a.com", vec![c.clone()])];
        let clustering = Clustering::build(detections.iter());
        // "v2cache" contains a digit: the regex capture ("v") is not the
        // whole segment, so it is not Imperva-shaped.
        assert!(!imperva_matches(&re, &c, &clustering));
    }
}
