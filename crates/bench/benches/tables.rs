//! One benchmark per paper artifact: each measures the cost of
//! regenerating that table/figure from a crawled dataset (the repro
//! binary runs the same code at full scale).

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// The offline criterion stub models `Criterion` as a unit struct.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use canvassing::attribution::{attribute, gather_ground_truth, AttributionSources};
use canvassing::blocklist_coverage::coverage;
use canvassing::cluster::{Clustering, OverlapStats};
use canvassing::detect::{detect, SiteDetection};
use canvassing::evasion::EvasionStats;
use canvassing::figures::Figure1;
use canvassing::prevalence::Prevalence;
use canvassing_blocklist::{DisconnectList, FilterList};
use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_raster::DeviceProfile;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

struct Fixture {
    web: SyntheticWeb,
    popular: Vec<SiteDetection>,
    tail: Vec<SiteDetection>,
    popular_clusters: Clustering,
    tail_clusters: Clustering,
}

fn fixture() -> Fixture {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 21,
        scale: 0.05,
    });
    let config = CrawlConfig::control();
    let collect = |cohort| -> Vec<SiteDetection> {
        let frontier = web.frontier(cohort);
        crawl(&web.network, &frontier, &config)
            .successful()
            .map(|(_, v)| detect(v))
            .collect()
    };
    let popular = collect(Cohort::Popular);
    let tail = collect(Cohort::Tail);
    let popular_clusters = Clustering::build(popular.iter());
    let tail_clusters = Clustering::build(tail.iter());
    Fixture {
        web,
        popular,
        tail,
        popular_clusters,
        tail_clusters,
    }
}

fn benches(c: &mut Criterion) {
    let f = fixture();

    // E1: prevalence (§4.1).
    c.bench_function("tables/e1_prevalence", |b| {
        b.iter(|| black_box(Prevalence::compute(&f.popular, f.popular.len()).fingerprinting_rate()))
    });

    // E2: Figure 1.
    c.bench_function("tables/fig1", |b| {
        b.iter(|| {
            black_box(
                Figure1::build(&f.popular_clusters, &f.tail_clusters, 50)
                    .bars
                    .len(),
            )
        })
    });

    // E3: reach / overlap (§4.2).
    c.bench_function("tables/e3_overlap", |b| {
        b.iter(|| {
            black_box(
                OverlapStats::compute(&f.popular_clusters, &f.tail_clusters).sharing_fraction(),
            )
        })
    });

    // E4: Table 1 attribution (includes demo/customer ground-truth crawls).
    let sources = AttributionSources {
        demos: f.web.demo_pages(),
        customers: f.web.known_customers(),
    };
    c.bench_function("tables/table1_attribution", |b| {
        b.iter(|| {
            let truth =
                gather_ground_truth(&f.web.network, &sources, &DeviceProfile::intel_ubuntu());
            black_box(
                attribute(
                    &f.web.network,
                    &truth,
                    &f.popular,
                    &f.tail,
                    &f.popular_clusters,
                    &f.tail_clusters,
                )
                .attributed_sites,
            )
        })
    });

    // E5: Table 2 — one ad-blocker re-crawl of the popular cohort.
    let frontier = f.web.frontier(Cohort::Popular);
    c.bench_function("tables/table2_adblock_crawl", |b| {
        b.iter(|| {
            let config = CrawlConfig::with_adblocker(
                canvassing_browser::AdBlockerKind::AdblockPlus,
                &f.web.lists.easylist,
            );
            black_box(crawl(&f.web.network, &frontier, &config).extraction_count())
        })
    });

    // E6: Table 4 — static list coverage.
    let el = FilterList::parse("EasyList", &f.web.lists.easylist);
    let ep = FilterList::parse("EasyPrivacy", &f.web.lists.easyprivacy);
    let dc = DisconnectList::parse(&f.web.lists.disconnect);
    c.bench_function("tables/table4_coverage", |b| {
        b.iter(|| black_box(coverage(&f.popular, &el, &ep, &dc).any))
    });

    // E7/E8: evasion + randomization-check stats (§5.2/§5.3).
    c.bench_function("tables/e7_e8_evasion", |b| {
        b.iter(|| black_box(EvasionStats::compute(&f.popular).double_render_sites))
    });
}

criterion_group! {
    name = table_benches;
    config = Criterion::default().sample_size(10);
    targets = benches
}
criterion_main!(table_benches);
