//! Ablation benchmarks for the design choices DESIGN.md §4 calls out:
//! clustering key (full data URL vs 64-bit hash), detection heuristic
//! ordering, and regex-engine cost for Imperva-style attribution.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// The offline criterion stub models `Criterion` as a unit struct.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use canvassing::detect::{detect, SiteDetection};
use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_regexlite::Regex;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn detections() -> Vec<SiteDetection> {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 33,
        scale: 0.05,
    });
    let frontier = web.frontier(Cohort::Popular);
    crawl(&web.network, &frontier, &CrawlConfig::control())
        .successful()
        .map(|(_, v)| detect(v))
        .collect()
}

/// Clustering-key ablation: exact data-URL keys (what the pipeline uses —
/// collision-free, matching the paper's "exactly the same output") vs
/// 64-bit content hashes (faster, but a collision would merge clusters).
fn bench_cluster_key(c: &mut Criterion) {
    let dets = detections();
    let mut group = c.benchmark_group("ablations/cluster_key");
    group.bench_function("full_data_url", |b| {
        b.iter(|| {
            let mut map: BTreeMap<&str, usize> = BTreeMap::new();
            for d in &dets {
                for canvas in &d.canvases {
                    *map.entry(canvas.data_url.as_str()).or_default() += 1;
                }
            }
            black_box(map.len())
        })
    });
    group.bench_function("u64_hash", |b| {
        b.iter(|| {
            let mut map: BTreeMap<u64, usize> = BTreeMap::new();
            for d in &dets {
                for canvas in &d.canvases {
                    *map.entry(canvas.hash).or_default() += 1;
                }
            }
            black_box(map.len())
        })
    });
    group.finish();
}

/// The two keys must agree on cluster counts for the generated web
/// (otherwise the hash ablation would be unsound).
fn bench_key_agreement(c: &mut Criterion) {
    let dets = detections();
    c.bench_function("ablations/key_agreement_check", |b| {
        b.iter(|| {
            let mut by_url = std::collections::BTreeSet::new();
            let mut by_hash = std::collections::BTreeSet::new();
            for d in &dets {
                for canvas in &d.canvases {
                    by_url.insert(canvas.data_url.as_str());
                    by_hash.insert(canvas.hash);
                }
            }
            assert_eq!(by_url.len(), by_hash.len());
            black_box(by_url.len())
        })
    });
}

/// Imperva attribution regex over a batch of URLs.
fn bench_imperva_regex(c: &mut Criterion) {
    let re = Regex::new(canvassing_vendors::IMPERVA_URL_REGEX).unwrap();
    let urls: Vec<String> = (0..100)
        .map(|i| format!("https://site{i}.example/Token-Word{i}/init.js"))
        .collect();
    c.bench_function("ablations/imperva_regex_100_urls", |b| {
        b.iter(|| {
            let mut hits = 0;
            for u in &urls {
                if re.captures(u).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

/// Blocklist matcher ablation: linear per-rule scan vs the
/// domain-indexed matcher, over the generated EasyList corpus.
fn bench_blocklist_index(c: &mut Criterion) {
    use canvassing_blocklist::{FilterList, IndexedFilterList, RequestContext};
    use canvassing_net::{ResourceType, Url};

    let web = SyntheticWeb::generate(WebConfig {
        seed: 33,
        scale: 0.3,
    });
    let list = FilterList::parse("EasyList", &web.lists.easylist);
    let indexed = IndexedFilterList::build(&list);
    let urls: Vec<Url> = (0..40)
        .map(|i| Url::parse(&format!("https://ads{i}-delivery.com/fp.js")).unwrap())
        .chain((0..40).map(|i| Url::parse(&format!("https://clean{i}.example/app.js")).unwrap()))
        .collect();
    let contexts: Vec<RequestContext> = urls
        .iter()
        .map(|u| RequestContext::new(u.clone(), ResourceType::Script, false, "page.example"))
        .collect();

    let mut group = c.benchmark_group("ablations/blocklist_matcher");
    group.bench_function("linear_scan", |b| {
        b.iter(|| {
            let blocked = contexts
                .iter()
                .filter(|ctx| list.evaluate(ctx).is_block())
                .count();
            black_box(blocked)
        })
    });
    group.bench_function("domain_indexed", |b| {
        b.iter(|| {
            let blocked = contexts
                .iter()
                .filter(|ctx| indexed.is_blocked(ctx))
                .count();
            black_box(blocked)
        })
    });
    group.finish();
}

criterion_group! {
    name = ablation_benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cluster_key, bench_key_agreement, bench_imperva_regex, bench_blocklist_index
}
criterion_main!(ablation_benches);
