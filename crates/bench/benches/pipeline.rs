//! Crawl-pipeline benchmarks: end-to-end site visits per second and the
//! worker-count sweep called out in DESIGN.md §4.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// The offline criterion stub models `Criterion` as a unit struct.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use canvassing_crawler::{crawl, CrawlConfig};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

fn bench_crawl_throughput(c: &mut Criterion) {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 9,
        scale: 0.01,
    });
    let frontier = web.frontier(Cohort::Popular);
    let mut group = c.benchmark_group("pipeline/crawl_workers");
    group.throughput(Throughput::Elements(frontier.len() as u64));
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            let mut config = CrawlConfig::control();
            config.workers = w;
            b.iter(|| black_box(crawl(&web.network, &frontier, &config).success_count()))
        });
    }
    group.finish();
}

fn bench_detection_and_clustering(c: &mut Criterion) {
    let web = SyntheticWeb::generate(WebConfig {
        seed: 9,
        scale: 0.02,
    });
    let frontier = web.frontier(Cohort::Popular);
    let dataset = crawl(&web.network, &frontier, &CrawlConfig::control());
    c.bench_function("pipeline/detect_per_cohort", |b| {
        b.iter(|| {
            let detections: Vec<_> = dataset
                .successful()
                .map(|(_, v)| canvassing::detect(v))
                .collect();
            black_box(detections.len())
        })
    });
    let detections: Vec<_> = dataset
        .successful()
        .map(|(_, v)| canvassing::detect(v))
        .collect();
    c.bench_function("pipeline/cluster_per_cohort", |b| {
        b.iter(|| black_box(canvassing::Clustering::build(detections.iter()).unique_canvases()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_crawl_throughput, bench_detection_and_clustering
}
criterion_main!(benches);
