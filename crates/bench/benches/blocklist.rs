//! Blocklist engine benchmarks: rule parsing and per-request matching
//! over a realistically sized EasyList corpus (the §5.1 static check runs
//! once per canvas; the §5.2 extensions run once per script request).

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// The offline criterion stub models `Criterion` as a unit struct.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use canvassing_blocklist::{FilterList, RequestContext};
use canvassing_net::{ResourceType, Url};
use canvassing_webgen::{SyntheticWeb, WebConfig};

fn corpus() -> String {
    SyntheticWeb::generate(WebConfig {
        seed: 42,
        scale: 0.2,
    })
    .lists
    .easylist
}

fn bench_parse(c: &mut Criterion) {
    let text = corpus();
    let rules = text.lines().count();
    c.bench_function(&format!("blocklist/parse_{rules}_lines"), |b| {
        b.iter(|| black_box(FilterList::parse("EasyList", &text).len()))
    });
}

fn bench_match(c: &mut Criterion) {
    let text = corpus();
    let list = FilterList::parse("EasyList", &text);
    let urls: Vec<Url> = vec![
        Url::parse("https://ads3-delivery.com/fp.js").unwrap(),
        Url::parse("https://cdn.example.com/jquery.min.js").unwrap(),
        Url::parse("https://customer.com/akam/13/ab12cd.js").unwrap(),
        Url::parse("https://privacy-cs.mail.ru/counter/top.js").unwrap(),
        Url::parse("https://sdk9-web.io/fp.js").unwrap(),
    ];
    c.bench_function("blocklist/evaluate_5_urls", |b| {
        b.iter(|| {
            let mut blocked = 0;
            for url in &urls {
                let ctx =
                    RequestContext::new(url.clone(), ResourceType::Script, false, "page.example");
                if list.evaluate(&ctx).is_block() {
                    blocked += 1;
                }
            }
            black_box(blocked)
        })
    });
    c.bench_function("blocklist/covers_script_url", |b| {
        b.iter(|| black_box(list.covers_script_url(&urls[0], ResourceType::Script)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_parse, bench_match
}
criterion_main!(benches);
