//! Rasterizer benchmarks: the cost of the drawing operations canvas
//! fingerprinting scripts perform, plus the device-profile AA ablation
//! called out in DESIGN.md §4.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]
// The offline criterion stub models `Criterion` as a unit struct.
#![allow(clippy::default_constructed_unit_structs)]

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use canvassing_raster::fill::FillRule;
use canvassing_raster::{Canvas2D, DeviceProfile};

fn fpjs_text_canvas(device: DeviceProfile) -> Canvas2D {
    let mut c = Canvas2D::new(240, 60, device);
    c.set_fill_style("#f60");
    c.fill_rect(100.0, 1.0, 62.0, 20.0);
    c.set_fill_style("#069");
    c.set_font("11pt no-real-font-123");
    c.fill_text("Cwm fjordbank gly \u{1F603}", 2.0, 15.0);
    c.set_fill_style("rgba(102, 204, 0, 0.2)");
    c.set_font("18pt Arial");
    c.fill_text("Cwm fjordbank gly \u{1F603}", 4.0, 45.0);
    c
}

fn bench_fill_rect(c: &mut Criterion) {
    c.bench_function("raster/fill_rect_300x150", |b| {
        b.iter(|| {
            let mut canvas = Canvas2D::new(300, 150, DeviceProfile::intel_ubuntu());
            canvas.set_fill_style("#336699");
            canvas.fill_rect(black_box(10.0), 10.0, 280.0, 130.0);
            black_box(canvas.surface().data()[0])
        })
    });
}

fn bench_text(c: &mut Criterion) {
    c.bench_function("raster/fpjs_text_canvas", |b| {
        b.iter(|| black_box(fpjs_text_canvas(DeviceProfile::intel_ubuntu())))
    });
}

fn bench_winding(c: &mut Criterion) {
    c.bench_function("raster/fpjs_winding_canvas", |b| {
        b.iter(|| {
            let mut canvas = Canvas2D::new(122, 110, DeviceProfile::intel_ubuntu());
            canvas.set_composite_op("multiply");
            for (color, x, y) in [
                ("#f2f", 40.0, 40.0),
                ("#2ff", 80.0, 40.0),
                ("#ff2", 60.0, 80.0),
            ] {
                canvas.set_fill_style(color);
                canvas.begin_path();
                canvas.arc(x, y, 40.0, 0.0, std::f64::consts::TAU, true);
                canvas.fill(FillRule::NonZero);
            }
            canvas.set_fill_style("#f9c");
            canvas.begin_path();
            canvas.arc(60.0, 60.0, 60.0, 0.0, std::f64::consts::TAU, true);
            canvas.arc(60.0, 60.0, 20.0, 0.0, std::f64::consts::TAU, true);
            canvas.fill(FillRule::EvenOdd);
            black_box(canvas.surface().data()[0])
        })
    });
}

fn bench_to_data_url(c: &mut Criterion) {
    let canvas = fpjs_text_canvas(DeviceProfile::intel_ubuntu());
    c.bench_function("raster/to_data_url_png", |b| {
        b.iter(|| black_box(canvas.to_data_url("image/png", None)))
    });
    c.bench_function("raster/to_data_url_jpeg", |b| {
        b.iter(|| black_box(canvas.to_data_url("image/jpeg", Some(0.8))))
    });
}

/// Ablation: per-device AA phase/gamma/jitter cost. The profiles differ
/// only in perturbation parameters; the bench shows the rendering-cost
/// delta of device emulation is negligible.
fn bench_device_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("raster/device_ablation");
    for device in [
        DeviceProfile::intel_ubuntu(),
        DeviceProfile::apple_m1(),
        DeviceProfile::windows_nvidia(),
    ] {
        group.bench_function(device.id.clone(), |b| {
            b.iter(|| black_box(fpjs_text_canvas(device.clone()).to_data_url("image/png", None)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fill_rect, bench_text, bench_winding, bench_to_data_url, bench_device_ablation
}
criterion_main!(benches);
