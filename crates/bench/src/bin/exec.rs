//! `exec` — the script-execution-throughput microbench (interp vs VM).
//!
//! ```text
//! exec [--scale F] [--seed N] [--reps N] [--visit-reps N] [--out PATH]
//!      [--baseline PATH] [--check]
//! ```
//!
//! The crawl bench (`bench`) measures the whole visit pipeline, where
//! render memoization hides most execution cost. This harness isolates
//! the hot path the bytecode VM exists for: the **defense cohort**,
//! where memo replay is structurally disabled (defended renders depend
//! on page host and extraction counters, and the §5.3 double-render
//! check must observe live randomization) so every script interprets in
//! place on every visit.
//!
//! The harness harvests the popular-cohort script workload from the
//! synthetic web — every (page, script) pair a defended crawl would
//! execute, in visit order — then times it two ways, each engine × cold
//! vs warm `ScriptCache` (cold rebuilds the cache every repetition, so
//! each rep pays parse + bytecode lowering; warm pre-warms it once):
//!
//! * **visit passes** — scripts run against real `Document`s with the
//!   per-render randomization defense active, exactly as
//!   `Browser::visit` sets them up. End-to-end defended throughput
//!   (sites/sec): rasterization and readback dominate here, so these
//!   passes show how much of a defended visit is *not* execution.
//! * **exec passes** — the same corpus against a recording stub host
//!   (same API surface, no rasterization), plus one run of the
//!   dynamic-feature-extraction kernel per script execution — the
//!   FP-Inspector-style re-analysis workload from the issue motivation,
//!   where raw execution throughput is the bottleneck. These are the
//!   exec-only numbers: sites/sec and instructions/sec.
//!
//! Both engines charge fuel at identical semantic points, so per-script
//! step counts are byte-identical and "instructions/sec" (steps per CPU
//! second) compares pure execution speed: the speedup is a time ratio
//! over the same instruction stream. Every pass folds (host, steps,
//! error) per execution into an FNV-1a hash and the harness asserts the
//! visit hashes and exec hashes each agree across all four engine ×
//! temperature combinations — a cheap engine-identity check on top of
//! the `engine_identity.rs` study-level gate.
//!
//! Results land in `BENCH_7.json` (override with `--out`). `--baseline
//! PATH` compares the run's deterministic fields (workload hash, step
//! counts, corpus size) against a committed report — the CI drift gate;
//! timing fields are machine-dependent and excluded. With `--check`,
//! the process exits nonzero unless the VM's cold-cache exec-pass
//! instructions/sec is at least 2x the tree-walker's.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use canvassing_browser::{DefenseMode, ExecEngine, ScriptCache};
use canvassing_crawler::CrawlConfig;
use canvassing_dom::Document;
use canvassing_net::{Resource, ScriptRef, Url};
use canvassing_script::{
    run_compiled_with_budget, run_with_budget, EvalOutcome, Host, HostRef, RuntimeError, Value,
    DEFAULT_STEP_BUDGET,
};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};
use serde::{Deserialize, Serialize};

/// The dynamic-feature-extraction kernel: the per-render analysis a
/// FP-Inspector-style pipeline runs over every defended render (feature
/// hashing over the render digest plus entropy-fold rounds). Compiled
/// through the same `ScriptCache` as the corpus, so the cold pass pays
/// its parse + lowering too. `payload` is the stub host's digest of the
/// preceding script execution's recorded API calls.
const EXTRACT_KERNEL: &str = r#"// dynamic feature extraction (per defended render)
let digest = payload;
let n = digest.length;
let h1 = 2166136261;
let h2 = 5381;
let h3 = 0;
for (let i = 0; i < n; i = i + 1) {
  let ch = digest.charCodeAt(i);
  h1 = (h1 * 16777619 + ch) % 4294967291;
  h2 = (h2 * 33 + ch) % 4294967279;
  h3 = (h3 + ch * (i + 7)) % 65521;
}
let acc = h1 % 97 + 3;
let rounds = 0;
while (rounds < 60) {
  let j = 0;
  for (let k = 0; k < 17; k = k + 1) {
    j = (j * 31 + (h2 + k) % 256) % 9973;
  }
  acc = (acc * 131 + j + h3) % 1000003;
  rounds = rounds + 1;
}
acc;
"#;

struct Args {
    scale: f64,
    seed: u64,
    reps: u32,
    visit_reps: u32,
    out: String,
    baseline: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.2,
        seed: 2025,
        reps: 5,
        visit_reps: 2,
        out: "BENCH_7.json".to_string(),
        baseline: None,
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--reps" => args.reps = value("--reps").parse().expect("reps"),
            "--visit-reps" => args.visit_reps = value("--visit-reps").parse().expect("visit-reps"),
            "--out" => args.out = value("--out"),
            "--baseline" => args.baseline = Some(value("--baseline")),
            "--check" => args.check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: exec [--scale F] [--seed N] [--reps N] [--visit-reps N] \
                     [--out PATH] [--baseline PATH] [--check]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One script execution a defended visit would perform: the source text
/// and the URL the document attributes its canvas activity to.
struct Job {
    attributed_url: String,
    source: String,
}

/// One site's worth of script executions, plus the host that keys the
/// defense noise (visits mix the configured seed with the page host so
/// randomization differs across sites — `Browser::visit_supervised`).
struct Site {
    host: String,
    jobs: Vec<Job>,
}

/// FNV-1a over a byte string, continuing from `hash`.
fn fnv(mut hash: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        hash ^= *b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

const FNV_SEED: u64 = 0xcbf29ce484222325;

/// Walks the frontier once and collects every (page, script) execution a
/// defended crawl would perform, in visit order. The synthetic web bakes
/// transient faults into some hosts, so fetches retry a few attempts
/// like the crawler does; persistently unreachable resources are skipped
/// (a real crawl executes nothing for them either).
fn harvest(web: &SyntheticWeb, frontier: &[Url]) -> Vec<Site> {
    let fetch = |url: &Url| (0..4).find_map(|attempt| web.network.fetch_attempt(url, attempt).ok());
    let mut sites = Vec::new();
    for page_url in frontier {
        let Some(response) = fetch(page_url) else {
            continue;
        };
        let page = match response.resource {
            Resource::Page(p) => p,
            Resource::Script(_) => continue,
        };
        let mut jobs = Vec::new();
        for script_ref in &page.scripts {
            match script_ref {
                ScriptRef::Inline { source, .. } => jobs.push(Job {
                    attributed_url: page_url.to_string(),
                    source: source.clone(),
                }),
                ScriptRef::External(url) => {
                    let Some(resp) = fetch(url) else { continue };
                    if let Resource::Script(s) = resp.resource {
                        jobs.push(Job {
                            attributed_url: url.to_string(),
                            source: s.source,
                        });
                    }
                }
            }
        }
        sites.push(Site {
            host: page_url.host.clone(),
            jobs,
        });
    }
    sites
}

/// The exec-pass host: the DOM API surface the corpus touches, with the
/// rasterizer stubbed out. Every call folds into a running digest (the
/// extraction kernel's `payload`), so host effects stay observable and
/// engine order is verified, while the pass time measures execution, not
/// pixel work. Unknown objects/methods answer permissively, like the
/// real `Document` host.
struct StubHost {
    next_handle: HostRef,
    digest: u64,
    payload: String,
}

impl StubHost {
    fn new() -> StubHost {
        StubHost {
            next_handle: 16,
            digest: FNV_SEED,
            payload: String::new(),
        }
    }

    fn handle(&mut self) -> Value {
        self.next_handle += 1;
        Value::Host(self.next_handle)
    }

    fn note(&mut self, name: &str, args: &[Value]) {
        self.digest = fnv(self.digest, name.as_bytes());
        for a in args {
            self.digest = fnv(self.digest, a.to_display_string().as_bytes());
        }
    }

    /// Snapshots the digest into `payload` for the extraction kernel.
    fn seal_payload(&mut self) {
        self.payload = format!("render:{:016x}", self.digest);
    }
}

impl Host for StubHost {
    fn global(&mut self, name: &str) -> Option<Value> {
        match name {
            "document" | "window" | "navigator" => Some(Value::Host(1)),
            "payload" => Some(Value::Str(self.payload.clone())),
            _ => None,
        }
    }

    fn get_prop(&mut self, _obj: HostRef, name: &str) -> Result<Value, RuntimeError> {
        self.note(name, &[]);
        Ok(match name {
            "width" | "height" => Value::Num(((self.digest % 240) + 60) as f64),
            "userAgent" => Value::Str("bench".into()),
            "webdriver" => Value::Bool(false),
            _ => Value::Null,
        })
    }

    fn set_prop(&mut self, _obj: HostRef, name: &str, value: Value) -> Result<(), RuntimeError> {
        self.note(name, &[value]);
        Ok(())
    }

    fn call_method(
        &mut self,
        _obj: HostRef,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        self.note(method, &args);
        Ok(match method {
            "createElement"
            | "getContext"
            | "createLinearGradient"
            | "createRadialGradient"
            | "measureText"
            | "getImageData" => self.handle(),
            "toDataURL" => Value::Str(format!("data:image/png;base64,{:016x}", self.digest)),
            _ => Value::Null,
        })
    }
}

/// Executes one source through `engine` using `cache`.
fn run_cached(
    cache: &ScriptCache,
    source: &str,
    engine: ExecEngine,
    host: &mut dyn Host,
) -> EvalOutcome {
    let exec = cache.get_or_compile(source).expect("corpus parses");
    match engine {
        ExecEngine::Bytecode => run_compiled_with_budget(&exec.bytecode, host, DEFAULT_STEP_BUDGET),
        ExecEngine::TreeWalker => run_with_budget(&exec.program, host, DEFAULT_STEP_BUDGET),
    }
}

/// Folds one execution outcome into a pass hash.
fn fold(hash: u64, host_label: &str, outcome: &EvalOutcome) -> u64 {
    let mut h = fnv(hash, host_label.as_bytes());
    h = fnv(h, &outcome.steps.to_le_bytes());
    if let Err(e) = &outcome.result {
        h = fnv(h, e.message.as_bytes());
    }
    h
}

/// One defended-visit run of the whole workload: real documents, real
/// rasterizer, per-render randomization keyed per host — what
/// `Browser::visit_supervised` does for a `RandomizePerRender` crawl.
fn run_visit_workload(
    sites: &[Site],
    device: &canvassing_raster::DeviceProfile,
    engine: ExecEngine,
    cache: &ScriptCache,
    defense_seed: u64,
) -> (u64, u64) {
    let mut total_steps: u64 = 0;
    let mut hash = FNV_SEED;
    for site in sites {
        let mut doc = Document::new(device.clone());
        let seed = defense_seed ^ fnv(FNV_SEED, site.host.as_bytes());
        doc.set_defense(DefenseMode::RandomizePerRender { seed }.build());
        for job in &site.jobs {
            doc.set_current_script(&job.attributed_url);
            let outcome = run_cached(cache, &job.source, engine, &mut doc);
            total_steps += outcome.steps;
            hash = fold(hash, &site.host, &outcome);
        }
    }
    (total_steps, hash)
}

/// One exec-only run of the whole workload: stub host, plus the
/// extraction kernel once per script execution.
fn run_exec_workload(sites: &[Site], engine: ExecEngine, cache: &ScriptCache) -> (u64, u64) {
    let mut total_steps: u64 = 0;
    let mut hash = FNV_SEED;
    for site in sites {
        let mut host = StubHost::new();
        host.digest = fnv(host.digest, site.host.as_bytes());
        for job in &site.jobs {
            let outcome = run_cached(cache, &job.source, engine, &mut host);
            total_steps += outcome.steps;
            hash = fold(hash, &site.host, &outcome);
            host.seal_payload();
            let extract = run_cached(cache, EXTRACT_KERNEL, engine, &mut host);
            total_steps += extract.steps;
            hash = fold(hash, "extract", &extract);
        }
    }
    (total_steps, hash)
}

/// One timed engine × cache-temperature pass. Throughput is computed
/// from process CPU time (all threads) and falls back to wall time
/// where /proc is unavailable — same policy as the crawl bench.
#[derive(Serialize)]
struct Pass {
    engine: &'static str,
    cache: &'static str,
    reps: u32,
    wall_ms: f64,
    cpu_ms: f64,
    /// Sites executed per second (sites × reps over CPU seconds).
    sites_per_sec: f64,
    /// Interpreter steps per second. Step counts are byte-identical
    /// across engines (the fuel contract), so ratios of this figure
    /// compare pure execution speed over the same instruction stream.
    instructions_per_sec: f64,
    /// Total steps across all reps.
    steps: u64,
}

/// Cumulative process CPU time (utime + stime over all threads) in
/// milliseconds, from /proc/self/stat; 0.0 when unavailable.
fn cpu_time_ms() -> f64 {
    let Ok(stat) = std::fs::read_to_string("/proc/self/stat") else {
        return 0.0;
    };
    let Some(after_comm) = stat.rsplit(')').next() else {
        return 0.0;
    };
    let fields: Vec<&str> = after_comm.split_whitespace().collect();
    let ticks: u64 = match (
        fields.get(11).and_then(|v| v.parse::<u64>().ok()),
        fields.get(12).and_then(|v| v.parse::<u64>().ok()),
    ) {
        (Some(u), Some(s)) => u + s,
        _ => return 0.0,
    };
    // Linux reports 100 ticks/sec (USER_HZ) on every mainstream arch.
    ticks as f64 * 10.0
}

/// VmHWM from /proc/self/status, in kB (0 when unavailable).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The machine-independent facts of the run: same scale + seed must
/// reproduce these exactly on any host — the `--baseline` drift gate.
#[derive(Serialize, Deserialize, PartialEq)]
struct Deterministic {
    scale: f64,
    seed: u64,
    sites: u64,
    script_executions_per_rep: u64,
    unique_scripts: u64,
    /// Steps one visit-workload rep charges (engine- and
    /// temperature-independent — asserted).
    visit_steps_per_rep: u64,
    /// Steps one exec-workload rep charges (corpus + extraction kernel).
    exec_steps_per_rep: u64,
    /// FNV-1a over (host, steps, error) per execution, visit passes.
    visit_workload_hash: String,
    /// Same for the exec passes (stub host + kernel).
    exec_workload_hash: String,
}

#[derive(Serialize)]
struct BenchReport {
    bench: &'static str,
    deterministic: Deterministic,
    peak_rss_kb: u64,
    /// Real-document defended-visit passes (raster included).
    visit_passes: Vec<Pass>,
    /// Exec-only passes (stub host + extraction kernel).
    exec_passes: Vec<Pass>,
    /// Exec-pass VM instructions/sec over tree-walker instructions/sec,
    /// cold caches (parse + lowering + execution every rep). The
    /// `--check` gate requires >= 2.0.
    vm_speedup_exec_cold: f64,
    /// Same ratio on pre-warmed caches (pure dispatch vs pure walking).
    vm_speedup_exec_warm: f64,
    /// End-to-end defended-visit speedup, cold caches — how much of a
    /// full defended visit the engine accounts for once rasterization
    /// and readback join the picture.
    vm_speedup_visit_cold: f64,
}

fn main() {
    let args = parse_args();
    eprintln!(
        "[exec] generating synthetic web (seed {}, scale {}) ...",
        args.seed, args.scale
    );
    let web = SyntheticWeb::generate(WebConfig {
        seed: args.seed,
        scale: args.scale,
    });
    let frontier = web.frontier(Cohort::Popular);
    let device = CrawlConfig::control().device;
    let defense_seed = 1; // the study's defense-sweep seed

    let sites = harvest(&web, &frontier);
    let executions: usize = sites.iter().map(|s| s.jobs.len()).sum();
    let unique_scripts = {
        let mut hashes: Vec<u64> = sites
            .iter()
            .flat_map(|s| s.jobs.iter())
            .map(|j| canvassing_script::source_hash(&j.source))
            .collect();
        hashes.sort_unstable();
        hashes.dedup();
        hashes.len()
    };
    eprintln!(
        "[exec] workload: {} sites, {executions} script executions, {unique_scripts} unique bodies",
        sites.len()
    );

    let warm_cache = ScriptCache::new();
    for job in sites.iter().flat_map(|s| s.jobs.iter()) {
        warm_cache.get_or_compile(&job.source).expect("prewarm");
    }
    warm_cache.get_or_compile(EXTRACT_KERNEL).expect("prewarm");

    // One timed pass. Cold rebuilds the ScriptCache every rep (each rep
    // pays parse + bytecode lowering); warm shares the pre-warmed cache
    // (pure execution).
    let run_pass = |label: &'static str,
                    engine: ExecEngine,
                    fresh_cache: bool,
                    reps: u32,
                    workload: &dyn Fn(ExecEngine, &ScriptCache) -> (u64, u64)|
     -> (Pass, u64, u64) {
        let engine_label = match engine {
            ExecEngine::TreeWalker => "tree_walker",
            ExecEngine::Bytecode => "vm",
        };
        let temp = if fresh_cache { "cold" } else { "warm" };
        eprintln!("[exec] {label}: {engine_label} / {temp} cache ({reps} reps) ...");
        let start = std::time::Instant::now();
        let cpu_start = cpu_time_ms();
        let mut steps: u64 = 0;
        let mut hash: u64 = 0;
        for _ in 0..reps {
            let cold;
            let cache = if fresh_cache {
                cold = ScriptCache::new();
                &cold
            } else {
                &warm_cache
            };
            let (rep_steps, rep_hash) = workload(engine, cache);
            steps += rep_steps;
            hash = rep_hash; // identical every rep by construction
        }
        let wall = start.elapsed();
        let cpu = cpu_time_ms() - cpu_start;
        let secs = if cpu > 0.0 {
            cpu / 1e3
        } else {
            wall.as_secs_f64()
        }
        .max(1e-9);
        let pass = Pass {
            engine: engine_label,
            cache: temp,
            reps,
            wall_ms: wall.as_secs_f64() * 1e3,
            cpu_ms: cpu,
            sites_per_sec: sites.len() as f64 * reps as f64 / secs,
            instructions_per_sec: steps as f64 / secs,
            steps,
        };
        (pass, steps / reps.max(1) as u64, hash)
    };

    let visit = |engine: ExecEngine, cache: &ScriptCache| -> (u64, u64) {
        run_visit_workload(&sites, &device, engine, cache, defense_seed)
    };
    let exec = |engine: ExecEngine, cache: &ScriptCache| -> (u64, u64) {
        run_exec_workload(&sites, engine, cache)
    };

    let mut visit_passes = Vec::new();
    let mut exec_passes = Vec::new();
    let mut visit_facts: Vec<(u64, u64)> = Vec::new();
    let mut exec_facts: Vec<(u64, u64)> = Vec::new();
    for (engine, fresh) in [
        (ExecEngine::TreeWalker, true),
        (ExecEngine::TreeWalker, false),
        (ExecEngine::Bytecode, true),
        (ExecEngine::Bytecode, false),
    ] {
        let (pass, steps, hash) = run_pass("visit", engine, fresh, args.visit_reps, &visit);
        visit_passes.push(pass);
        visit_facts.push((steps, hash));
        let (pass, steps, hash) = run_pass("exec", engine, fresh, args.reps, &exec);
        exec_passes.push(pass);
        exec_facts.push((steps, hash));
    }
    for facts in [&visit_facts, &exec_facts] {
        for (steps, hash) in facts.iter().skip(1) {
            assert_eq!(
                (*steps, *hash),
                facts[0],
                "engines or cache temperature diverged on results/steps"
            );
        }
    }

    let ips = |passes: &[Pass], i: usize| passes[i].instructions_per_sec.max(1e-9);
    // Pass order above: tw-cold, tw-warm, vm-cold, vm-warm.
    let vm_speedup_exec_cold = ips(&exec_passes, 2) / ips(&exec_passes, 0);
    let vm_speedup_exec_warm = ips(&exec_passes, 3) / ips(&exec_passes, 1);
    let vm_speedup_visit_cold = ips(&visit_passes, 2) / ips(&visit_passes, 0);
    eprintln!(
        "[exec] exec-pass instructions/sec: tw cold {:.0}, vm cold {:.0} \
         ({vm_speedup_exec_cold:.2}x); warm {vm_speedup_exec_warm:.2}x; \
         full-visit cold {vm_speedup_visit_cold:.2}x",
        ips(&exec_passes, 0),
        ips(&exec_passes, 2),
    );

    let deterministic = Deterministic {
        scale: args.scale,
        seed: args.seed,
        sites: sites.len() as u64,
        script_executions_per_rep: executions as u64,
        unique_scripts: unique_scripts as u64,
        visit_steps_per_rep: visit_facts[0].0,
        exec_steps_per_rep: exec_facts[0].0,
        visit_workload_hash: format!("{:016x}", visit_facts[0].1),
        exec_workload_hash: format!("{:016x}", exec_facts[0].1),
    };

    let mut check_failures: Vec<String> = Vec::new();
    if let Some(path) = &args.baseline {
        /// The slice of a committed report the drift gate compares
        /// (timing fields are machine-dependent and skipped).
        #[derive(Deserialize)]
        struct Baseline {
            deterministic: Deterministic,
        }
        let committed: Baseline =
            serde_json::from_str(&std::fs::read_to_string(path).expect("read baseline"))
                .expect("parse baseline");
        if committed.deterministic != deterministic {
            check_failures.push(format!(
                "deterministic section drifted from {path}: committed {} vs fresh {}",
                serde_json::to_string(&committed.deterministic).expect("serialize"),
                serde_json::to_string(&deterministic).expect("serialize"),
            ));
        }
    }
    if args.check && vm_speedup_exec_cold < 2.0 {
        check_failures.push(format!(
            "VM cold-cache exec instructions/sec only {vm_speedup_exec_cold:.2}x \
             the tree-walker (gate: >= 2x)"
        ));
    }

    let report = BenchReport {
        bench: "exec_throughput",
        deterministic,
        peak_rss_kb: peak_rss_kb(),
        visit_passes,
        exec_passes,
        vm_speedup_exec_cold,
        vm_speedup_exec_warm,
        vm_speedup_visit_cold,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&args.out, &json).expect("write report");
    eprintln!("wrote {}", args.out);

    if !check_failures.is_empty() {
        for failure in &check_failures {
            eprintln!("CHECK FAILED: {failure}");
        }
        std::process::exit(1);
    }
}
