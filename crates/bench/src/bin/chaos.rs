//! `chaos` — resilience soak for the graceful-degradation supervisor.
//!
//! ```text
//! chaos [--scale F] [--seed N] [--jsonl PATH] [--check]
//! ```
//!
//! Generates the synthetic web at `--scale` (default 0.05), layers an
//! **elevated** fault matrix over every second frontier host (twice the
//! density the resilience tests use), adds a shared dead page host so the
//! per-host circuit breaker provably opens at the page level, then soaks
//! the pipeline across defense modes × worker counts with breakers and
//! salvage enabled. Invariant gates, each of which fails the process
//! under `--check`:
//!
//! 1. **No escaped panics** — every crawl completes under
//!    `catch_unwind`; injected worker panics must degrade to records.
//! 2. **Determinism across schedules** — for each defense mode, the
//!    dataset JSON is byte-identical across 1, 4, and 8 workers.
//! 3. **Fidelity partition** — per-tier counts sum to the frontier size
//!    for every scenario (every site lands in exactly one tier).
//! 4. **CircuitOpen visibility** — the per-kind failure breakdown
//!    contains `circuit-open` records and the bias accounting renders.
//! 5. **Recovery at every corruption point** — a checkpoint torn after
//!    any record prefix recovers exactly that prefix, and resuming from
//!    the recovered prefix merges byte-identical to the uninterrupted
//!    dataset (checked at sampled prefixes; every prefix is recovered).
//!
//! With `--jsonl PATH` each scenario's gate results are appended as one
//! JSON line (the CI soak artifact).

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};

use canvassing::bias::BiasAccounting;
use canvassing::detect::{detect, SiteDetection};
use canvassing_browser::DefenseMode;
use canvassing_crawler::{
    checkpoint, crawl_with_stats, resume_crawl, BreakerPolicy, CrawlConfig, CrawlDataset,
    FailureKind, VisitFidelity,
};
use canvassing_net::{FaultMatrix, PageResource, Resource, Url};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};
use serde::Serialize;

/// One gate result, written per line under `--jsonl`.
#[derive(Serialize)]
struct GateLine {
    gate: String,
    ok: bool,
    detail: String,
}

struct Args {
    scale: f64,
    seed: u64,
    jsonl: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.05,
        seed: 2025,
        jsonl: None,
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--jsonl" => args.jsonl = Some(value("--jsonl")),
            "--check" => args.check = true,
            "--help" | "-h" => {
                eprintln!("usage: chaos [--scale F] [--seed N] [--jsonl PATH] [--check]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The shared dead host several extra frontier pages live on: its visits
/// fail until the breaker opens, so `circuit-open` records are guaranteed
/// whatever the generated web looks like.
const BLACKHOLE: &str = "blackhole.chaos-soak.example";

fn chaos_config(defense: DefenseMode, workers: usize) -> CrawlConfig {
    let mut config = CrawlConfig::control();
    // The label must not mention the worker count: the dataset JSON is
    // compared byte-for-byte across schedules.
    config.label = format!("chaos-{defense:?}");
    config.workers = workers;
    config.defense = defense;
    config.breakers = BreakerPolicy::enabled();
    config.salvage = true;
    config
}

fn main() {
    let args = parse_args();
    // Injected worker panics are part of the soak; the per-visit panic
    // isolation turns them into records, so their backtrace spam only
    // obscures the gate output. Anything else still prints.
    std::panic::set_hook(Box::new(|info| {
        let injected = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.contains("injected fault"));
        if !injected {
            eprintln!("{info}");
        }
    }));
    eprintln!(
        "generating synthetic web (scale {}, seed {}) ...",
        args.scale, args.seed
    );
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: args.seed,
        scale: args.scale,
    });
    let mut frontier = web.frontier(Cohort::Popular);
    frontier.extend(web.frontier(Cohort::Tail));

    // Elevated fault matrix: every 2nd frontier host (the resilience
    // tests fault every 3rd).
    let matrix = FaultMatrix::new(args.seed);
    let targets: Vec<String> = frontier
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 2 == 0)
        .map(|(_, u)| u.host.clone())
        .collect();
    matrix.inject_all(&mut web.network.faults, targets.iter().map(|h| h.as_str()));

    // Latency-spike every 5th *script* host (third parties, which the
    // page-host matrix above never touches): pages referencing one die
    // mid-script-loading, so their salvage carries already-classified
    // scripts and lands in the `StaticSalvage` tier.
    let mut script_hosts: Vec<String> = frontier
        .iter()
        .filter_map(|u| match web.network.peek(u) {
            Some(Resource::Page(page)) => Some(page),
            _ => None,
        })
        .flat_map(|page| {
            page.scripts.iter().filter_map(|s| match s {
                canvassing_net::ScriptRef::External(u) => Some(u.host.clone()),
                _ => None,
            })
        })
        .collect();
    script_hosts.sort();
    script_hosts.dedup();
    for host in script_hosts.iter().step_by(5) {
        if web.network.faults.fault_for(host).is_none() {
            web.network.faults.inject(
                host,
                canvassing_net::Fault::LatencySpike { extra_ms: 60_000 },
            );
        }
    }

    // Shared dead page host: enough visits to open the breaker and then
    // short-circuit (threshold 3 → 3 unreachable + 3 circuit-open).
    for i in 0..6 {
        let url = Url::https(BLACKHOLE, &format!("/p{i}"));
        web.network.host(
            &url,
            Resource::Page(PageResource {
                scripts: vec![],
                consent_banner: false,
                bot_check: false,
            }),
        );
        frontier.push(url);
    }
    web.network.faults.take_down(BLACKHOLE);

    let mut jsonl = args.jsonl.as_ref().map(|p| {
        std::fs::File::create(p).unwrap_or_else(|e| {
            eprintln!("cannot create {p}: {e}");
            std::process::exit(2);
        })
    });
    let mut failures: Vec<String> = Vec::new();
    let mut gate = |name: String, ok: bool, detail: String, jsonl: &mut Option<std::fs::File>| {
        println!("[{}] {name}: {detail}", if ok { "ok" } else { "FAIL" });
        if let Some(f) = jsonl {
            let line = GateLine {
                gate: name.clone(),
                ok,
                detail,
            };
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string(&line).expect("gate serializes")
            );
        }
        if !ok {
            failures.push(name);
        }
    };

    // --- Soak: defense modes × worker counts, breakers + salvage on. ---
    let defenses = [
        ("none", DefenseMode::None),
        ("per-render", DefenseMode::RandomizePerRender { seed: 1 }),
    ];
    let mut control_ds: Option<CrawlDataset> = None;
    for (dlabel, defense) in defenses {
        let mut per_worker_json: Vec<String> = Vec::new();
        for workers in [1usize, 4, 8] {
            let config = chaos_config(defense, workers);
            let crawled = catch_unwind(AssertUnwindSafe(|| {
                crawl_with_stats(&web.network, &frontier, &config)
            }));
            let Ok((ds, stats)) = crawled else {
                gate(
                    format!("no-escaped-panics/{dlabel}/{workers}w"),
                    false,
                    "crawl panicked".into(),
                    &mut jsonl,
                );
                continue;
            };
            gate(
                format!("no-escaped-panics/{dlabel}/{workers}w"),
                true,
                format!(
                    "{} sites, {} breaker opens, {} short-circuits, {} salvaged",
                    ds.records.len(),
                    stats.breaker_opens,
                    stats.breaker_short_circuits,
                    stats.salvaged_visits
                ),
                &mut jsonl,
            );

            let tiers = ds.fidelity_breakdown();
            let total: usize = tiers.values().sum();
            gate(
                format!("fidelity-partition/{dlabel}/{workers}w"),
                total == frontier.len() && ds.records.len() == frontier.len(),
                format!(
                    "full={} static-salvage={} fetch-only={} lost={} (sum {total} of {})",
                    tiers[&VisitFidelity::Full],
                    tiers[&VisitFidelity::StaticSalvage],
                    tiers[&VisitFidelity::FetchOnly],
                    tiers[&VisitFidelity::Lost],
                    frontier.len()
                ),
                &mut jsonl,
            );
            per_worker_json.push(ds.to_json().expect("dataset serializes"));
            if dlabel == "none" && workers == 4 {
                control_ds = Some(ds);
            }
        }
        let identical = per_worker_json.len() == 3
            && per_worker_json[0] == per_worker_json[1]
            && per_worker_json[1] == per_worker_json[2];
        gate(
            format!("determinism/{dlabel}"),
            identical,
            format!(
                "dataset JSON across workers 1/4/8: {}",
                if identical {
                    "byte-identical"
                } else {
                    "DIVERGED"
                }
            ),
            &mut jsonl,
        );
    }

    let control = control_ds.expect("control scenario ran");

    // --- CircuitOpen visibility + bias accounting. ---
    let breakdown = control.failure_breakdown();
    let circuit_open = breakdown
        .get(&FailureKind::CircuitOpen)
        .copied()
        .unwrap_or(0);
    gate(
        "circuit-open-records".into(),
        circuit_open > 0,
        format!("{circuit_open} circuit-open records in the per-kind breakdown"),
        &mut jsonl,
    );

    let detections: Vec<SiteDetection> = control.successful().map(|(_, v)| detect(v)).collect();
    let bias = BiasAccounting::compute(&control, &detections);
    let tiers_sum: usize = bias.tiers.values().sum();
    gate(
        "bias-accounting".into(),
        tiers_sum == bias.population && bias.bias_high() >= bias.bias_low(),
        format!(
            "strict {:.1}%, salvage-inclusive {:.1}%, interval [{:.1}%, {:.1}%] over {} sites",
            100.0 * bias.strict_rate(),
            100.0 * bias.salvage_rate(),
            100.0 * bias.bias_low(),
            100.0 * bias.bias_high(),
            bias.population
        ),
        &mut jsonl,
    );

    // --- Checkpoint corruption sweep: recovery at every prefix. ---
    //
    // Walking DOWNWARD lets one file serve every corruption point: after
    // recovery truncates to a clean k-record prefix, shrinking the file
    // into the middle of record k-1's line is exactly a torn write at
    // k-1 — no O(n²) rewriting of prefixes.
    let dir = std::env::temp_dir();
    let path = dir.join(format!("chaos-ckpt-{}.log", std::process::id()));
    let n = control.records.len();
    checkpoint::save_atomic(&path, &control).expect("write full checkpoint");
    let line_lens: Vec<u64> = control
        .records
        .iter()
        .map(|r| {
            // "<crc32 hex> <json>\n" framing: 8 hex chars + space + newline.
            let json = serde_json::to_string(r).expect("record serializes");
            10 + json.len() as u64
        })
        .collect();
    let header_len =
        std::fs::metadata(&path).expect("checkpoint meta").len() - line_lens.iter().sum::<u64>();
    let mut offsets = Vec::with_capacity(n);
    let mut at = header_len;
    for len in &line_lens {
        offsets.push(at);
        at += len;
    }

    let mut recovered_ok = 0usize;
    let mut resume_checks = 0usize;
    let mut resume_ok = 0usize;
    let full_json = control.to_json().expect("dataset serializes");
    // Resume-and-merge is a full crawl of the suffix; sample prefixes
    // (edges + evenly spaced interior) while recovering at every one.
    let sample_every = (n / 8).max(1);
    for k in (0..n).rev() {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .expect("open checkpoint");
        file.set_len(offsets[k] + line_lens[k] / 2)
            .expect("tear record k");
        drop(file);

        let (recovered, report) = checkpoint::recover(&path).expect("recover");
        if recovered.records.len() == k && report.corrupted_at == Some(k) {
            recovered_ok += 1;
        }
        if k % sample_every == 0 || k == n - 1 {
            resume_checks += 1;
            let config = chaos_config(DefenseMode::None, 4);
            let resumed = resume_crawl(&web.network, &frontier, &config, &recovered);
            if resumed.to_json().expect("resumed serializes") == full_json {
                resume_ok += 1;
            }
        }
    }
    let _ = std::fs::remove_file(&path);
    gate(
        "recovery-every-corruption-point".into(),
        recovered_ok == n,
        format!("{recovered_ok}/{n} torn prefixes recovered exactly"),
        &mut jsonl,
    );
    gate(
        "resume-merges-byte-identical".into(),
        resume_ok == resume_checks && resume_checks > 0,
        format!("{resume_ok}/{resume_checks} sampled resumes byte-identical"),
        &mut jsonl,
    );

    if let Some(p) = &args.jsonl {
        println!("wrote gate results to {p}");
    }
    if failures.is_empty() {
        println!("CHAOS OK: all gates passed over {} sites", frontier.len());
    } else {
        eprintln!("CHAOS FAILED: {} gate(s): {:?}", failures.len(), failures);
        if args.check {
            std::process::exit(1);
        }
    }
}
