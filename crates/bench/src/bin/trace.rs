//! `trace` — per-visit timeline explorer for the deterministic
//! observability layer.
//!
//! ```text
//! trace [--scale F] [--seed N] [--workers N] [--top K] [--jsonl PATH] [--check]
//! ```
//!
//! Generates the synthetic web at `--scale` (default 0.1), crawls the
//! combined popular + tail frontier with a [`RingSink`] attached, then
//! prints:
//!
//! 1. the `--top K` (default 3) most eventful per-visit timelines,
//!    rendered with [`render_timeline`] (logical-clock ticks + simulated
//!    milliseconds — byte-identical run to run and across `--workers`);
//! 2. a hot-path breakdown over every trace ([`hot_path`]: per-span-name
//!    count and total simulated self-time);
//! 3. the shared metrics registry (schedule-independent totals: cache
//!    hits, parses, memo replays, fault counts).
//!
//! With `--jsonl PATH` every trace is also exported as one JSON line for
//! external tooling. With `--check` the process exits nonzero unless
//! every successful visit's trace covers the full five-stage vocabulary
//! (fetch → triage → parse → execute → extract) — the CI gate for the
//! trace layer's coverage contract.

// Tests/tools exercise failure paths where panicking on a broken
// invariant is the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;

use canvassing_crawler::{crawl_with_caches, CrawlConfig};
use canvassing_trace::{
    hot_path, render_timeline, span_names, EventKind, JsonlSink, MetricsRegistry, RingSink,
    TraceSink, VisitTrace,
};
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};

struct Args {
    scale: f64,
    seed: u64,
    workers: usize,
    top: usize,
    jsonl: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.1,
        seed: 2025,
        workers: 8,
        top: 3,
        jsonl: None,
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--workers" => args.workers = value("--workers").parse().expect("workers"),
            "--top" => args.top = value("--top").parse().expect("top"),
            "--jsonl" => args.jsonl = Some(value("--jsonl")),
            "--check" => args.check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace [--scale F] [--seed N] [--workers N] [--top K] \
                     [--jsonl PATH] [--check]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

const STAGES: [&str; 5] = ["fetch", "triage", "parse", "execute", "extract"];

fn outcome_of(trace: &VisitTrace) -> Option<&str> {
    trace.events.iter().rev().find_map(|e| match &e.kind {
        EventKind::Instant { name, detail, .. } if *name == "visit.outcome" => {
            Some(detail.as_str())
        }
        _ => None,
    })
}

fn main() {
    let args = parse_args();
    eprintln!(
        "generating synthetic web (scale {}, seed {}) ...",
        args.scale, args.seed
    );
    let web = SyntheticWeb::generate(WebConfig {
        seed: args.seed,
        scale: args.scale,
    });
    let mut frontier = web.frontier(Cohort::Popular);
    frontier.extend(web.frontier(Cohort::Tail));

    let sink = Arc::new(RingSink::new(frontier.len().max(1)));
    let mut config = CrawlConfig::control();
    config.workers = args.workers;
    config.trace = Some(Arc::clone(&sink) as Arc<dyn TraceSink>);
    let metrics = Arc::new(MetricsRegistry::new());
    eprintln!(
        "crawling {} sites with {} workers (traced) ...",
        frontier.len(),
        config.workers
    );
    // The crawl builds its own registry inside `build_caches`; rebuild the
    // caches around ours so the totals are printable afterwards.
    let mut caches = config.build_caches();
    caches.metrics = Arc::clone(&metrics);
    let (_, stats) = crawl_with_caches(&web.network, &frontier, &config, &caches);
    let traces = sink.traces();
    println!(
        "{} traces delivered ({} spans, {} events); ring dropped {}",
        stats.trace_visits,
        stats.trace_spans,
        stats.trace_events,
        sink.dropped()
    );

    // 1. Top-K most eventful timelines.
    let mut order: Vec<usize> = (0..traces.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(traces[i].events.len()));
    for &i in order.iter().take(args.top) {
        let trace = &traces[i];
        println!(
            "\n=== {} ({} events, outcome {}) ===",
            trace.label,
            trace.events.len(),
            outcome_of(trace).unwrap_or("?")
        );
        print!("{}", render_timeline(trace));
    }

    // 2. Hot-path breakdown (simulated self-time per span name).
    println!("\n=== hot path (all {} traces) ===", traces.len());
    println!("{:<12} {:>8} {:>14}", "span", "count", "self sim-ms");
    for row in hot_path(&traces) {
        println!("{:<12} {:>8} {:>14}", row.name, row.count, row.total_dur_ms);
    }

    // 3. Schedule-independent shared counters.
    let snapshot = metrics.snapshot();
    println!("\n=== metrics registry ===");
    for (name, value) in &snapshot.counters {
        println!("{name:<24} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        println!("{:<24} n={} mean={:.1}", name, hist.count, hist.mean());
    }

    if let Some(path) = &args.jsonl {
        let jsonl = JsonlSink::create(path).expect("open jsonl output");
        for trace in traces.iter().cloned() {
            jsonl.consume(trace);
        }
        let _ = jsonl.flush();
        println!("\nwrote {} traces to {path}", traces.len());
    }

    if args.check {
        let mut bad = 0usize;
        let mut successes = 0usize;
        for trace in &traces {
            if outcome_of(trace) != Some("success") {
                continue;
            }
            successes += 1;
            let names = span_names(trace);
            let missing: Vec<&str> = STAGES
                .iter()
                .filter(|s| !names.contains(*s))
                .copied()
                .collect();
            if !missing.is_empty() {
                eprintln!("{}: missing stages {missing:?}", trace.label);
                bad += 1;
            }
        }
        if stats.trace_visits != frontier.len() as u64 {
            eprintln!(
                "CHECK FAILED: {} traces for {} frontier URLs",
                stats.trace_visits,
                frontier.len()
            );
            std::process::exit(1);
        }
        if bad > 0 || successes == 0 {
            eprintln!("CHECK FAILED: {bad} incomplete timelines, {successes} successes");
            std::process::exit(1);
        }
        println!(
            "\nCHECK OK: all {successes} successful visits cover {:?}",
            STAGES
        );
    }
}
