//! `serve_soak` — overload soak for the verdict-serving daemon.
//!
//! ```text
//! serve_soak [--scale F] [--seed N] [--jsonl PATH] [--out PATH] [--check]
//! ```
//!
//! Generates the synthetic web, harvests a script corpus from its
//! frontier, faults a slice of the corpus's CDN hosts with the standard
//! fault matrix, then replays the standard ramp → steady → burst →
//! overload → drain schedule (Zipf-skewed popularity, phase durations
//! compressed by `--scale`) against the daemon with a mid-soak blocklist
//! reload. Invariant gates, each of which fails the process under
//! `--check`:
//!
//! 1. **Determinism across schedules** — the full response stream is
//!    byte-identical across 1, 4, and 8 executor workers, reload and
//!    injected faults included.
//! 2. **Shed-tier partition** — `full + cache-only + heuristic +
//!    rejected == offered`, and admitted == completed: nothing dropped,
//!    nothing double-counted.
//! 3. **Deadline propagation** — zero completed responses finish past
//!    their deadline (unmeetable requests are rejected at admission).
//! 4. **Zero-drop reload** — the mid-soak reload applies, invalidates
//!    cache shards, forces re-classification, and every offered request
//!    still gets exactly one in-order response.
//! 5. **Plan–execution agreement** — the classifier ran exactly the
//!    analyses the admission plan predicted (no hidden work, no
//!    double-analysis).
//! 6. **Typed fault surfacing** — URL fetches through faulted hosts come
//!    back as typed `fetch-failed` responses, never panics or drops.
//! 7. **Trace coverage** — the trace sink saw one per-request visit for
//!    every offered request.
//!
//! With `--out PATH` the run summary (`ServeStats`: shed partition,
//! exact p50/p99 latency, qps, per-phase shed rates) is written as
//! pretty JSON — the `BENCH_6.json` serving-latency baseline. With
//! `--jsonl PATH` gate results append one JSON line each (the CI soak
//! artifact).

// Tools exercise failure paths where panicking on a broken invariant is
// the correct outcome.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::Write as _;

use canvassing_net::FaultMatrix;
use canvassing_serve::{
    generate, harvest_corpus, LoadProfile, ReloadEvent, RuleSnapshot, ServeConfig, ServeStats,
    VerdictService,
};
use canvassing_trace::CountingSink;
use canvassing_webgen::{Cohort, SyntheticWeb, WebConfig};
use serde::Serialize;

/// One gate result, written per line under `--jsonl`.
#[derive(Serialize)]
struct GateLine {
    gate: String,
    ok: bool,
    detail: String,
}

struct Args {
    scale: f64,
    seed: u64,
    jsonl: Option<String>,
    out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.2,
        seed: 2025,
        jsonl: None,
        out: None,
        check: false,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| -> String {
            iter.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => args.scale = value("--scale").parse().expect("scale"),
            "--seed" => args.seed = value("--seed").parse().expect("seed"),
            "--jsonl" => args.jsonl = Some(value("--jsonl")),
            "--out" => args.out = Some(value("--out")),
            "--check" => args.check = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: serve_soak [--scale F] [--seed N] [--jsonl PATH] [--out PATH] [--check]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

/// Max unique script bodies harvested into the corpus.
const CORPUS_CAP: usize = 256;

fn main() {
    let args = parse_args();
    eprintln!(
        "generating synthetic web (scale {}, seed {}) ...",
        args.scale, args.seed
    );
    let mut web = SyntheticWeb::generate(WebConfig {
        seed: args.seed,
        scale: args.scale,
    });
    let mut frontier = web.frontier(Cohort::Popular);
    frontier.extend(web.frontier(Cohort::Tail));

    let corpus = harvest_corpus(&web.network, &frontier, CORPUS_CAP);
    assert!(!corpus.is_empty(), "corpus harvest found no scripts");

    // Fault a slice of the corpus's own CDN hosts with the standard
    // matrix, so a share of URL payloads resolves through failing hosts.
    // The hottest URL-carrying body's host goes hard-down: with a Zipf
    // head pick and a 40% URL fraction, at least one request is all but
    // guaranteed to hit it, keeping the typed-failure gate meaningful.
    let mut cdn_hosts: Vec<String> = corpus
        .bodies
        .iter()
        .filter_map(|(_, url)| url.as_ref().map(|u| u.host.clone()))
        .collect();
    cdn_hosts.dedup();
    let matrix = FaultMatrix::new(args.seed);
    matrix.inject_all(
        &mut web.network.faults,
        cdn_hosts.iter().skip(1).step_by(6).map(|h| h.as_str()),
    );
    if let Some(first) = cdn_hosts.first() {
        web.network.faults.take_down(first);
    }

    // The standard phase shape with durations compressed by --scale:
    // offered *rates* stay at full pressure (the shed ladder needs the
    // burst and overload phases to actually outrun the lanes), only the
    // soak gets shorter.
    let mut profile = LoadProfile::standard(args.seed);
    for phase in &mut profile.phases {
        phase.duration_ms = ((phase.duration_ms as f64 * args.scale).round() as u64).max(20);
    }
    let total_ms: u64 = profile.phases.iter().map(|p| p.duration_ms).sum();
    let requests = generate(&profile, &corpus);
    let phase_labels: Vec<String> = profile.phases.iter().map(|p| p.label.clone()).collect();
    eprintln!(
        "corpus {} bodies, {} requests over {total_ms}ms simulated",
        corpus.len(),
        requests.len()
    );

    // Mid-soak reload at ~55% of the schedule (inside the steady phase):
    // the new generation adds EasyPrivacy plus one unanchored rule, so
    // the diff invalidates every analysis-cache shard and later hot-path
    // hits must re-classify under the new epoch.
    let boot = RuleSnapshot::new(
        0,
        "easylist-boot",
        &web.lists.easylist,
        RuleSnapshot::standard_vendor_patterns(),
    );
    let reload_text = format!(
        "{}\n{}\n/fpsoak-collect/*$script\n",
        web.lists.easylist, web.lists.easyprivacy
    );
    let reloads = vec![ReloadEvent {
        at_ms: total_ms * 55 / 100,
        name: "easylist+easyprivacy".into(),
        list_text: reload_text,
        vendor_patterns: None,
    }];

    let mut jsonl = args.jsonl.as_ref().map(|p| {
        std::fs::File::create(p).unwrap_or_else(|e| {
            eprintln!("cannot create {p}: {e}");
            std::process::exit(2);
        })
    });
    let mut failures: Vec<String> = Vec::new();
    let mut gate = |name: String, ok: bool, detail: String, jsonl: &mut Option<std::fs::File>| {
        println!("[{}] {name}: {detail}", if ok { "ok" } else { "FAIL" });
        if let Some(f) = jsonl {
            let line = GateLine {
                gate: name.clone(),
                ok,
                detail,
            };
            let _ = writeln!(
                f,
                "{}",
                serde_json::to_string(&line).expect("gate serializes")
            );
        }
        if !ok {
            failures.push(name);
        }
    };

    // --- Soak across executor worker counts (fresh caches per run). ---
    let mut per_worker_json: Vec<String> = Vec::new();
    let mut reference: Option<(VerdictService, canvassing_serve::ServeOutput, u64)> = None;
    for workers in [1usize, 4, 8] {
        let config = ServeConfig {
            workers,
            ..ServeConfig::default()
        };
        let service = VerdictService::new(config);
        let sink = CountingSink::default();
        let out = service.serve(
            &requests,
            &reloads,
            boot.clone(),
            Some(&web.network),
            Some(&sink),
        );
        assert_eq!(
            out.responses.len(),
            requests.len(),
            "daemon must answer every request"
        );
        per_worker_json.push(serde_json::to_string(&out.responses).expect("responses serialize"));
        if workers == 4 {
            let (visits, _, _) = sink.totals();
            reference = Some((service, out, visits));
        }
    }
    let identical = per_worker_json.len() == 3
        && per_worker_json[0] == per_worker_json[1]
        && per_worker_json[1] == per_worker_json[2];
    gate(
        "determinism".into(),
        identical,
        format!(
            "response stream across workers 1/4/8: {}",
            if identical {
                "byte-identical"
            } else {
                "DIVERGED"
            }
        ),
        &mut jsonl,
    );

    let (service, out, trace_visits) = reference.expect("reference run (workers=4)");
    let stats = ServeStats::compute(&requests, &out, &phase_labels);

    gate(
        "shed-partition".into(),
        stats.partition_exact(),
        format!(
            "full {} + cache-only {} + heuristic {} + rejected {} == offered {} (completed {})",
            stats.tiers.full,
            stats.tiers.cache_only,
            stats.tiers.heuristic,
            stats.tiers.rejected(),
            stats.offered,
            stats.completed,
        ),
        &mut jsonl,
    );
    gate(
        "shed-ladder-exercised".into(),
        stats.tiers.shed() > 0 && stats.tiers.rejected_overload > 0,
        format!(
            "shed {} (cache-only {}, heuristic {}), overload-rejected {}, deadline-rejected {}",
            stats.tiers.shed(),
            stats.tiers.cache_only,
            stats.tiers.heuristic,
            stats.tiers.rejected_overload,
            stats.tiers.rejected_deadline,
        ),
        &mut jsonl,
    );
    gate(
        "deadline-propagation".into(),
        stats.deadline_violations == 0,
        format!(
            "{} completed past deadline ({} rejected as unmeetable at admission)",
            stats.deadline_violations, stats.tiers.rejected_deadline,
        ),
        &mut jsonl,
    );

    // Zero-drop reload: the reload applied, invalidated shards, forced
    // re-classification, and the id space is still a dense in-order 1:1
    // mapping of offered requests.
    let in_order = out
        .responses
        .iter()
        .zip(&requests)
        .all(|(resp, req)| resp.id == req.id);
    gate(
        "zero-drop-reload".into(),
        in_order
            && stats.reloads == 1
            && stats.shards_invalidated > 0
            && stats.reclassified > 0,
        format!(
            "{} reload at {}ms invalidated {} shards, {} re-classifications, {}/{} in-order responses",
            stats.reloads,
            reloads[0].at_ms,
            stats.shards_invalidated,
            stats.reclassified,
            out.responses.len(),
            requests.len(),
        ),
        &mut jsonl,
    );

    let analyses = service.analysis_stats().analyses;
    let predicted = out.plan.predicted_analyses();
    gate(
        "plan-execution-agreement".into(),
        analyses == predicted,
        format!("classifier ran {analyses} analyses, admission plan predicted {predicted}"),
        &mut jsonl,
    );
    gate(
        "typed-fetch-failures".into(),
        stats.fetch_failures > 0,
        format!(
            "{} URL fetches through faulted hosts answered as typed failures",
            stats.fetch_failures
        ),
        &mut jsonl,
    );
    gate(
        "trace-coverage".into(),
        trace_visits == stats.offered,
        format!(
            "{trace_visits} per-request traces for {} offered",
            stats.offered
        ),
        &mut jsonl,
    );

    // The trace layer's log2 latency histogram must bound the exact
    // percentiles from above (bucket upper bounds).
    let histo_p99 = out
        .metrics
        .histograms
        .get("serve.latency_ms")
        .map(|h| h.quantile(0.99))
        .unwrap_or(0);
    gate(
        "latency-histogram-bounds".into(),
        histo_p99 >= stats.p99_latency_ms,
        format!(
            "histogram p99 bound {histo_p99}ms >= exact p99 {}ms",
            stats.p99_latency_ms
        ),
        &mut jsonl,
    );

    println!("{}", stats.render());
    if let Some(p) = &args.out {
        let json = serde_json::to_string_pretty(&stats).expect("stats serialize");
        std::fs::write(p, json + "\n").unwrap_or_else(|e| {
            eprintln!("cannot write {p}: {e}");
            std::process::exit(2);
        });
        println!("wrote serving baseline to {p}");
    }
    if let Some(p) = &args.jsonl {
        println!("wrote gate results to {p}");
    }
    if failures.is_empty() {
        println!(
            "SERVE SOAK OK: all gates passed over {} requests",
            stats.offered
        );
    } else {
        eprintln!(
            "SERVE SOAK FAILED: {} gate(s): {:?}",
            failures.len(),
            failures
        );
        if args.check {
            std::process::exit(1);
        }
    }
}
